"""Train / validation / test splitting.

Section 4 of the paper envisions users labelling a small validation sample
which the toolkit uses to explore the cost–accuracy tradeoff before committing
a strategy to the whole dataset.  This module provides the reproducible split
utility that the strategy optimizer builds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.record import Dataset
from repro.exceptions import DatasetError


@dataclass
class DataSplit:
    """Result of a three-way split."""

    train: Dataset
    validation: Dataset
    test: Dataset


def train_validation_test_split(
    dataset: Dataset,
    *,
    validation_fraction: float = 0.1,
    test_fraction: float = 0.2,
    seed: int = 0,
) -> DataSplit:
    """Split a dataset into train / validation / test subsets.

    Args:
        dataset: the dataset to split.
        validation_fraction: fraction of records for the validation set.
        test_fraction: fraction of records for the test set.
        seed: RNG seed; identical seeds produce identical splits.

    Raises:
        DatasetError: if the fractions do not leave room for a training set.
    """
    if validation_fraction < 0 or test_fraction < 0:
        raise DatasetError("split fractions must be non-negative")
    if validation_fraction + test_fraction >= 1.0:
        raise DatasetError("validation and test fractions must sum to less than 1")
    records = dataset.records
    rng = random.Random(seed)
    rng.shuffle(records)
    n_total = len(records)
    n_validation = int(round(n_total * validation_fraction))
    n_test = int(round(n_total * test_fraction))
    validation = records[:n_validation]
    test = records[n_validation : n_validation + n_test]
    train = records[n_validation + n_test :]
    return DataSplit(
        train=Dataset(train, name=f"{dataset.name}-train"),
        validation=Dataset(validation, name=f"{dataset.name}-validation"),
        test=Dataset(test, name=f"{dataset.name}-test"),
    )
