"""The 20-flavor "chocolateyness" sorting task (paper Table 1).

The paper ranks 20 ice-cream flavors by how "chocolatey" they are against a
human-labelled ground truth (flavors with "chocolate" in the name at the top,
fruit flavors like lemon sorbet at the bottom).  The exact list is not given
in the paper, so an equivalent list of 20 flavors with an authored latent
chocolateyness score is used; the score induces the ground-truth ranking and
drives the simulated LLM's noisy answers.
"""

from __future__ import annotations

from repro.llm.oracle import Oracle

#: Criterion name used in prompts for this task.
CHOCOLATEY = "chocolatey"

#: Flavor → latent chocolateyness score in [0, 10].  Higher is more chocolatey.
_CHOCOLATEYNESS: dict[str, float] = {
    "triple chocolate fudge brownie": 10.0,
    "dark chocolate truffle": 9.6,
    "chocolate fudge swirl": 9.2,
    "chocolate chip cookie dough": 8.1,
    "chocolate hazelnut": 7.8,
    "rocky road": 7.0,
    "mocha almond fudge": 6.4,
    "cookies and cream": 5.6,
    "s'mores": 5.2,
    "tiramisu": 4.4,
    "coffee toffee crunch": 3.8,
    "salted caramel": 3.0,
    "peanut butter swirl": 2.6,
    "butter pecan": 2.0,
    "vanilla bean": 1.5,
    "strawberry cheesecake": 1.1,
    "mint sherbet": 0.8,
    "mango passionfruit": 0.5,
    "raspberry ripple": 0.3,
    "lemon sorbet": 0.0,
}

#: Flavors in ground-truth order, most chocolatey first.
FLAVORS: tuple[str, ...] = tuple(
    sorted(_CHOCOLATEYNESS, key=lambda flavor: -_CHOCOLATEYNESS[flavor])
)


def chocolateyness_scores() -> dict[str, float]:
    """Return a copy of the flavor → latent chocolateyness score mapping."""
    return dict(_CHOCOLATEYNESS)


def flavor_oracle() -> Oracle:
    """Oracle that knows the chocolateyness ground truth."""
    oracle = Oracle()
    oracle.register_scores(CHOCOLATEY, _CHOCOLATEYNESS)
    return oracle
