"""Structured call tracing, latency-aware quotes, and deterministic replay.

Run with:  python examples/traced_pipeline.py

Every LLM call a :class:`~repro.core.session.PromptSession` makes is
recorded by its tracer: which pipeline step and operator strategy issued
it, what it cost, how long it took, whether the session cache answered
it.  This example runs a small dedup pipeline, then uses the trace three
ways:

1. **Inspect** — per-call records and an aggregate summary (calls, cache
   hits, errors, dollars, wall-clock).
2. **Quote sharper** — the traced durations and cache hits feed the
   session's :class:`~repro.core.physical.RuntimeStats`, so a second
   ``.quote()``/``.explain()`` carries ``~X.Xs`` wall-clock estimates and
   discounts dollars by the observed cache hit-rate.
3. **Replay** — ``replay_trace(records)`` rebuilds the recorded run as a
   fixture client that serves the recorded responses and refuses any
   prompt the trace never saw, so the same query re-executes to identical
   results with zero live LLM calls.
"""

from __future__ import annotations

from repro import Dataset, DeclarativeEngine, PromptSession, SimulatedLLM, replay_trace
from repro.llm.oracle import Oracle
from repro.trace import summarize_records

WORDS = ["laptop", "monitor", "keyboard", "mouse", "webcam", "router"]


def product_feed() -> tuple[list[str], Oracle]:
    items: list[str] = []
    entities: dict[str, str] = {}
    scores: dict[str, float] = {}
    for rank, word in enumerate(WORDS):
        base = f"{word} pro 4000 wireless workstation device"
        for variant, text in enumerate([base, base + " refurbished"]):
            items.append(text)
            entities[text] = word
            scores[text] = float((len(WORDS) - rank) * 100 - variant)
    oracle = Oracle()
    oracle.register_entities(entities)
    oracle.register_scores("important to stock", scores)
    oracle.register_predicate("has a short brand word", lambda text: len(text.split()[0]) <= 6)
    return items, oracle


def main() -> None:
    items, oracle = product_feed()
    engine = DeclarativeEngine(SimulatedLLM(oracle, seed=3), default_model="sim-gpt-3.5-turbo")

    query = (
        Dataset(items, name="traced-feed")
        .filter("has a short brand word")
        .resolve()
        .top_k("important to stock", k=3, strategy="pairwise_tournament")
    )
    result = query.run(engine)
    print("top 3 products:", result.items)

    # -- 1. inspect the trace --------------------------------------------------------
    records = engine.session.tracer.records()
    print(f"\n{len(records)} traced calls; first three:")
    for record in records[:3]:
        print(
            f"  #{record.call_id:<3} step={record.step} operator={record.operator} "
            f"{record.duration_ms:.2f}ms cache_hit={record.cache_hit}"
        )
    summary = summarize_records(records)
    print(
        f"summary: {summary['calls']} calls, {summary['cache_hits']} cache hits, "
        f"{summary['errors']} errors, ${summary['cost']:.6f}, "
        f"{summary['duration_ms']:.1f}ms total"
    )

    # -- 2. latency- and cache-aware second quote ------------------------------------
    # The trace fed per-strategy latency percentiles and the session cache
    # hit-rate into RuntimeStats; the same query now quotes wall-clock
    # seconds next to (discounted) dollars.
    quote = query.quote(planner=engine.planner())
    print(
        f"\nsecond quote: {quote.total_calls} calls, ${quote.total_dollars:.6f}"
        + (f", ~{quote.total_seconds:.1f}s" if quote.total_seconds is not None else "")
    )
    for note in quote.notes:
        print(f"  note: {note}")
    p50 = engine.stats.latency_p50("filter:per_item")
    if p50 is not None:
        print(f"  observed filter:per_item p50 latency: {p50:.2f}ms")

    # -- 3. deterministic replay -----------------------------------------------------
    # A fresh session whose only "LLM" is the recorded trace re-executes
    # the query to the same answer without a single live call.
    replay_llm = replay_trace(records)
    replay_engine = DeclarativeEngine.from_session(PromptSession(replay_llm))
    replayed = query.run(replay_engine)
    print(
        f"\nreplayed from the trace: {replayed.items} "
        f"(identical: {replayed.items == result.items}, "
        f"served from recording: {replay_llm.served} lookups)"
    )


if __name__ == "__main__":
    main()
