"""Case study: hybrid LLM / k-NN missing-value imputation (paper Table 4).

Run with:  python examples/imputation.py

The k-NN proxy is free but imperfect; the LLM is accurate but costly and
sometimes formats values differently from the ground truth.  The hybrid
strategy uses k-NN whenever all neighbors agree and the LLM only for the
contentious records, keeping accuracy while cutting the token bill.
"""

from __future__ import annotations

from repro import SimulatedLLM
from repro.data import generate_buy_dataset, generate_restaurant_dataset
from repro.operators import ImputeOperator


def run_dataset(name: str, data, seed: int) -> None:
    client = SimulatedLLM(data.oracle(), seed=seed)
    print(f"\n{name}: impute '{data.target_attribute}' for {len(data.queries)} records")
    print(f"{'strategy':<10} {'examples':>8} {'accuracy':>9} {'prompt tok':>11} {'LLM queries':>12}")
    for n_examples in (0, 3):
        for strategy in ("knn", "hybrid", "llm_only"):
            if strategy == "knn" and n_examples:
                continue
            operator = ImputeOperator(client, model="sim-claude")
            result = operator.run(data, strategy=strategy, n_examples=n_examples)
            print(
                f"{strategy:<10} {n_examples:>8} {data.accuracy(result.predictions):>9.3f} "
                f"{result.usage.prompt_tokens:>11} {result.llm_queries:>12}"
            )


def main() -> None:
    run_dataset("Restaurants", generate_restaurant_dataset(150, seed=5), seed=6)
    run_dataset("Buy", generate_buy_dataset(150, seed=7), seed=8)


if __name__ == "__main__":
    main()
