"""Durable store walkthrough: crash-resume, incremental reruns, warm quotes.

Run with:  python examples/resumable_pipeline.py

Everything below shares one SQLite store file, the whole durable state of a
deployment.  The walkthrough plays three production scenarios:

1. **Crash and resume** — a pipeline is killed (simulated) mid-run; a fresh
   "process" pointed at the same store restores every step that had already
   completed (zero LLM calls for them) and finishes the rest, producing
   results identical to an uninterrupted run.
2. **Incremental re-execution** — one step of the pipeline is edited; the
   rerun restores the untouched upstream step from its checkpoint and
   spends calls only on the changed subtree.
3. **Warm-started quotes** — the second process starts with the saved
   workload profile, so its *first* pre-flight quote is priced from the
   previous run's observed statistics instead of static priors.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DeclarativeEngine, PromptSession, SimulatedLLM, Store
from repro.core.spec import FilterSpec, PipelineSpec, PipelineStep, SortSpec
from repro.llm.oracle import Oracle

WORDS = [
    "apple", "banana", "cherry", "damson", "elder", "fig",
    "grape", "honeydew", "kiwi", "lemon",
]
PREDICATE = "starts early in the alphabet"


def make_llm() -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key("alphabetical order", key=lambda item: item)
    oracle.register_predicate(PREDICATE, lambda item: item[0] in "abcdef")
    return SimulatedLLM(oracle, seed=11)


def make_pipeline() -> PipelineSpec:
    """Filter the corpus, then pairwise-sort the survivors."""
    return PipelineSpec(
        name="resumable",
        steps=[
            PipelineStep(
                name="screen",
                task=FilterSpec(items=WORDS, predicate=PREDICATE, strategy="per_item"),
            ),
            PipelineStep(
                name="order",
                task=lambda inputs: SortSpec(
                    items=list(inputs["screen"].kept),
                    criterion="alphabetical order",
                    strategy="pairwise",
                ),
                depends_on=("screen",),
            ),
        ],
    )


class CrashingClient:
    """Wraps a client and dies after N calls — a stand-in for `kill -9`."""

    def __init__(self, inner, fail_after: int) -> None:
        self._inner = inner
        self.fail_after = fail_after
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        if self.calls >= self.fail_after:
            raise RuntimeError("simulated crash")
        self.calls += 1
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


def main() -> None:
    store_path = Path(tempfile.mkdtemp()) / "repro-store.db"
    print(f"store file: {store_path}\n")

    # -- 1. a run that dies mid-pipeline ---------------------------------------
    print("=== run 1: killed after the screen step ===")
    with Store(store_path) as store:
        crashing = CrashingClient(make_llm(), fail_after=len(WORDS))
        session = PromptSession(crashing, store=store)
        engine = DeclarativeEngine.from_session(session)
        try:
            engine.run_pipeline(make_pipeline())
        except RuntimeError as exc:
            print(f"pipeline died: {exc} (after {crashing.calls} calls)")
        print(f"checkpoints on disk: {store.checkpoint_count()}")

    # -- 2. a fresh process resumes against the same store ---------------------
    print("\n=== run 2: fresh process, same store ===")
    with Store(store_path) as store:
        session = PromptSession(make_llm(), store=store)
        engine = DeclarativeEngine.from_session(session)
        report = engine.run_pipeline(make_pipeline())
        print(f"restored steps: {report.restored_steps}")
        print(f"LLM calls this run: {report.total_calls} "
              "(the screen step cost nothing — it came from the checkpoint)")
        print(f"final order: {report.results['order'].order}")

    # -- 3. edit one step: only the changed subtree re-executes ----------------
    print("\n=== run 3: sort strategy edited to 'rating' ===")
    edited = make_pipeline()
    edited.steps[1].task = lambda inputs: SortSpec(
        items=list(inputs["screen"].kept),
        criterion="alphabetical order",
        strategy="rating",
    )
    with Store(store_path) as store:
        session = PromptSession(make_llm(), store=store)
        engine = DeclarativeEngine.from_session(session)
        report = engine.run_pipeline(edited)
        print(f"restored steps: {report.restored_steps}")
        print(f"LLM calls this run: {report.total_calls} "
              "(one rating call per survivor; the screen step restored)")

    # -- 4. the saved workload profile warms the next session's quotes ---------
    print("\n=== run 4: warm-started quote from the saved profile ===")
    with Store(store_path) as store:
        session = PromptSession(make_llm(), store=store)
        engine = DeclarativeEngine.from_session(session)
        observed = session.stats.filter_selectivity(PREDICATE)
        quote = engine.quote_pipeline(make_pipeline())
        print(f"loaded observed selectivity for {PREDICATE!r}: {observed:.2f}")
        print(f"pre-flight quote (priced from history): {quote.total_calls} calls, "
              f"${quote.total_dollars:.6f}")


if __name__ == "__main__":
    main()
