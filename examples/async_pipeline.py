"""Case study: asyncio-native execution with a rate-limited governor.

Run with:  python examples/async_pipeline.py

Against a real API every unit task is a network round-trip, and the classic
way to overlap round-trips — a thread pool — pays one blocked OS thread per
in-flight call.  The :class:`~repro.core.executor.AsyncBatchExecutor` awaits
the same calls on a single event loop instead: concurrency 64 costs 64
pending awaits, not 64 threads.

This example builds a simulated backend whose ``acomplete`` awaits a 20 ms
latency, then

1. saturates it through the async executor at concurrency 64 and compares
   the wall-clock against the thread-pool path at its default pool size,
2. re-runs the fan-out under a :class:`~repro.core.ConcurrencyGovernor`
   with an RPM quota, showing dispatch pacing out at the configured rate,
3. drives a two-branch DAG pipeline through ``scheduler="async"`` and
   checks it produces the same report as the thread scheduler.
"""

from __future__ import annotations

import asyncio
import threading
import time

from repro import DeclarativeEngine, SimulatedLLM
from repro.core import ConcurrencyGovernor
from repro.core.executor import DEFAULT_POOL_SIZE, AsyncBatchExecutor, BatchExecutor
from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle

LATENCY_SECONDS = 0.02  # pretend each unit task is a 20 ms API round-trip
CALLS = 192
MODEL = "sim-gpt-3.5-turbo"


class AsyncLatencyClient:
    """Simulated backend with a native async path.

    The sync path blocks a worker thread per call; the async path awaits the
    same latency on the event loop.  Both answer through the same seeded
    simulator, so results are identical either way.
    """

    def __init__(self) -> None:
        self._inner = SimulatedLLM(flavor_oracle(), seed=7)
        self.default_model = self._inner.default_model

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        time.sleep(LATENCY_SECONDS)
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )

    async def acomplete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        await asyncio.sleep(LATENCY_SECONDS)
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


def saturate() -> None:
    prompts = [f"Rate how chocolatey '{flavor}' is (task {i})." for i, flavor in
               enumerate(FLAVORS * (CALLS // len(FLAVORS)))]

    thread_executor = BatchExecutor(AsyncLatencyClient(), max_concurrency=DEFAULT_POOL_SIZE)
    started = time.perf_counter()
    thread_responses = thread_executor.run(prompts)
    thread_elapsed = time.perf_counter() - started

    async_executor = AsyncBatchExecutor(AsyncLatencyClient(), max_concurrency=64)
    started = time.perf_counter()
    async_responses = asyncio.run(async_executor.run(prompts))
    async_elapsed = time.perf_counter() - started

    assert [r.text for r in async_responses] == [r.text for r in thread_responses]
    print(f"{CALLS} unit tasks, {LATENCY_SECONDS * 1000:.0f} ms latency each")
    print(f"  thread pool (x{DEFAULT_POOL_SIZE}):  {thread_elapsed:6.2f}s")
    print(f"  async loop  (x64): {async_elapsed:6.2f}s "
          f"({thread_elapsed / async_elapsed:.1f}x faster, "
          f"{threading.active_count()} thread(s) alive)")


def governed_fanout() -> None:
    # An RPM quota paces dispatch no matter how wide the fan-out is.  1200
    # requests/minute = 20/s with burst 1, so 48 calls take ~2.4s of pacing
    # even though the latency alone would finish in well under a second at
    # concurrency 64.
    governor = ConcurrencyGovernor(rpm=1200, burst=1, max_in_flight=32)
    executor = AsyncBatchExecutor(
        AsyncLatencyClient(), max_concurrency=64, governor=governor
    )
    prompts = [f"governed task {i}" for i in range(48)]
    started = time.perf_counter()
    asyncio.run(executor.run(prompts))
    elapsed = time.perf_counter() - started
    rate = governor.stats.admitted / elapsed * 60.0
    print(f"\ngoverned fan-out: {governor.stats.admitted} calls in {elapsed:.2f}s "
          f"= {rate:.0f} requests/minute (quota 1200)")
    print(f"  throttled {governor.stats.throttled} dispatches, "
          f"peak in-flight {governor.stats.max_in_flight}")


def _merge(session, inputs):
    return list(inputs["left"].order) + list(inputs["right"].order)


def async_pipeline() -> None:
    pipeline = PipelineSpec(
        name="two-branch",
        steps=[
            PipelineStep("left", task=SortSpec(
                items=list(FLAVORS[:8]), criterion=CHOCOLATEY, strategy="rating")),
            PipelineStep("right", task=SortSpec(
                items=list(FLAVORS[8:16]), criterion=CHOCOLATEY, strategy="rating")),
            PipelineStep("merge", run=_merge, depends_on=("left", "right")),
        ],
    )

    def engine() -> DeclarativeEngine:
        return DeclarativeEngine(
            SimulatedLLM(flavor_oracle(), seed=21), default_model=MODEL, max_concurrency=4
        )

    thread_report = engine().run_pipeline(pipeline)
    async_report = engine().run_pipeline(pipeline, scheduler="async")
    assert async_report.results["merge"] == thread_report.results["merge"]
    assert async_report.total_calls == thread_report.total_calls
    print("\nDAG pipeline, scheduler='async' vs 'threads':")
    print(f"  identical merge order ({len(async_report.results['merge'])} items), "
          f"identical call count ({async_report.total_calls})")
    print(f"  step order: {' -> '.join(async_report.step_order)}")


if __name__ == "__main__":
    saturate()
    governed_fanout()
    async_pipeline()
