"""Product dedup as one fluent chain: filter -> resolve -> top_k.

Run with:  python examples/query_product_dedup.py

A synthetic product feed contains several listings per underlying product
(clean plus "refurb" variants).  The query keeps electronics with a short
brand word, deduplicates to one representative listing per product, and
asks for the top three by importance — under a hard $0.25 budget cap.

The interesting part happens before execution: ``.explain()`` shows that
the optimizer ran the cheap per-item filter ahead of the pairwise dedup
and (on a feed this size) wired an LLM-free embedding-blocking proxy in
front of the duplicate judgments, so the executed pipeline asks the LLM
about ~k·n candidate pairs instead of all O(n²).

After the run, the session's :class:`~repro.core.physical.RuntimeStats`
hold what actually happened — the predicate's observed selectivity, the
dedup survivor ratio, per-strategy call counts — and quoting the *same*
query on the *same* engine a second time prices every step from those
observations instead of the static priors (the ``.explain()`` lines grow
``prior -> observed`` annotations).  That is the physical-planning
feedback loop: quotes get sharper the more the session executes.
"""

from __future__ import annotations

from repro import Dataset, DeclarativeEngine, SimulatedLLM
from repro.llm.oracle import Oracle

WORDS = [
    "laptop", "monitor", "keyboard", "mouse", "webcam", "router",
    "speaker", "headset", "printer", "scanner", "tablet", "charger",
]


def product_feed() -> tuple[list[str], Oracle]:
    """Listings with duplicate variants plus the ground-truth oracle.

    The variants share most of their text (like real retailer feeds), which
    is what lets the noisy duplicate judgments recognise them reliably.
    """
    items: list[str] = []
    entities: dict[str, str] = {}
    scores: dict[str, float] = {}
    for rank, word in enumerate(WORDS):
        base = f"{word} pro 4000 wireless workstation device"
        for variant, text in enumerate([base, base + " refurbished", base + " (open box)"]):
            items.append(text)
            entities[text] = word
            scores[text] = float((len(WORDS) - rank) * 100 - variant)
    oracle = Oracle()
    oracle.register_entities(entities)
    oracle.register_scores("important to stock", scores)
    oracle.register_predicate("has a short brand word", lambda text: len(text.split()[0]) <= 6)
    return items, oracle


def main() -> None:
    items, oracle = product_feed()
    engine = DeclarativeEngine(SimulatedLLM(oracle, seed=3), default_model="sim-gpt-3.5-turbo")

    query = (
        Dataset(items, name="product-feed")
        .filter("has a short brand word")
        .resolve()  # one representative listing per product
        .top_k("important to stock", k=3, strategy="pairwise_tournament")
        .with_budget(0.25)
    )

    print(f"{len(items)} listings in the feed; nothing has run yet.\n")
    print(query.explain())
    print()
    naive = query.quote(optimized=False)
    optimized = query.quote()
    print(
        f"naive plan would quote  {naive.total_calls:>4} calls / ${naive.total_dollars:.6f}\n"
        f"optimized plan quotes   {optimized.total_calls:>4} calls / ${optimized.total_dollars:.6f}"
    )

    result = query.run(engine)
    print("\ntop 3 products to stock:", result.items)
    print(f"executed: {result.total_calls} calls, ${result.total_cost:.6f}")
    for name, report in result.report.step_reports.items():
        print(f"  {name:<12} {report.status:<10} {report.calls:>4} calls  ${report.cost:.6f}")

    # -- the adaptive second quote -------------------------------------------------
    # The run fed observed statistics back into the session; quoting the
    # same query again prices it from what actually happened.
    adaptive = query.quote(planner=engine.planner())
    print(
        f"\nfirst quote (priors)      {optimized.total_calls:>4} calls / "
        f"${optimized.total_dollars:.6f}\n"
        f"second quote (observed)   {adaptive.total_calls:>4} calls / "
        f"${adaptive.total_dollars:.6f}\n"
        f"actually executed         {result.total_calls:>4} calls / "
        f"${result.total_cost:.6f}"
    )
    stats = engine.stats.snapshot()
    # Which dedup statistic exists depends on the executed plan: the proxy
    # rewrite judges candidate pairs (match rate), an unrewritten resolve
    # clusters the whole corpus (survivor ratio).
    match_rate = stats["pair_match_rate"]
    survivors = stats["dedup_survivor_ratio"]
    dedup_note = (
        f"pair match rate {match_rate:.2f}"
        if match_rate is not None
        else f"dedup survivors {survivors:.2f}" if survivors is not None else "no dedup ran"
    )
    print(
        "\nobserved by the session: "
        f"filter selectivity {stats['filter_selectivity']}, "
        f"{dedup_note}, call counts {stats['call_count']}"
    )
    print("\nsecond explain (prior -> observed annotations):")
    print(query.explain(planner=engine.planner()))


if __name__ == "__main__":
    main()
