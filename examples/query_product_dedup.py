"""Product dedup as one fluent chain: filter -> resolve -> top_k.

Run with:  python examples/query_product_dedup.py

A synthetic product feed contains several listings per underlying product
(clean plus "refurb" variants).  The query keeps electronics with a short
brand word, deduplicates to one representative listing per product, and
asks for the top three by importance — under a hard $0.25 budget cap.

The interesting part happens before execution: ``.explain()`` shows that
the optimizer ran the cheap per-item filter ahead of the pairwise dedup
and (on a feed this size) wired an LLM-free embedding-blocking proxy in
front of the duplicate judgments, so the executed pipeline asks the LLM
about ~k·n candidate pairs instead of all O(n²).
"""

from __future__ import annotations

from repro import Dataset, DeclarativeEngine, SimulatedLLM
from repro.llm.oracle import Oracle

WORDS = [
    "laptop", "monitor", "keyboard", "mouse", "webcam", "router",
    "speaker", "headset", "printer", "scanner", "tablet", "charger",
]


def product_feed() -> tuple[list[str], Oracle]:
    """Listings with duplicate variants plus the ground-truth oracle.

    The variants share most of their text (like real retailer feeds), which
    is what lets the noisy duplicate judgments recognise them reliably.
    """
    items: list[str] = []
    entities: dict[str, str] = {}
    scores: dict[str, float] = {}
    for rank, word in enumerate(WORDS):
        base = f"{word} pro 4000 wireless workstation device"
        for variant, text in enumerate([base, base + " refurbished", base + " (open box)"]):
            items.append(text)
            entities[text] = word
            scores[text] = float((len(WORDS) - rank) * 100 - variant)
    oracle = Oracle()
    oracle.register_entities(entities)
    oracle.register_scores("important to stock", scores)
    oracle.register_predicate("has a short brand word", lambda text: len(text.split()[0]) <= 6)
    return items, oracle


def main() -> None:
    items, oracle = product_feed()
    engine = DeclarativeEngine(SimulatedLLM(oracle, seed=3), default_model="sim-gpt-3.5-turbo")

    query = (
        Dataset(items, name="product-feed")
        .filter("has a short brand word")
        .resolve()  # one representative listing per product
        .top_k("important to stock", k=3, strategy="pairwise_tournament")
        .with_budget(0.25)
    )

    print(f"{len(items)} listings in the feed; nothing has run yet.\n")
    print(query.explain())
    print()
    naive = query.quote(optimized=False)
    optimized = query.quote()
    print(
        f"naive plan would quote  {naive.total_calls:>4} calls / ${naive.total_dollars:.6f}\n"
        f"optimized plan quotes   {optimized.total_calls:>4} calls / ${optimized.total_dollars:.6f}"
    )

    result = query.run(engine)
    print("\ntop 3 products to stock:", result.items)
    print(f"executed: {result.total_calls} calls, ${result.total_cost:.6f}")
    for name, report in result.report.step_reports.items():
        print(f"  {name:<12} {report.status:<10} {report.calls:>4} calls  ${report.cost:.6f}")


if __name__ == "__main__":
    main()
