"""Case study: duplicate citations with internal consistency (paper Table 3).

Run with:  python examples/entity_resolution.py

A pairwise duplicate-check baseline is precise but misses many duplicates.
Adding comparisons against each citation's embedding nearest neighbors and
flipping "No" answers contradicted by transitive "Yes"-paths raises recall
and F1 — the paper's Section 3.3 strategy.
"""

from __future__ import annotations

from repro import SimulatedLLM
from repro.data import generate_citation_corpus
from repro.metrics import confusion_from_pairs
from repro.operators import ResolveOperator


def main() -> None:
    corpus = generate_citation_corpus(n_entities=60, n_pairs=160, seed=3)
    pairs = [(pair.left_text, pair.right_text) for pair in corpus.pairs]
    labels = [pair.is_duplicate for pair in corpus.pairs]

    operator = ResolveOperator(SimulatedLLM(corpus.oracle(), seed=3), model="sim-gpt-3.5-turbo")

    print(f"{len(pairs)} labelled citation pairs "
          f"({sum(labels)} true duplicates)\n")
    print(f"{'k neighbors':>11} {'F1':>7} {'recall':>7} {'precision':>10} {'LLM pairs':>10} {'flipped':>8}")
    for k in (0, 1, 2):
        result = operator.judge_pairs(
            pairs, strategy="transitive", corpus=corpus.texts(), neighbors_k=k
        )
        confusion = confusion_from_pairs(result.decisions, labels)
        print(
            f"{k:>11} {confusion.f1:>7.3f} {confusion.recall:>7.3f} {confusion.precision:>10.3f} "
            f"{result.metadata['unique_llm_pairs']:>10} {result.metadata['flipped']:>8}"
        )

    print("\nHybrid with a similarity proxy (only confusing pairs go to the LLM):")
    hybrid = operator.judge_pairs(pairs, strategy="proxy_hybrid")
    confusion = confusion_from_pairs(hybrid.decisions, labels)
    print(
        f"  F1 {confusion.f1:.3f}, LLM pairs {hybrid.metadata['llm_pairs']} "
        f"of {len(pairs)} (proxy answered {hybrid.metadata['proxy_pairs']})"
    )


if __name__ == "__main__":
    main()
