"""Quickstart: declare what you want; the system plans and runs it.

Run with:  python examples/quickstart.py

Part 1 uses the fluent ``Dataset`` API — the declarative front door.  A
chain of operators builds a logical plan lazily; ``.explain()`` shows the
optimized plan with per-step cost quotes before a single token is spent,
and ``.run(engine)`` compiles it onto the DAG pipeline engine.

Part 2 keeps the imperative route for contrast: driving one operator by
hand per strategy, then handing a single spec to the engine.
"""

from __future__ import annotations

from repro import Dataset, DeclarativeEngine, SimulatedLLM, SortSpec
from repro.data import FLAVORS, flavor_oracle
from repro.llm.registry import default_registry
from repro.metrics import kendall_tau_b
from repro.operators import SortOperator


def fluent_api() -> None:
    print("=" * 72)
    print("Part 1 - the fluent Dataset API (declare, inspect, run)")
    print("=" * 72)
    truth = list(FLAVORS)
    oracle = flavor_oracle()
    oracle.register_predicate(
        "contains chocolate in the name", lambda flavor: "chocolate" in flavor.lower()
    )
    engine = DeclarativeEngine(SimulatedLLM(oracle, seed=0), default_model="sim-gpt-3.5-turbo")

    query = (
        Dataset(truth, name="flavors")
        .filter("contains chocolate in the name")
        .sort("chocolatey", strategy="pairwise")
        .top_k("chocolatey", k=3, strategy="rating_only")
        .with_budget(0.05)
    )

    print("\nNothing has run yet; the plan and its quote:\n")
    print(query.explain())

    result = query.run(engine)
    print("\ntop 3 chocolate-named flavors:", result.items)
    print(f"calls: {result.total_calls}, dollars: {result.total_cost:.5f}")


def imperative_api() -> None:
    print()
    print("=" * 72)
    print("Part 2 - the imperative route (operators and specs by hand)")
    print("=" * 72)
    truth = list(FLAVORS)
    client = SimulatedLLM(flavor_oracle(), seed=0)

    print("\nSorting 20 flavors by 'chocolatey' with three strategies\n")
    print(f"{'strategy':<16} {'kendall tau-b':>14} {'prompt tok':>11} {'completion tok':>15} {'cost $':>9}")
    for strategy in ("single_prompt", "rating", "pairwise"):
        operator = SortOperator(
            client, "chocolatey", model="sim-gpt-3.5-turbo",
            cost_model=default_registry().cost_model(),
        )
        result = operator.run(truth, strategy=strategy)
        order = list(result.order) + [item for item in truth if item not in set(result.order)]
        tau = kendall_tau_b(order, truth)
        print(
            f"{strategy:<16} {tau:>14.3f} {result.usage.prompt_tokens:>11} "
            f"{result.usage.completion_tokens:>15} {result.cost:>9.5f}"
        )

    print("\nLetting the engine choose a strategy under a $0.005 budget ...")
    engine = DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=0))
    spec = SortSpec(
        items=truth,
        criterion="chocolatey",
        strategy="auto",
        validation_order=truth[::3],  # a small labelled validation sample
        budget_dollars=0.005,
    )
    result = engine.sort(spec)
    print(f"engine picked: {result.strategy}")
    print(f"top 3 flavors: {result.order[:3]}")
    print(f"dollars spent: {engine.spent_dollars:.5f}")


def main() -> None:
    fluent_api()
    imperative_api()


if __name__ == "__main__":
    main()
