"""Quickstart: declare a sorting task and let the engine run it.

Run with:  python examples/quickstart.py

The example sorts 20 ice-cream flavors by "chocolateyness" (the paper's
Table 1 task) three ways — one prompt, per-item ratings, pairwise
comparisons — and prints the accuracy/cost tradeoff, then lets the engine
pick a strategy automatically under a budget.
"""

from __future__ import annotations

from repro import DeclarativeEngine, SimulatedLLM, SortSpec
from repro.data import FLAVORS, flavor_oracle
from repro.llm.registry import default_registry
from repro.metrics import kendall_tau_b
from repro.operators import SortOperator


def main() -> None:
    truth = list(FLAVORS)
    client = SimulatedLLM(flavor_oracle(), seed=0)

    print("Sorting 20 flavors by 'chocolatey' with three strategies\n")
    print(f"{'strategy':<16} {'kendall tau-b':>14} {'prompt tok':>11} {'completion tok':>15} {'cost $':>9}")
    for strategy in ("single_prompt", "rating", "pairwise"):
        operator = SortOperator(
            client, "chocolatey", model="sim-gpt-3.5-turbo",
            cost_model=default_registry().cost_model(),
        )
        result = operator.run(truth, strategy=strategy)
        order = list(result.order) + [item for item in truth if item not in set(result.order)]
        tau = kendall_tau_b(order, truth)
        print(
            f"{strategy:<16} {tau:>14.3f} {result.usage.prompt_tokens:>11} "
            f"{result.usage.completion_tokens:>15} {result.cost:>9.5f}"
        )

    print("\nLetting the engine choose a strategy under a $0.005 budget ...")
    engine = DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=0))
    spec = SortSpec(
        items=truth,
        criterion="chocolatey",
        strategy="auto",
        validation_order=truth[::3],  # a small labelled validation sample
        budget_dollars=0.005,
    )
    result = engine.sort(spec)
    print(f"engine picked: {result.strategy}")
    print(f"top 3 flavors: {result.order[:3]}")
    print(f"dollars spent: {engine.spent_dollars:.5f}")


if __name__ == "__main__":
    main()
