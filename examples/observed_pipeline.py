"""Hierarchical spans, the critical path, and operational metrics.

Run with:  python examples/observed_pipeline.py

Every pipeline run now produces a span tree — pipeline → wave → step →
operator → call — collected by the session's
:class:`~repro.obs.SpanTracker` and attached to the
:class:`~repro.core.workflow.WorkflowReport`.  This example runs a
two-branch DAG and then uses the observability layer three ways:

1. **Waterfall** — ``render_timeline(report)`` draws the run as an
   indented text waterfall, so you can *see* the branches overlapping.
2. **Critical path** — ``critical_path(report.spans)`` extracts the
   dominating chain of steps; its seconds feed
   :class:`~repro.core.physical.RuntimeStats`, so the *next* quote's
   ``total_seconds`` prices the DAG's wall-clock floor instead of the
   serial sum.
3. **Metrics** — the session's :class:`~repro.obs.MetricsRegistry`
   accumulates operational counters (calls by cache outcome, spend,
   latency histograms); ``registry.render()`` is exactly what the
   service's unauthenticated ``GET /metrics`` endpoint serves.
"""

from __future__ import annotations

from repro import DeclarativeEngine, SimulatedLLM, critical_path, render_timeline
from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.obs.timeline import summarize_path

MODEL = "sim-gpt-3.5-turbo"


def two_branch_pipeline() -> PipelineSpec:
    """Two independent sort branches feeding one merge step."""
    return PipelineSpec(
        name="observed-demo",
        steps=[
            PipelineStep(
                "left",
                task=SortSpec(items=list(FLAVORS[:8]), criterion=CHOCOLATEY, strategy="rating"),
            ),
            PipelineStep(
                "right",
                task=SortSpec(items=list(FLAVORS[8:16]), criterion=CHOCOLATEY, strategy="rating"),
            ),
            PipelineStep(
                "merge",
                run=lambda session, inputs: list(inputs["left"].order[:3])
                + list(inputs["right"].order[:3]),
                depends_on=("left", "right"),
            ),
        ],
    )


def main() -> None:
    engine = DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=7), default_model=MODEL)
    report = engine.run_pipeline(two_branch_pipeline(), max_concurrency=4)
    print("merged top flavors:", report.results["merge"])

    # -- 1. the waterfall ------------------------------------------------------------
    print(f"\nspan waterfall ({len(report.spans)} spans, root #{report.span_id}):")
    print(render_timeline(report))

    # -- 2. the critical path --------------------------------------------------------
    path = critical_path(report.spans)
    print(f"\n{summarize_path(path)}")
    observed = engine.session.stats.critical_path_seconds("observed-demo")
    print(f"recorded for future quotes: {observed:.3f}s")

    # A second quote prices wall-clock from the DAG, not the step sum:
    # the two branches overlap, so only the slower one counts.
    quote = engine.quote_pipeline(two_branch_pipeline())
    if quote.total_seconds is not None:
        serial = sum(e.seconds or 0.0 for e in quote.steps.values())
        print(f"next quote: ~{quote.total_seconds:.3f}s critical path (serial sum ~{serial:.3f}s)")

    # -- 3. operational metrics ------------------------------------------------------
    # The same exposition text the service serves at GET /metrics.
    exposition = engine.session.metrics.render()
    interesting = [
        line
        for line in exposition.splitlines()
        if line.startswith(("repro_llm_calls_total", "repro_llm_cost_dollars_total"))
    ]
    print("\nmetrics excerpt:")
    for line in interesting:
        print(f"  {line}")


if __name__ == "__main__":
    main()
