"""Multi-step workflow under one budget: filter, then sort, then top-k.

Run with:  python examples/budget_workflow.py

Shows the engine-level plumbing the paper's vision requires: one
PromptSession (shared cache, tracker, budget) spanning a filtering step, a
sorting step, and a top-k step, with multi-model quality control on the
filter.
"""

from __future__ import annotations

from repro import PromptSession, SimulatedLLM
from repro.core.budget import Budget
from repro.core.workflow import Workflow
from repro.data import FLAVORS, flavor_oracle
from repro.operators import FilterOperator, SortOperator, TopKOperator

CRITERION = "chocolatey"
PREDICATE = "is a dessert flavor containing chocolate or cocoa"


def main() -> None:
    oracle = flavor_oracle()
    oracle.register_predicate(
        PREDICATE, lambda flavor: oracle.score(flavor, CRITERION) >= 5.0
    )
    session = PromptSession(SimulatedLLM(oracle, seed=11), budget=Budget(limit=1.0))

    def filter_step(session_, results):
        operator = FilterOperator(session_.client(), PREDICATE, model="sim-gpt-3.5-turbo")
        result = operator.run(
            list(FLAVORS),
            strategy="ensemble_vote",
            models=["sim-gpt-3.5-turbo", "sim-claude", "sim-small"],
        )
        return result.kept

    def sort_step(session_, results):
        operator = SortOperator(session_.client(), CRITERION, model="sim-gpt-3.5-turbo")
        return operator.run(results["filter"], strategy="rating").order

    def top_step(session_, results):
        operator = TopKOperator(session_.client(), CRITERION, model="sim-gpt-3.5-turbo")
        return operator.run(results["sort"], k=3, strategy="hybrid_rating_comparison").top_items

    workflow = (
        Workflow("chocolate-shortlist")
        .add_step("filter", filter_step, description="keep chocolate-forward flavors")
        .add_step("sort", sort_step, description="rank the survivors")
        .add_step("top", top_step, description="pick the top three")
    )
    report = workflow.execute(session)

    print(f"flavors kept by the filter : {len(report.results['filter'])} of {len(FLAVORS)}")
    print(f"top three flavors          : {report.results['top']}")
    print(f"total prompt tokens        : {report.total_prompt_tokens}")
    print(f"total completion tokens    : {report.total_completion_tokens}")
    print(f"total cost                 : ${report.total_cost:.5f} (budget $1.00)")
    print(f"cache hit rate             : {session.cache.stats.hit_rate:.2%}")


if __name__ == "__main__":
    main()
