"""Blocking 50,000 records through a persisted ANN index.

Run with:  python examples/indexed_blocking.py

A synthetic product catalog holds 12,500 products, each listed four times
with near-identical text (trailing punctuation variants — the classic
dirty-feed shape).  Comparing every pair would mean ~1.25 billion distance
computations before a single LLM call; the legacy embedding scan ranks all
of them.  This example blocks the catalog through the LSH vector index
instead:

* the index is built once and **persisted in the store** under a name
  derived from the corpus content, so the second blocking run loads it
  instead of rebuilding — and, because embeddings live in the store's
  durable cache, re-runs never re-embed a single text;
* ``.explain()`` on a resolve over the same feed shows *why* the
  optimizer prefers blocked-pairwise at this scale: the quote prices the
  index build (embed calls, zero LLM dollars) and k·n candidate
  judgments against n²/2 pairwise judgments.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import Dataset, Store
from repro.index import LSHIndex, corpus_index_name, resolve_embedder
from repro.proxies.blocking import EmbeddingBlocker

N_ENTITIES = 12_500
VARIANTS = 4  # 50,000 records
K = 3

BRANDS = ["acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "soylent"]
LINES = ["widget", "gadget", "fastener", "actuator", "manifold", "bracket", "coupling", "bearing"]
MATERIALS = [
    "stainless steel", "carbon fiber", "anodized aluminum", "titanium alloy",
    "reinforced nylon", "tempered glass", "copper plated", "powder coated",
]


def catalog(n_entities: int, variants: int) -> list[str]:
    """Near-duplicate product listings, ``variants`` per underlying product."""
    rng = np.random.default_rng(7)
    texts: list[str] = []
    for i in range(n_entities):
        brand = BRANDS[int(rng.integers(len(BRANDS)))]
        line = LINES[int(rng.integers(len(LINES)))]
        material = MATERIALS[int(rng.integers(len(MATERIALS)))]
        base = (
            f"{brand} {line} series {i % 13}, {material}, sku-{i:06d} "
            f"rev {i % 97}, warehouse {i % 7}, qty {int(rng.integers(1, 500))}, "
            f"listed by vendor {i % 53} under catalog page {i % 211}"
        )
        texts.extend([base, base + ".", base + " ", base + ","][:variants])
    return texts


def block_once(texts: list[str], store: Store) -> None:
    """One blocking pass: build or load the index, derive candidate pairs."""
    embedder = resolve_embedder(store=store)
    name = corpus_index_name(texts, embedder, prefix="block")

    start = time.perf_counter()
    index = store.load_vector_index(name)
    if index is not None:
        print(f"  loaded persisted index {name!r} in {time.perf_counter() - start:.2f}s")
    else:
        index = LSHIndex(embedder.dimensions, n_tables=6, n_bits=13, seed=0)
        index.add(embedder.embed_batch(texts))
        store.save_vector_index(name, index)
        print(
            f"  embedded + built + persisted index {name!r} "
            f"in {time.perf_counter() - start:.2f}s"
        )

    start = time.perf_counter()
    result = EmbeddingBlocker(k=K, embedder=embedder, index=index).block(texts)
    print(
        f"  knn_graph(k={K}) -> {result.n_candidates:,} candidate pairs "
        f"in {time.perf_counter() - start:.2f}s "
        f"(vs {len(texts) * (len(texts) - 1) // 2:,} all-pairs)"
    )


def main() -> None:
    texts = catalog(N_ENTITIES, VARIANTS)
    print(f"catalog: {len(texts):,} records ({N_ENTITIES:,} products x {VARIANTS} variants)")

    with tempfile.TemporaryDirectory() as tmp:
        with Store(Path(tmp) / "catalog.db") as store:
            print("\nfirst blocking run (cold store):")
            block_once(texts, store)

            print("\nsecond blocking run (same store — nothing recomputed):")
            cache = store.embedding_cache()
            block_once(texts, store)
            print(
                f"  embedding cache after re-run: {cache.stats.misses} misses "
                f"(zero re-embeds), {store.embedding_count():,} vectors stored"
            )

            # Why the optimizer blocks: the plan explains itself.  (A slice
            # keeps the demo quote quick; the shape is identical at 50k.)
            print("\n.explain() for a resolve over this feed:")
            feed = Dataset(texts[:600], name="catalog").resolve()
            print(feed.explain())


if __name__ == "__main__":
    main()
