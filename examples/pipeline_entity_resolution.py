"""Declarative DAG pipeline: block → resolve → repair, plus a parallel branch.

Run with:  python examples/pipeline_entity_resolution.py

The walkthrough covers the three pipeline-engine features in order:

1. **DAG declaration** — a :class:`PipelineSpec` names four steps.  The
   clustering branch chains ``block`` (embedding blocking, no LLM) into
   ``resolve`` (LLM duplicate checks over the blocked candidate pairs,
   declared as a spec *factory* because the pairs only exist at run time)
   into ``repair`` (transitive-closure repair of the match graph).  An
   independent ``judge_labelled`` branch answers the Table-3-style labelled
   pair set; the scheduler runs it concurrently with the clustering branch.
2. **Pre-flight quote** — ``engine.quote_pipeline`` prices every statically
   known step before a single token is spent and lists the run-time-only
   steps as unquoted.
3. **Mid-pipeline budget stop** — re-running the same pipeline under a
   deliberately tiny budget shows the scheduler apportioning the remaining
   dollars per step and stopping cleanly, reporting partial results instead
   of raising.
"""

from __future__ import annotations

from repro import Budget, DeclarativeEngine, PipelineSpec, PipelineStep, SimulatedLLM
from repro.consistency.transitivity import MatchGraph
from repro.core.spec import ResolveSpec
from repro.data import generate_citation_corpus
from repro.metrics import confusion_from_pairs
from repro.proxies.blocking import EmbeddingBlocker

SEED = 3
MODEL = "sim-gpt-3.5-turbo"


def build_pipeline(corpus) -> PipelineSpec:
    texts = corpus.texts()
    labelled_pairs = [(pair.left_text, pair.right_text) for pair in corpus.pairs]

    def block_step(session, inputs):
        blocking = EmbeddingBlocker(k=3).block(texts)
        return [(texts[i], texts[j]) for i, j in blocking.candidate_pairs]

    def resolve_spec(inputs):
        # Built at run time: the candidate pairs are the blocking step's output.
        return ResolveSpec(pairs=inputs["block"], strategy="pairwise")

    def repair_step(session, inputs):
        graph = MatchGraph()
        for text in texts:
            graph.add_node(text)
        for judgment in inputs["resolve"].judgments:
            if judgment.is_duplicate:
                graph.add_match(judgment.left, judgment.right)
            else:
                graph.add_non_match(judgment.left, judgment.right)
        index_of = {text: index for index, text in enumerate(texts)}
        clusters = sorted(
            sorted(index_of[text] for text in component) for component in graph.components()
        )
        return {"clusters": clusters, "flipped": len(graph.conflicts())}

    return PipelineSpec(
        name="entity-resolution",
        steps=[
            PipelineStep("block", run=block_step, description="embedding blocking (no LLM)"),
            PipelineStep(
                "resolve",
                task=resolve_spec,
                depends_on=("block",),
                description="duplicate checks over blocked pairs",
            ),
            PipelineStep(
                "repair",
                run=repair_step,
                depends_on=("resolve",),
                description="transitive-closure repair",
            ),
            PipelineStep(
                "judge_labelled",
                task=ResolveSpec(pairs=labelled_pairs, strategy="pairwise"),
                description="labelled pair set (independent branch)",
            ),
        ],
    )


def main() -> None:
    corpus = generate_citation_corpus(n_entities=20, n_pairs=60, seed=SEED)
    pipeline = build_pipeline(corpus)
    engine = DeclarativeEngine(
        SimulatedLLM(corpus.oracle(), seed=SEED), default_model=MODEL, max_concurrency=4
    )

    # 1. The DAG: independent steps share a wave.
    print(f"pipeline {pipeline.name!r} waves: {pipeline.waves()}\n")

    # 2. Pre-flight quote, per step.
    quote = engine.quote_pipeline(pipeline)
    print("pre-flight quote:")
    for name, estimate in quote.steps.items():
        print(
            f"  {name:<15} {estimate.strategy:<18} {estimate.calls:>4} calls  "
            f"${estimate.dollars:.5f}"
        )
    print(f"  quoted total   : {quote.total_calls} calls, ${quote.total_dollars:.5f}")
    print(f"  unquoted steps : {', '.join(quote.unquoted)} (inputs exist only at run time)\n")

    # 3. Run the whole DAG under one session.
    report = engine.run_pipeline(pipeline)
    repair = report.results["repair"]
    labels = [pair.is_duplicate for pair in corpus.pairs]
    confusion = confusion_from_pairs(report.results["judge_labelled"].decisions, labels)
    print(f"clusters found      : {len(repair['clusters'])} "
          f"(transitivity flipped {repair['flipped']} pair(s))")
    print(f"labelled-pair F1    : {confusion.f1:.3f}")
    print(f"actual cost         : ${report.total_cost:.5f} in {report.total_calls} calls")
    print(f"step order          : {report.step_order}\n")

    # 4. The same pipeline under a tiny budget stops cleanly mid-pipeline:
    #    each step gets a quote-weighted lease on the remaining dollars, and
    #    once the money runs out the report says what completed, what was
    #    stopped mid-batch, and what was never dispatched.
    small = Budget(limit=quote.total_dollars / 20)
    budget_engine = DeclarativeEngine(
        SimulatedLLM(corpus.oracle(), seed=SEED),
        default_model=MODEL,
        budget=small,
        max_concurrency=4,
    )
    stopped = budget_engine.run_pipeline(pipeline)
    print(f"with a ${small.limit:.5f} budget:")
    print(f"  stopped early     : {stopped.stopped_early} ({stopped.stop_reason})")
    for name, step in stopped.step_reports.items():
        allocation = f"${step.allocation:.5f}" if step.allocation is not None else "-"
        print(f"  {name:<15} {step.status:<9} allocation {allocation}")
    print(f"  spent             : ${budget_engine.spent_dollars:.5f}")


if __name__ == "__main__":
    main()
