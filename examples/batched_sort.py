"""Case study: batched concurrent execution of a pairwise sort.

Run with:  python examples/batched_sort.py

Every fine-grained strategy is a bag of independent unit tasks — here, the 190
pairwise comparisons behind a 20-item sort.  Passing ``max_concurrency`` to an
operator (or to ``DeclarativeEngine``/``PromptSession``) fans those unit tasks
out over a thread pool; at temperature 0 the results are identical to
sequential execution, only the wall-clock changes.

Against the in-process simulator there is no latency to hide, so this example
wraps the client with a small artificial per-call delay to stand in for API
round-trips, then shows the sequential and concurrent runs producing the same
order while the concurrent one finishes ~4x sooner.
"""

from __future__ import annotations

import time

from repro import SimulatedLLM
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.metrics import kendall_tau_b
from repro.operators import SortOperator

LATENCY_SECONDS = 0.005  # pretend each unit task is a 5 ms API round-trip


class LatencyClient:
    """Adds a fixed delay per call, like a network round-trip would."""

    def __init__(self, inner, latency: float) -> None:
        self._inner = inner
        self._latency = latency
        self.default_model = getattr(inner, "default_model", "default")

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        time.sleep(self._latency)
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


def run_once(max_concurrency: int):
    operator = SortOperator(
        LatencyClient(SimulatedLLM(flavor_oracle(), seed=42), LATENCY_SECONDS),
        CHOCOLATEY,
        model="sim-gpt-3.5-turbo",
        max_concurrency=max_concurrency,
    )
    started = time.perf_counter()
    result = operator.run(list(FLAVORS), strategy="pairwise")
    elapsed = time.perf_counter() - started
    return result, elapsed


def main() -> None:
    sequential, sequential_elapsed = run_once(max_concurrency=1)
    concurrent, concurrent_elapsed = run_once(max_concurrency=4)

    print("Pairwise sort of 20 flavors (190 unit tasks, 5 ms simulated latency):")
    print(f"  sequential        : {sequential_elapsed:.2f}s, {sequential.usage.calls} calls")
    print(f"  max_concurrency=4 : {concurrent_elapsed:.2f}s, {concurrent.usage.calls} calls")
    print(f"  speedup           : {sequential_elapsed / concurrent_elapsed:.1f}x")
    print(f"  identical results : {concurrent.order == sequential.order}")
    print(f"  kendall tau-b     : {kendall_tau_b(concurrent.order, list(FLAVORS)):.3f}")


if __name__ == "__main__":
    main()
