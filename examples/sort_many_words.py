"""Case study: sorting 100 words alphabetically (paper Table 2).

Run with:  python examples/sort_many_words.py

Long single-prompt sorts drop items and occasionally hallucinate new ones.
The hybrid coarse→fine strategy re-inserts every missed word with pairwise
comparisons, recovering a near-perfect ordering.
"""

from __future__ import annotations

import random

from repro import SimulatedLLM
from repro.data import random_words
from repro.llm.oracle import Oracle, prefix_margin
from repro.metrics import kendall_tau_b
from repro.operators import SortOperator

CRITERION = "alphabetical order"


def main() -> None:
    words = random_words(100, seed=42)
    truth = sorted(words, key=str.lower)

    oracle = Oracle()
    oracle.register_key(CRITERION, lambda word: word.lower(), margin=prefix_margin)
    operator = SortOperator(SimulatedLLM(oracle, seed=42), CRITERION, model="sim-claude-2")

    baseline = operator.run(words, strategy="single_prompt")
    rng = random.Random(0)
    filled = list(baseline.order)
    for missing in baseline.missing:
        filled.insert(rng.randrange(len(filled) + 1), missing)

    print("Baseline (one prompt):")
    print(f"  missing words      : {len(baseline.missing)} -> {baseline.missing}")
    print(f"  hallucinated words : {len(baseline.hallucinated)} -> {baseline.hallucinated}")
    print(f"  kendall tau-b      : {kendall_tau_b(filled, truth):.3f}")

    hybrid = operator.run(words, strategy="hybrid_sort_insert")
    print("\nHybrid sort -> insert:")
    print(f"  missing after insert: {len(set(words) - set(hybrid.order))}")
    print(f"  kendall tau-b       : {kendall_tau_b(hybrid.order, truth):.3f}")
    print(f"  extra LLM calls     : {hybrid.usage.calls - baseline.usage.calls}")


if __name__ == "__main__":
    main()
