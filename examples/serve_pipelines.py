"""The multi-tenant pipeline service, driven fully in-process.

Run with:  python examples/serve_pipelines.py

The service turns the engine into a job-oriented HTTP system: tenants
authenticate with API keys, submit pipelines as JSON, and get back job ids
they poll or stream.  Everything below runs through the real ASGI app via
the in-process :class:`repro.service.ServiceClient` — no sockets, no
server dependency.  (To serve the same app over real HTTP, install the
``serve`` extra and call ``repro.service.serve(app)``.)

The walkthrough plays four scenarios:

1. **Quote, then submit** — price a pipeline without running it, submit it,
   poll the job to completion, and read the per-step reports.
2. **Streamed progress** — replay the job's lifecycle as server-sent
   events: status transitions, each settled step, the final outcome.
3. **Admission control** — a tenant whose budget cannot cover the quote is
   refused up front with ``402`` and the full price in the error body,
   before a single LLM call is spent.
4. **Tenant isolation** — a second tenant runs the same pipeline with its
   own budget, cache namespace, and usage accounting.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import SimulatedLLM, Store
from repro.core.spec import FilterSpec, PipelineSpec, PipelineStep, SortSpec
from repro.core.spec_codec import pipeline_to_dict
from repro.llm.oracle import Oracle
from repro.service import ServiceApp, ServiceClient, TenantConfig, TenantRegistry

WORDS = ["apple", "banana", "cherry", "damson", "elder", "fig"]
PREDICATE = "starts early in the alphabet"
MODEL = "sim-gpt-3.5-turbo"


def make_llm() -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key("alphabetical order", key=lambda item: item)
    oracle.register_predicate(PREDICATE, lambda item: item[0] in "abc")
    return SimulatedLLM(oracle, seed=11)


def pipeline_payload() -> dict:
    """The JSON wire form a real HTTP client would POST."""
    return pipeline_to_dict(
        PipelineSpec(
            name="screen-and-rank",
            steps=[
                PipelineStep(
                    name="screen",
                    task=FilterSpec(
                        items=WORDS, predicate=PREDICATE, strategy="per_item"
                    ),
                ),
                PipelineStep(
                    name="rank",
                    task=SortSpec(
                        items=WORDS,
                        criterion="alphabetical order",
                        strategy="pairwise",
                    ),
                    depends_on=("screen",),
                ),
            ],
        )
    )


async def poll(client: ServiceClient, job_id: str) -> dict:
    while True:
        record = (await client.get(f"/v1/jobs/{job_id}")).json()
        if record["status"] in ("succeeded", "failed", "stopped"):
            return record
        await asyncio.sleep(0.01)


async def main() -> None:
    store_path = Path(tempfile.mkdtemp()) / "service-store.db"
    registry = TenantRegistry(
        make_llm(),
        [
            TenantConfig(
                tenant_id="acme",
                api_key="acme-secret",
                budget_dollars=1.0,
                default_model=MODEL,
            ),
            TenantConfig(
                tenant_id="shoestring",
                api_key="shoestring-secret",
                budget_dollars=0.000001,  # cannot afford anything
                default_model=MODEL,
            ),
        ],
        store=Store(store_path),
    )
    app = ServiceApp(registry)
    acme = ServiceClient(app, api_key="acme-secret")

    # -- 1. quote, submit, poll ------------------------------------------------
    print("=== 1. quote, then submit ===")
    quoted = await acme.post("/v1/pipelines/quote", json_body=pipeline_payload())
    quote = quoted.json()["quote"]
    print(f"quoted: {quote['total_calls']} calls, ${quote['total_dollars']:.6f}")

    submitted = await acme.post("/v1/pipelines", json_body=pipeline_payload())
    job_id = submitted.json()["job_id"]
    print(f"submitted: HTTP {submitted.status}, job {job_id[:12]}…")
    record = await poll(acme, job_id)
    print(f"finished: {record['status']}")
    for name, step in sorted(record["steps"].items()):
        print(f"  step {name!r}: {step['status']}, {step['calls']} calls, "
              f"${step['cost']:.6f}")

    # -- 2. the event stream ---------------------------------------------------
    print("\n=== 2. the job's event stream ===")
    events = await acme.get(f"/v1/jobs/{job_id}/events")
    for event in events.sse_events():
        print(f"  {event}")

    # -- 3. admission control --------------------------------------------------
    print("\n=== 3. an unaffordable submission is refused up front ===")
    broke = ServiceClient(app, api_key="shoestring-secret")
    refused = await broke.post("/v1/pipelines", json_body=pipeline_payload())
    body = refused.json()
    print(f"HTTP {refused.status}: {body['error']['message']}")
    print(f"the price it could not pay: ${body['quote']['total_dollars']:.6f} "
          "(computed without spending a call)")

    # -- 4. usage accounting, per tenant --------------------------------------
    print("\n=== 4. per-tenant usage ===")
    usage = (await acme.get("/v1/tenants/acme/usage")).json()
    budget = usage["budget"]
    print(f"acme spent ${budget['spent']:.6f} of ${budget['limit']:.2f} "
          f"(${budget['remaining']:.6f} left)")
    print(f"traced calls: {usage['traces']['calls']}, "
          f"cache hits: {usage['traces']['cache_hits']}")

    await app.shutdown()
    registry.store.close()


if __name__ == "__main__":
    asyncio.run(main())
