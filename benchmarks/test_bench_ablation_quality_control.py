"""Ablation B — quality control by multi-LLM voting and Dawid–Skene (Section 3.5).

A single cheap model mislabels a noticeable fraction of predicate checks.
Majority voting across three models, and Dawid–Skene aggregation (which also
estimates each model's accuracy without labels), should recover most of that
accuracy at three times the single-model cost.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.data.words import random_words
from repro.exceptions import ResponseParseError
from repro.llm.oracle import Oracle
from repro.llm.parsing import extract_yes_no
from repro.llm.prompts import predicate_check_prompt
from repro.llm.simulated import SimulatedLLM
from repro.quality.dawid_skene import dawid_skene
from repro.quality.voting import majority_vote

PREDICATE = "is a long word"
MODELS = ("sim-small", "sim-gpt-3.5-turbo", "sim-claude")
N_ITEMS = 60


def run_quality_control_ablation(seed: int = 0) -> dict[str, float]:
    items = random_words(N_ITEMS, seed=seed)
    oracle = Oracle()
    oracle.register_predicate(PREDICATE, lambda word: len(word) >= 8)
    client = SimulatedLLM(oracle, seed=seed)

    answers: dict[str, dict[str, bool]] = {}
    for item in items:
        answers[item] = {}
        for model in MODELS:
            response = client.complete(predicate_check_prompt(item, PREDICATE), model=model)
            try:
                answers[item][model] = extract_yes_no(response.text)
            except ResponseParseError:
                answers[item][model] = False

    truth = {item: len(item) >= 8 for item in items}

    def accuracy(predictions: dict[str, bool]) -> float:
        return sum(predictions[item] == truth[item] for item in items) / len(items)

    single_cheap = accuracy({item: answers[item]["sim-small"] for item in items})
    single_best = accuracy({item: answers[item]["sim-claude"] for item in items})
    voted = accuracy(
        {item: bool(majority_vote(list(answers[item].values())).winner) for item in items}
    )
    em = dawid_skene(answers)
    em_accuracy = accuracy({item: bool(em.predictions[item]) for item in items})

    return {
        "single_cheap": single_cheap,
        "single_best": single_best,
        "majority_vote": voted,
        "dawid_skene": em_accuracy,
        "em_rank_ok": float(
            em.worker_accuracy["sim-claude"] >= em.worker_accuracy["sim-small"] - 0.05
        ),
    }


def test_ablation_quality_control(benchmark):
    measured = benchmark.pedantic(run_quality_control_ablation, rounds=1, iterations=1)

    rows = [
        ["single model (sim-small)", f"{measured['single_cheap']:.3f}", 1],
        ["single model (sim-claude)", f"{measured['single_best']:.3f}", 1],
        ["majority vote (3 models)", f"{measured['majority_vote']:.3f}", 3],
        ["Dawid-Skene EM (3 models)", f"{measured['dawid_skene']:.3f}", 3],
    ]
    print_table(
        "Ablation B: quality control on predicate checks",
        ["aggregation", "accuracy", "calls per item"],
        rows,
    )

    # Voting across models beats the cheapest single model.
    assert measured["majority_vote"] >= measured["single_cheap"]
    # EM aggregation performs at least as well as plain majority voting - 5%.
    assert measured["dawid_skene"] >= measured["majority_vote"] - 0.05
    # EM's latent worker-accuracy estimates rank the better model correctly.
    assert measured["em_rank_ok"] == 1.0
