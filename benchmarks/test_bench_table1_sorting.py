"""Table 1 — sorting 20 flavors by chocolateyness with three prompting strategies.

Paper values (gpt-3.5-turbo, 20 flavors):

    strategy                     Kendall tau-b   prompt tokens   completion tokens
    sorting in one prompt        0.526           152             117
    coarse-grained ratings       0.547           1615            900
    fine-grained comparisons     0.737           12065           10884

Expected shape: accuracy ordering pairwise > rating >= single prompt, and cost
ordering pairwise >> rating >> single prompt.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM
from repro.metrics.ranking import kendall_tau_b
from repro.operators.sort import SortOperator

PAPER = {
    "single_prompt": {"tau": 0.526, "prompt": 152, "completion": 117},
    "rating": {"tau": 0.547, "prompt": 1615, "completion": 900},
    "pairwise": {"tau": 0.737, "prompt": 12065, "completion": 10884},
}


def run_table1(seeds: tuple[int, ...] = (0, 1, 2)) -> dict[str, dict[str, float]]:
    """Run the three sorting strategies and collect tau + token counts.

    Accuracy is averaged over ``seeds`` (independent simulated-LLM
    instantiations) because a single 20-item trial of a noisy strategy has
    high variance; token counts are reported from the first seed, where they
    are deterministic.
    """
    truth = list(FLAVORS)
    results: dict[str, dict[str, float]] = {}
    for strategy in ("single_prompt", "rating", "pairwise"):
        taus = []
        prompt_tokens = completion_tokens = 0
        dollars = 0.0
        for position, seed in enumerate(seeds):
            operator = SortOperator(
                SimulatedLLM(flavor_oracle(), seed=seed),
                CHOCOLATEY,
                model="sim-gpt-3.5-turbo",
                cost_model=default_registry().cost_model(),
            )
            result = operator.run(truth, strategy=strategy)
            order = list(result.order) + [
                item for item in truth if item not in set(result.order)
            ]
            taus.append(kendall_tau_b(order, truth))
            if position == 0:
                prompt_tokens = result.usage.prompt_tokens
                completion_tokens = result.usage.completion_tokens
                dollars = result.cost
        results[strategy] = {
            "tau": sum(taus) / len(taus),
            "prompt": prompt_tokens,
            "completion": completion_tokens,
            "dollars": dollars,
        }
    return results


def test_table1_sorting_strategies(benchmark):
    measured = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    rows = []
    for strategy, paper in PAPER.items():
        ours = measured[strategy]
        rows.append(
            [
                strategy,
                f"{paper['tau']:.3f}",
                f"{ours['tau']:.3f}",
                paper["prompt"],
                int(ours["prompt"]),
                paper["completion"],
                int(ours["completion"]),
            ]
        )
    print_table(
        "Table 1: sorting 20 flavors (paper vs measured)",
        ["strategy", "tau paper", "tau ours", "prompt paper", "prompt ours", "compl paper", "compl ours"],
        rows,
    )

    # Shape assertions: accuracy ordering and cost ordering match the paper.
    assert measured["pairwise"]["tau"] > measured["rating"]["tau"]
    assert measured["pairwise"]["tau"] > measured["single_prompt"]["tau"] + 0.1
    assert measured["rating"]["tau"] >= measured["single_prompt"]["tau"] - 0.1
    assert (
        measured["pairwise"]["prompt"]
        > measured["rating"]["prompt"]
        > measured["single_prompt"]["prompt"]
    )
    # Pairwise costs roughly an order of magnitude more than ratings (paper: ~7.5x).
    assert measured["pairwise"]["prompt"] / measured["rating"]["prompt"] > 4
