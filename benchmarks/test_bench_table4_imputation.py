"""Table 4 — missing-value imputation with k-NN / LLM-only / hybrid strategies.

Paper values (Claude, k = 3, Restaurant and Buy datasets):

    strategy                 Rest acc   Buy acc    Rest tokens      Buy tokens
    naive k-NN               73.26%     67.69%     0                0
    hybrid (no examples)     84.88%     87.69%     2838 (-50%)      1624 (-55%)
    LLM-only (no examples)   59.30%     81.54%     5676             3640
    hybrid (3 examples)      89.53%     87.69%     7955 (-50%)      5133 (-55%)
    LLM-only (3 examples)    89.53%     92.31%     15910            11505

Expected shape: the hybrid matches or beats LLM-only at a substantially lower
token cost, and beats the k-NN proxy; adding examples raises accuracy and cost
for both LLM strategies.  Datasets here are the synthetic Restaurant/Buy
generators (DESIGN.md section 2).
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.data.products import ImputationDataset, generate_buy_dataset, generate_restaurant_dataset
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM
from repro.operators.impute import ImputeOperator

PAPER = {
    ("restaurants", "knn", 0): 0.7326,
    ("restaurants", "hybrid", 0): 0.8488,
    ("restaurants", "llm_only", 0): 0.5930,
    ("restaurants", "hybrid", 3): 0.8953,
    ("restaurants", "llm_only", 3): 0.8953,
    ("buy", "knn", 0): 0.6769,
    ("buy", "hybrid", 0): 0.8769,
    ("buy", "llm_only", 0): 0.8154,
    ("buy", "hybrid", 3): 0.8769,
    ("buy", "llm_only", 3): 0.9231,
}

N_RECORDS = 150


def _run_dataset(data: ImputationDataset, seed: int) -> dict[tuple[str, int], dict[str, float]]:
    client = SimulatedLLM(data.oracle(), seed=seed)
    results: dict[tuple[str, int], dict[str, float]] = {}
    for n_examples in (0, 3):
        for strategy in ("knn", "hybrid", "llm_only"):
            if strategy == "knn" and n_examples == 3:
                continue  # examples are irrelevant to the proxy
            operator = ImputeOperator(
                client, model="sim-claude", cost_model=default_registry().cost_model()
            )
            run = operator.run(data, strategy=strategy, n_examples=n_examples)
            results[(strategy, n_examples)] = {
                "accuracy": data.accuracy(run.predictions),
                "prompt_tokens": run.usage.prompt_tokens,
                "llm_queries": run.llm_queries,
            }
    return results


def run_table4(seed: int = 5) -> dict[str, dict[tuple[str, int], dict[str, float]]]:
    """Run all strategies on both datasets."""
    return {
        "restaurants": _run_dataset(generate_restaurant_dataset(N_RECORDS, seed=seed), seed),
        "buy": _run_dataset(generate_buy_dataset(N_RECORDS, seed=seed + 1), seed),
    }


def test_table4_hybrid_imputation(benchmark):
    measured = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    rows = []
    for dataset_name, runs in measured.items():
        for (strategy, n_examples), ours in sorted(runs.items()):
            paper = PAPER.get((dataset_name, strategy, n_examples))
            rows.append(
                [
                    dataset_name,
                    strategy,
                    n_examples,
                    f"{paper:.3f}" if paper is not None else "-",
                    f"{ours['accuracy']:.3f}",
                    int(ours["prompt_tokens"]),
                ]
            )
    print_table(
        "Table 4: missing-value imputation (paper vs measured)",
        ["dataset", "strategy", "#examples", "acc paper", "acc ours", "prompt tokens"],
        rows,
    )

    for dataset_name, runs in measured.items():
        knn = runs[("knn", 0)]
        for n_examples in (0, 3):
            hybrid = runs[("hybrid", n_examples)]
            llm_only = runs[("llm_only", n_examples)]
            # The hybrid matches or beats LLM-only while costing noticeably less.
            assert hybrid["accuracy"] >= llm_only["accuracy"] - 0.05
            assert hybrid["prompt_tokens"] < llm_only["prompt_tokens"] * 0.85
            # The hybrid also beats the pure k-NN proxy.
            assert hybrid["accuracy"] >= knn["accuracy"] - 0.02
        # Examples increase both accuracy and cost for the LLM strategies.
        assert runs[("llm_only", 3)]["accuracy"] >= runs[("llm_only", 0)]["accuracy"]
        assert runs[("llm_only", 3)]["prompt_tokens"] > runs[("llm_only", 0)]["prompt_tokens"]
        # The k-NN proxy costs zero tokens.
        assert knn["prompt_tokens"] == 0
