"""Ablation D — cheap-to-expensive model cascade (Section 3.4, FrugalGPT-style).

A confidence-thresholded cascade sends every comparison to a cheap model first
and escalates only low-confidence answers to an expensive model.  The ablation
sweeps the confidence threshold and reports accuracy vs dollar cost, comparing
against the all-cheap and all-expensive baselines.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.parsing import extract_choice
from repro.llm.prompts import pairwise_comparison_prompt
from repro.llm.registry import default_registry
from repro.llm.router import CascadeRouter, CascadeTier
from repro.llm.simulated import SimulatedLLM
from repro.tokenizer.cost import Usage

THRESHOLDS = (0.0, 0.75, 0.9, 1.01)  # 0.0 = always cheap, 1.01 = always escalate
CHEAP, EXPENSIVE = "sim-small", "sim-gpt-4"


def _comparison_pairs() -> list[tuple[str, str]]:
    flavors = list(FLAVORS)
    return [(flavors[i], flavors[j]) for i in range(len(flavors)) for j in range(i + 1, len(flavors))]


def run_cascade_ablation(seed: int = 0) -> dict[float, dict[str, float]]:
    cost_model = default_registry().cost_model()
    pairs = _comparison_pairs()
    results: dict[float, dict[str, float]] = {}
    for threshold in THRESHOLDS:
        client = SimulatedLLM(flavor_oracle(), seed=seed)
        router = CascadeRouter(
            [CascadeTier(CHEAP, client), CascadeTier(EXPENSIVE, client)],
            confidence_threshold=min(1.0, threshold) if threshold <= 1.0 else 1.0,
        )
        # threshold > 1 cannot be configured directly; emulate "always escalate"
        # by setting the threshold to 1.0 (confidences never reach it exactly).
        correct = 0
        usage_by_model: dict[str, Usage] = {CHEAP: Usage(), EXPENSIVE: Usage()}
        for first, second in pairs:
            response = router.complete(pairwise_comparison_prompt(first, second, CHOCOLATEY))
            tiers = response.metadata["cascade_tiers"]
            # Attribute usage to the tiers that actually ran (approximate split).
            share = Usage(
                response.usage.prompt_tokens // len(tiers),
                response.usage.completion_tokens // len(tiers),
                1,
            )
            for tier in tiers:
                usage_by_model[tier].add(share)
            if extract_choice(response.text, ["A", "B"]) == "A":
                correct += 1
        dollars = sum(cost_model.cost(model, usage) for model, usage in usage_by_model.items())
        results[threshold] = {
            "accuracy": correct / len(pairs),
            "dollars": dollars,
            "escalations": router.escalations,
        }
    return results


def test_ablation_cascade_threshold(benchmark):
    measured = benchmark.pedantic(run_cascade_ablation, rounds=1, iterations=1)

    rows = [
        [
            threshold,
            f"{values['accuracy']:.3f}",
            f"${values['dollars']:.5f}",
            int(values["escalations"]),
        ]
        for threshold, values in measured.items()
    ]
    print_table(
        "Ablation D: cascade confidence threshold on 190 flavor comparisons",
        ["threshold", "accuracy (A wins)", "dollars", "escalations"],
        rows,
    )

    always_cheap = measured[THRESHOLDS[0]]
    always_escalate = measured[THRESHOLDS[-1]]
    middle = measured[0.9]
    # Escalating everything costs the most; never escalating costs the least.
    assert always_cheap["dollars"] < middle["dollars"] <= always_escalate["dollars"] * 1.01
    # The expensive path is at least as accurate as the cheap-only path.
    assert always_escalate["accuracy"] >= always_cheap["accuracy"] - 0.03
    # A middle threshold spends between the two extremes and keeps most accuracy.
    assert middle["accuracy"] >= always_cheap["accuracy"] - 0.05
