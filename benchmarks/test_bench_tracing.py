"""Benchmark — tracing overhead, latency percentiles, and cache-aware quotes.

Two properties of the observability layer (ISSUE 6):

* recording and querying the latency reservoir is cheap enough to sit on
  the per-call hot path — the tracer must never dominate a pipeline whose
  unit of work is an LLM round-trip;
* the cache-aware quote closes the gap between quoted and observed spend:
  after a run has warmed the session cache, a second ``.quote()`` of the
  same query discounts its dollars by the observed hit-rate, so the quote
  error against the (all-hits, zero-dollar) warm execution shrinks.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.core.physical import RuntimeStats
from repro.query import Dataset
from repro.trace import Tracer
from tests.query.support import clean_engine, product_corpus

N_ENTITIES = 10
VARIANTS = 2


def test_latency_percentile_query_performance(benchmark):
    """Percentile queries over a full reservoir stay microsecond-scale."""
    stats = RuntimeStats()
    labels = ["filter:per_item", "sort:pairwise", "resolve:pairwise"]
    for label in labels:
        for i in range(RuntimeStats.LATENCY_SAMPLE_CAP):
            stats.record_latency(label, float(i % 250))

    def query_percentiles():
        return [
            (stats.latency_p50(label), stats.latency_p95(label)) for label in labels
        ]

    percentiles = benchmark(query_percentiles)

    rows = [
        [label, f"{p50:.1f}", f"{p95:.1f}"]
        for label, (p50, p95) in zip(labels, percentiles)
    ]
    print_table("Latency percentiles per strategy label", ["label", "p50 ms", "p95 ms"], rows)
    for p50, p95 in percentiles:
        assert p50 is not None and p95 is not None
        assert p50 <= p95


def test_tracer_record_throughput(benchmark):
    """Appending to the ring buffer is far cheaper than any LLM call."""
    tracer = Tracer(capacity=4096)

    def record_one_thousand():
        for i in range(1000):
            tracer.record(model="m", prompt=f"p{i}", duration_ms=1.0)

    benchmark(record_one_thousand)
    assert len(tracer) <= 4096
    assert tracer.records()[-1].call_id == len(tracer) + tracer.dropped - 1


def test_second_quote_prices_cache_hits_below_full_cost(benchmark):
    """After a cached run, quoted dollars drop toward the observed spend."""
    items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    engine = clean_engine(oracle)
    query = (
        Dataset(items, name="tracing-bench")
        .filter("keeps everything", expected_selectivity=1.0)
        .resolve()
    )

    cold_quote = query.quote(optimized=False, planner=engine.planner())
    query.run(engine, optimized=False)  # cold execution, populates the cache
    warm_run = query.run(engine, optimized=False)  # answered by the cache
    observed_spend = warm_run.total_cost

    def warm_quote_fn():
        return query.quote(optimized=False, planner=engine.planner())

    warm_quote = benchmark.pedantic(warm_quote_fn, rounds=1, iterations=1)

    cold_error = abs(cold_quote.total_dollars - observed_spend)
    warm_error = abs(warm_quote.total_dollars - observed_spend)
    print_table(
        "Cache-aware quoting: dollars vs a fully cached execution",
        ["quote", "quoted $", "observed warm $", "|error|"],
        [
            ["cold (priors)", f"{cold_quote.total_dollars:.6f}", f"{observed_spend:.6f}",
             f"{cold_error:.6f}"],
            ["warm (hit-rate discount)", f"{warm_quote.total_dollars:.6f}",
             f"{observed_spend:.6f}", f"{warm_error:.6f}"],
        ],
    )

    # A warm rerun is answered entirely from the session cache, so its
    # observed spend is zero — and the discounted quote must price the
    # cached traffic strictly below the full-cost quote while never
    # reaching zero itself.
    assert observed_spend == 0.0
    hit_rate = engine.session.stats.cache_hit_rate()
    assert hit_rate is not None and hit_rate > 0.0
    assert 0.0 < warm_quote.total_dollars < cold_quote.total_dollars
    assert warm_error < cold_error

    # The warm quote also carries the annotation and a wall-clock figure —
    # the session has measured per-call latencies for every executed label.
    assert any("cache hit-rate" in note for note in warm_quote.notes)
    assert not cold_quote.notes
    assert cold_quote.total_seconds is None
    assert warm_quote.total_seconds is not None
