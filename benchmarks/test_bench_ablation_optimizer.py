"""Ablation C — validation-sample strategy selection under a budget (Section 4).

The engine labels a small validation sample, measures every candidate sorting
strategy on it, extrapolates cost to the full dataset, and picks a strategy.
The ablation checks that the recommendation moves from cheap strategies to the
expensive pairwise strategy as the budget loosens, and that the auto-selected
strategy's accuracy tracks the best affordable candidate.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.core.engine import DeclarativeEngine
from repro.core.spec import SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.simulated import SimulatedLLM
from repro.metrics.ranking import kendall_tau_b

# Dollar budgets chosen so that (under the default price table) only the
# single-prompt strategy fits the first one, the linear rating strategy also
# fits the second, and everything including O(n^2) pairwise fits the third.
BUDGETS = (0.001, 0.005, 0.2)


def run_optimizer_ablation(seed: int = 0) -> dict[float, dict[str, float]]:
    results: dict[float, dict[str, float]] = {}
    truth = list(FLAVORS)
    for budget in BUDGETS:
        engine = DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=seed))
        # The labelled validation sample spans the whole chocolateyness range
        # (every third flavor) so that it is representative of the full list.
        spec = SortSpec(
            items=truth,
            criterion=CHOCOLATEY,
            strategy="auto",
            validation_order=truth[::3],
            budget_dollars=budget,
        )
        result = engine.sort(spec)
        order = list(result.order) + [item for item in truth if item not in set(result.order)]
        results[budget] = {
            "strategy": result.strategy,
            "tau": kendall_tau_b(order, truth),
            "spent": engine.spent_dollars,
        }
    return results


def test_ablation_strategy_optimizer(benchmark):
    measured = benchmark.pedantic(run_optimizer_ablation, rounds=1, iterations=1)

    rows = [
        [f"${budget:.4f}", values["strategy"], f"{values['tau']:.3f}", f"${values['spent']:.5f}"]
        for budget, values in measured.items()
    ]
    print_table(
        "Ablation C: budget-driven strategy selection for the 20-flavor sort",
        ["budget", "chosen strategy", "tau", "dollars spent"],
        rows,
    )

    cheap_choice = measured[BUDGETS[0]]["strategy"]
    rich_choice = measured[BUDGETS[-1]]["strategy"]
    # A tight budget rules out the quadratic pairwise strategy entirely.
    assert cheap_choice in {"single_prompt", "rating"}
    # A loose budget affords the finer-grained strategies; the selector picks
    # whichever scored best on the labelled validation sample.
    assert rich_choice in {"rating", "pairwise"}
    # More budget never hurts accuracy (beyond validation-sample noise).
    assert measured[BUDGETS[-1]]["tau"] >= measured[BUDGETS[0]]["tau"] - 0.1
