"""Ablation A — batch size of rating tasks (Section 4 "hyperparameters such as batch size").

Packing several rating tasks into one prompt reduces the number of calls and
the total prompt tokens (the instructions are amortised) at some accuracy
cost.  This ablation sweeps the batch size for the rating-based sorting
strategy on the 20-flavor task.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.simulated import SimulatedLLM
from repro.metrics.ranking import kendall_tau_b
from repro.operators.sort import SortOperator

BATCH_SIZES = (1, 2, 5, 10, 20)


def run_batching_ablation(seed: int = 0) -> dict[int, dict[str, float]]:
    truth = list(FLAVORS)
    results: dict[int, dict[str, float]] = {}
    for batch_size in BATCH_SIZES:
        operator = SortOperator(
            SimulatedLLM(flavor_oracle(), seed=seed), CHOCOLATEY, model="sim-gpt-3.5-turbo"
        )
        result = operator.run(truth, strategy="rating", batch_size=batch_size)
        results[batch_size] = {
            "tau": kendall_tau_b(result.order, truth),
            "calls": result.usage.calls,
            "prompt_tokens": result.usage.prompt_tokens,
        }
    return results


def test_ablation_rating_batch_size(benchmark):
    measured = benchmark.pedantic(run_batching_ablation, rounds=1, iterations=1)

    rows = [
        [batch, f"{values['tau']:.3f}", int(values["calls"]), int(values["prompt_tokens"])]
        for batch, values in measured.items()
    ]
    print_table(
        "Ablation A: rating batch size on the 20-flavor sort",
        ["batch size", "tau", "calls", "prompt tokens"],
        rows,
    )

    # Calls drop as the batch grows, and so do prompt tokens (amortised header).
    assert measured[20]["calls"] < measured[5]["calls"] < measured[1]["calls"]
    assert measured[20]["prompt_tokens"] < measured[1]["prompt_tokens"]
    # Ratings remain better than random even fully batched (tau above zero-ish),
    # and unbatched ratings stay in the same accuracy band as the largest batch.
    assert measured[20]["tau"] > -0.1
    assert measured[1]["tau"] >= measured[20]["tau"] - 0.25
