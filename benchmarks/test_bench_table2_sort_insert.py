"""Table 2 — sorting 100 words alphabetically: baseline vs hybrid sort→insert.

Paper values (Claude 2, 100 random words, 3 trials):

    trial   method                  tau     #missing   #hallucinated
    1       sorting in one prompt   0.966   4          1
    1       sort then insert        0.999   0          0
    2       sorting in one prompt   0.889   7          0
    2       sort then insert        0.980   0          0
    3       sorting in one prompt   0.940   4          1
    3       sort then insert        0.992   0          0

Expected shape: the baseline drops a handful of words per trial; the hybrid
re-insertion removes all misses and lifts tau to ≈0.98+ (paper average 0.990).
"""

from __future__ import annotations

import random

from benchmarks.conftest import print_table
from repro.data.words import random_words
from repro.llm.oracle import Oracle, prefix_margin
from repro.llm.simulated import SimulatedLLM
from repro.metrics.ranking import kendall_tau_b
from repro.operators.sort import SortOperator

CRITERION = "alphabetical order"
N_WORDS = 100
N_TRIALS = 3

PAPER_BASELINE_TAU = [0.966, 0.889, 0.940]
PAPER_HYBRID_TAU = [0.999, 0.980, 0.992]
PAPER_MISSING = [4, 7, 4]


def run_table2() -> list[dict[str, float]]:
    """Run both strategies over three trials of 100 words each."""
    trials = []
    for trial in range(N_TRIALS):
        words = random_words(N_WORDS, seed=trial)
        truth = sorted(words, key=str.lower)
        oracle = Oracle()
        oracle.register_key(CRITERION, lambda word: word.lower(), margin=prefix_margin)
        operator = SortOperator(
            SimulatedLLM(oracle, seed=trial), CRITERION, model="sim-claude-2"
        )

        baseline = operator.run(words, strategy="single_prompt")
        # Paper scoring: missing words are inserted at random positions first.
        rng = random.Random(trial)
        filled = list(baseline.order)
        for missing in baseline.missing:
            filled.insert(rng.randrange(len(filled) + 1), missing)

        hybrid = operator.run(words, strategy="hybrid_sort_insert")
        trials.append(
            {
                "baseline_tau": kendall_tau_b(filled, truth),
                "baseline_missing": len(baseline.missing),
                "baseline_hallucinated": len(baseline.hallucinated),
                "hybrid_tau": kendall_tau_b(hybrid.order, truth),
                "hybrid_missing": len(set(words) - set(hybrid.order)),
                "hybrid_calls": hybrid.usage.calls,
            }
        )
    return trials


def test_table2_sort_then_insert(benchmark):
    trials = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    rows = []
    for index, trial in enumerate(trials):
        rows.append(
            [
                index + 1,
                "single prompt",
                f"{PAPER_BASELINE_TAU[index]:.3f}",
                f"{trial['baseline_tau']:.3f}",
                PAPER_MISSING[index],
                trial["baseline_missing"],
                trial["baseline_hallucinated"],
            ]
        )
        rows.append(
            [
                index + 1,
                "sort then insert",
                f"{PAPER_HYBRID_TAU[index]:.3f}",
                f"{trial['hybrid_tau']:.3f}",
                0,
                trial["hybrid_missing"],
                "-",
            ]
        )
    print_table(
        "Table 2: sorting 100 words alphabetically (paper vs measured)",
        ["trial", "method", "tau paper", "tau ours", "missing paper", "missing ours", "halluc ours"],
        rows,
    )

    for trial in trials:
        # The baseline drops at least one word; the hybrid recovers all of them.
        assert trial["baseline_missing"] >= 1
        assert trial["hybrid_missing"] == 0
        # The hybrid beats the baseline and lands near-perfect, as in the paper.
        assert trial["hybrid_tau"] > trial["baseline_tau"]
        assert trial["hybrid_tau"] > 0.95
    average_hybrid = sum(trial["hybrid_tau"] for trial in trials) / len(trials)
    assert average_hybrid > 0.96  # paper reports an average of 0.990
