"""Benchmark — adaptive runtime statistics close the quote/actual gap.

The physical-planning layer's feedback loop (ISSUE 4): the first quote of a
dedup workload prices the predicate filter at its static 0.5 selectivity
prior, so the pairwise dedup downstream is quoted over *half* the listings
it will really see.  After one execution the session's
:class:`~repro.core.physical.RuntimeStats` holds the observed selectivity
(the predicate keeps everything) and the observed dedup survivor ratio, and
the second quote — same query, same session — prices the whole pipeline
from observations.

The benchmark runs the workload twice on one session and asserts:

* the second quote's call-count error against the actual execution shrinks
  (here: to zero — every stage of the naive plan is exactly sized once the
  selectivity is known);
* execution itself is untouched by the feedback — the second run makes the
  same calls and returns the same items (and a fresh-session run agrees),
  so adaptivity changes *predictions*, never *results*.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.query import Dataset
from tests.query.support import clean_engine, product_corpus

N_ENTITIES = 12
VARIANTS = 3  # 36 listings -> 630 candidate pairs for the naive dedup


def _query(items: list[str]) -> Dataset:
    return (
        Dataset(items, name="adaptive-bench")
        .filter("keeps everything", expected_selectivity=0.5)
        .resolve()
    )


def test_second_quote_uses_observed_stats(benchmark):
    items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    engine = clean_engine(oracle)
    query = _query(items)

    first_quote = query.quote(optimized=False, planner=engine.planner())
    first_run = query.run(engine, optimized=False)  # the cold execution
    actual_calls = first_run.total_calls

    def second_quote_fn():
        return query.quote(optimized=False, planner=engine.planner())

    second_quote = benchmark.pedantic(second_quote_fn, rounds=1, iterations=1)

    first_error = abs(first_quote.total_calls - actual_calls)
    second_error = abs(second_quote.total_calls - actual_calls)

    rows = [
        ["first (priors)", first_quote.total_calls, f"{first_quote.total_dollars:.6f}",
         actual_calls, first_error],
        ["second (observed)", second_quote.total_calls, f"{second_quote.total_dollars:.6f}",
         actual_calls, second_error],
    ]
    print_table(
        "Adaptive planning: quote error before/after observed stats",
        ["quote", "quoted calls", "quoted $", "actual calls", "|error|"],
        rows,
    )

    # The session observed the predicate's real selectivity (1.0, not the
    # 0.5 prior) and the dedup survivor ratio, so the second quote must be
    # strictly closer to the workload's real call count — and on this
    # workload the naive plan is exactly sized once the selectivity is
    # known.
    assert engine.stats.filter_selectivity("keeps everything") == 1.0
    assert second_error < first_error
    assert second_error == 0

    # Feedback changes predictions, never execution: re-running on the
    # shared session returns the same items (for free — the session cache
    # answers every repeated prompt), and a fresh session replays the
    # workload call-for-call.
    warm = query.run(engine, optimized=False)
    assert warm.items == first_run.items
    fresh = _query(items).run(clean_engine(oracle), optimized=False)
    assert fresh.items == first_run.items
    assert fresh.total_calls == actual_calls


def test_optimized_plan_still_matches_naive_results_with_stats(benchmark):
    """Adaptive quotes + the full rule set keep the optimizer contract."""
    items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    engine = clean_engine(oracle)
    query = _query(items)

    naive = _query(items).run(clean_engine(oracle), optimized=False)
    first = query.run(engine)

    def rerun():
        return query.run(engine)

    second = benchmark.pedantic(rerun, rounds=1, iterations=1)

    print_table(
        "Adaptive planning: optimized runs vs the naive plan",
        ["plan", "actual calls", "actual $", "items"],
        [
            ["naive", naive.total_calls, f"{naive.total_cost:.6f}", len(naive.items)],
            ["optimized #1", first.total_calls, f"{first.total_cost:.6f}", len(first.items)],
            ["optimized #2 (stats)", second.total_calls, f"{second.total_cost:.6f}",
             len(second.items)],
        ],
    )

    assert first.items == naive.items
    assert second.items == naive.items
    assert first.total_calls < naive.total_calls  # the proxy rewrite pays
