"""Benchmark — ANN-indexed blocking at 50k records (ISSUE 9 acceptance).

Two pinned claims:

* **Scale** — building the LSH index and deriving the full kNN candidate
  graph over 50,000 near-duplicate product records is more than 100x faster
  than the brute-force pairwise embedding scan the blocker used before the
  index layer existed, while recovering at least 95% of the exact
  mutual-kNN candidate pairs.  The scan is infeasible to run outright at
  50k (its distance matrix alone is 20 GB), so its wall-clock is measured
  on a 4,000-record subset with the *same arithmetic the legacy
  ``HashingEmbedder.nearest_neighbors`` scan performs* and extrapolated
  quadratically — conservative, since the scan's per-row ``argsort`` makes
  it O(n² log n), not O(n²).
* **Fidelity** — at small n with the exact index, blocking produces
  candidate pairs *identical* to the legacy scan's, so the Table 3
  entity-resolution call counts are unchanged at equal k.

Embedding cost is excluded from both sides of the ratio: scan and index
consume the same vectors, and with a store attached they are embedded once
ever (``tests/index/test_build.py`` pins the zero-re-embed property).
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import print_table
from repro.index import ExactIndex, LSHIndex
from repro.llm.embeddings import HashingEmbedder
from repro.proxies.blocking import EmbeddingBlocker
from tests.query.support import product_corpus

N_ENTITIES = 12_500
VARIANTS = 4  # 50,000 records
K = 3
CALIBRATION_SIZE = 4_000
SAMPLE_QUERIES = 300

#: Tuned for this corpus shape: 6 tables x 13 bits keeps buckets small
#: enough that ranking work is a tiny multiple of n, while near-duplicate
#: variants still collide in at least one table with high probability.
N_TABLES = 6
N_BITS = 13

BRANDS = ["acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "soylent"]
LINES = ["widget", "gadget", "fastener", "actuator", "manifold", "bracket", "coupling", "bearing"]
MATERIALS = [
    "stainless steel", "carbon fiber", "anodized aluminum", "titanium alloy",
    "reinforced nylon", "tempered glass", "copper plated", "powder coated",
]
COLORS = ["matte black", "brushed silver", "safety orange", "forest green"]


def catalog_corpus(n_entities: int, variants: int) -> list[str]:
    """Near-duplicate product listings: each entity appears ``variants`` times.

    The variants differ by trailing punctuation/whitespace — the classic
    dirty-catalog shape blocking exists for.  Records are long enough that
    a one-character mutation is an angularly tiny perturbation, exactly as
    with real embeddings of near-identical records.
    """
    rng = np.random.default_rng(7)
    texts: list[str] = []
    for i in range(n_entities):
        brand = BRANDS[int(rng.integers(len(BRANDS)))]
        line = LINES[int(rng.integers(len(LINES)))]
        material = MATERIALS[int(rng.integers(len(MATERIALS)))]
        color = COLORS[int(rng.integers(len(COLORS)))]
        base = (
            f"{brand} {line} series {i % 13}, {material}, {color}, "
            f"sku-{i:06d} rev {i % 97}, warehouse {i % 7}, "
            f"qty {int(rng.integers(1, 500))}, "
            f"listed by vendor {i % 53} under catalog page {i % 211}, "
            f"unit weight {int(rng.integers(1, 900))} g, lead time {i % 21} days"
        )
        texts.extend([base, base + ".", base + " ", base + ","][:variants])
    return texts


def scan_seconds(matrix: np.ndarray) -> float:
    """Wall-clock of the legacy scan's arithmetic over ``matrix`` (median of 3).

    Mirrors ``HashingEmbedder.nearest_neighbors`` exactly: full float64 Gram
    expansion, then a full ``argsort`` per row.
    """
    timings = []
    for _ in range(3):
        start = time.perf_counter()
        squared_norms = np.sum(matrix * matrix, axis=1)
        distances = (
            squared_norms[:, None] + squared_norms[None, :] - 2.0 * (matrix @ matrix.T)
        )
        np.fill_diagonal(distances, np.inf)
        for row in range(len(matrix)):
            np.argsort(distances[row])[:K]
        timings.append(time.perf_counter() - start)
    return sorted(timings)[1]


def exact_neighbors_for(
    matrix: np.ndarray, squared_norms: np.ndarray, rows: np.ndarray
) -> dict[int, list[int]]:
    """Exact top-K neighbors of ``rows`` by direct distance computation."""
    neighbors: dict[int, list[int]] = {}
    for row in rows:
        distances = squared_norms + squared_norms[row] - 2.0 * (matrix @ matrix[row])
        distances[row] = np.inf
        order = np.argpartition(distances, K)[: K + 1]
        order = order[np.argsort(distances[order])][:K]
        neighbors[int(row)] = [int(col) for col in order]
    return neighbors


class TestVectorIndexAtScale:
    def test_lsh_blocking_beats_scan_100x_with_095_recall(self):
        texts = catalog_corpus(N_ENTITIES, VARIANTS)
        n = len(texts)
        assert n == N_ENTITIES * VARIANTS
        matrix = HashingEmbedder().embed_batch(texts)

        # -- baseline: the legacy scan, calibrated then extrapolated --------
        calibration = scan_seconds(matrix[:CALIBRATION_SIZE])
        scan_extrapolated = calibration * (n / CALIBRATION_SIZE) ** 2

        # -- the index path: build + full candidate graph (best of 2) -------
        best = None
        for _ in range(2):
            index = LSHIndex(matrix.shape[1], n_tables=N_TABLES, n_bits=N_BITS, seed=0)
            start = time.perf_counter()
            index.add(matrix)
            build_seconds = time.perf_counter() - start
            start = time.perf_counter()
            graph = index.knn_graph(K)
            graph_seconds = time.perf_counter() - start
            total = build_seconds + graph_seconds
            if best is None or total < best[0]:
                best = (total, build_seconds, graph_seconds, graph)
        total_seconds, build_seconds, graph_seconds, graph = best
        ratio = scan_extrapolated / total_seconds

        # -- sampled mutual-pair recall against exact ground truth ----------
        rng = np.random.default_rng(1)
        sampled = rng.choice(n, size=SAMPLE_QUERIES, replace=False)
        squared_norms = np.einsum("ij,ij->i", matrix, matrix)
        # Exact neighbors for the sample *and* everything the sample points
        # at, so mutuality is decided from exact lists on both endpoints.
        frontier = set(int(row) for row in sampled)
        exact = exact_neighbors_for(matrix, squared_norms, np.asarray(sorted(frontier)))
        partners = {col for cols in exact.values() for col in cols} - frontier
        exact.update(
            exact_neighbors_for(matrix, squared_norms, np.asarray(sorted(partners)))
        )
        sample_rows = set(int(row) for row in sampled)
        exact_pairs = {
            (min(row, other), max(row, other))
            for row in sample_rows
            for other in exact[row]
            if row in exact[other]
        }
        lsh_pairs = {
            (min(row, other), max(row, other))
            for row, others in graph.items()
            for other in others
            if row in graph.get(other, [])
        }
        recall = len(exact_pairs & lsh_pairs) / len(exact_pairs)

        print_table(
            "ANN-indexed blocking at 50k records (paper: Table 3 machinery at scale)",
            ["metric", "value"],
            [
                ["records", n],
                ["scan (measured @4k, median of 3)", f"{calibration:.2f}s"],
                ["scan (extrapolated @50k)", f"{scan_extrapolated:.1f}s"],
                ["LSH build", f"{build_seconds:.2f}s"],
                ["LSH knn_graph", f"{graph_seconds:.2f}s"],
                ["speedup", f"{ratio:.0f}x"],
                ["mutual-pair recall (sampled)", f"{recall:.3f}"],
                ["candidates examined", index.candidates_examined],
            ],
        )

        assert ratio > 100.0, (
            f"LSH build+graph {total_seconds:.2f}s is only {ratio:.0f}x the "
            f"extrapolated {scan_extrapolated:.1f}s scan"
        )
        assert recall >= 0.95, f"sampled mutual-pair recall {recall:.3f} below 0.95"
        # The approximation does its work: candidate ranking touched a tiny
        # fraction of the n^2/2 pair space.
        assert index.candidates_examined < 0.01 * n * (n - 1) / 2


class TestBlockingCallCountsUnchanged:
    def test_exact_index_preserves_table3_call_counts(self):
        """Blocking through the exact index = the scan, pair for pair."""
        items, _ = product_corpus(10, 3)
        embedder = HashingEmbedder()
        rows = []
        for k in (1, 2, 3, 5):
            scan = EmbeddingBlocker(embedder=embedder, k=k).block(items)
            indexed = EmbeddingBlocker(
                embedder=embedder, k=k, index=ExactIndex(embedder.dimensions)
            ).block(items)
            rows.append(
                [k, scan.n_candidates, indexed.n_candidates,
                 "yes" if indexed.candidate_pairs == scan.candidate_pairs else "NO"]
            )
            assert indexed.candidate_pairs == scan.candidate_pairs
        print_table(
            "Blocking call counts: scan vs exact index (equal k)",
            ["k", "scan pairs", "index pairs", "identical"],
            rows,
        )
