"""Throughput benchmark — thread-pool vs. asyncio-native dispatch.

Against a real API every unit task is a network round-trip; this benchmark
models a 50 ms round-trip and dispatches the same bag of independent unit
tasks two ways:

* **threads** — :class:`~repro.core.executor.BatchExecutor` at its documented
  default pool size (:data:`~repro.core.executor.DEFAULT_POOL_SIZE` = 8),
  where each concurrent call pays one blocked OS thread.
* **async** — :class:`~repro.core.executor.AsyncBatchExecutor` at concurrency
  64, where the same latency is awaited on a single event loop: 64 pending
  awaits, zero proportional threads.

Expected shape: identical results and call counts (the async layer changes
*scheduling*, not *work*), with async wall-clock at least 5x below the
thread pool — the ideal ratio is 64/8 = 8x — and no thread-count blowup
while 64 calls are in flight.
"""

from __future__ import annotations

import asyncio
import threading
import time

from benchmarks.conftest import print_table
from repro.core.executor import DEFAULT_POOL_SIZE, AsyncBatchExecutor, BatchExecutor
from repro.llm.base import LLMResponse
from repro.tokenizer.cost import Usage

#: Simulated network round-trip per unit task.  Big enough that scheduling
#: overhead (thread switches, event-loop turns) is negligible next to it.
LATENCY_SECONDS = 0.05
ASYNC_CONCURRENCY = 64
CALLS = 320  # threads: 320/8 * 50ms = 2.0s; async: 320/64 * 50ms = 0.25s


class LatencyBackend:
    """A deterministic backend where every call costs one 50 ms round-trip.

    The sync path blocks a worker thread (``time.sleep``); the async path
    awaits the same latency on the loop (``asyncio.sleep``) — which is
    exactly the difference between the two execution models under test.  It
    also samples ``threading.active_count()`` at every async call so the
    benchmark can assert the event loop ran the fan-out without spawning
    threads proportional to the concurrency.
    """

    def __init__(self) -> None:
        self.sync_calls = 0
        self.async_calls = 0
        self.peak_async_threads = 0
        self._lock = threading.Lock()

    def _respond(self, prompt: str, model: str | None) -> LLMResponse:
        return LLMResponse(
            text=f"pong:{prompt}", model=model or "latency", usage=Usage(1, 8, 4)
        )

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        with self._lock:
            self.sync_calls += 1
        time.sleep(LATENCY_SECONDS)
        return self._respond(prompt, model)

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        self.async_calls += 1
        self.peak_async_threads = max(self.peak_async_threads, threading.active_count())
        await asyncio.sleep(LATENCY_SECONDS)
        return self._respond(prompt, model)


def run_async_comparison() -> dict[str, dict[str, float]]:
    prompts = [f"unit-task-{index}" for index in range(CALLS)]

    thread_backend = LatencyBackend()
    thread_executor = BatchExecutor(thread_backend, max_concurrency=DEFAULT_POOL_SIZE)
    started = time.perf_counter()
    thread_responses = thread_executor.run(prompts)
    thread_elapsed = time.perf_counter() - started

    async_backend = LatencyBackend()
    async_executor = AsyncBatchExecutor(async_backend, max_concurrency=ASYNC_CONCURRENCY)
    baseline_threads = threading.active_count()
    started = time.perf_counter()
    async_responses = asyncio.run(async_executor.run(prompts))
    async_elapsed = time.perf_counter() - started

    # Result parity: the async layer reschedules the same unit tasks.
    assert [r.text for r in async_responses] == [r.text for r in thread_responses]
    assert thread_backend.sync_calls == async_backend.async_calls == CALLS
    # No proportional threads: 64-way fan-out on the loop may bridge nothing,
    # so the process thread count stays at (about) its pre-run baseline
    # instead of growing by one OS thread per in-flight call.
    assert async_backend.peak_async_threads <= baseline_threads + 4

    return {
        f"threads (x{DEFAULT_POOL_SIZE})": {
            "elapsed": thread_elapsed,
            "calls": thread_backend.sync_calls,
            "peak_threads": DEFAULT_POOL_SIZE,
        },
        f"async (x{ASYNC_CONCURRENCY})": {
            "elapsed": async_elapsed,
            "calls": async_backend.async_calls,
            "peak_threads": async_backend.peak_async_threads,
        },
    }


def test_async_dispatch_beats_thread_pool_by_5x(benchmark):
    measured = benchmark.pedantic(run_async_comparison, rounds=1, iterations=1)

    rows = [
        [mode, f"{values['elapsed']:.3f}s", int(values["calls"]), int(values["peak_threads"])]
        for mode, values in measured.items()
    ]
    print_table(
        f"Async throughput: {CALLS} unit tasks, 50 ms simulated round-trip",
        ["mode", "wall-clock", "calls", "threads in flight"],
        rows,
    )

    threads = measured[f"threads (x{DEFAULT_POOL_SIZE})"]
    async_mode = measured[f"async (x{ASYNC_CONCURRENCY})"]
    assert async_mode["calls"] == threads["calls"]
    # The acceptance bar: >= 5x.  The ideal ratio is 64/8 = 8x; 5x leaves
    # slack for event-loop overhead on slow CI machines.
    assert threads["elapsed"] >= 5.0 * async_mode["elapsed"]
