"""Benchmark — span tracing must stay invisible next to real LLM latency.

The tracker's contract (ISSUE 10) is that hierarchical tracing is cheap
enough to leave on everywhere: on a workload whose unit of work is a
model round-trip, enabling spans may cost at most 5% extra wall-clock.
A fixed-sleep client stands in for network latency so the measurement is
dominated by deterministic work, and min-of-repeats discards scheduler
noise.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table
from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.simulated import SimulatedLLM

MODEL = "sim-gpt-3.5-turbo"
CALL_DELAY_SECONDS = 0.005
REPEATS = 5
MAX_OVERHEAD = 1.05


class FixedLatencyClient:
    """Adds a deterministic per-request delay, like a (very fast) backend."""

    def __init__(self, inner: SimulatedLLM, delay: float = CALL_DELAY_SECONDS) -> None:
        self._inner = inner
        self._delay = delay

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        time.sleep(self._delay)
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )

    def complete_batch(self, prompts, *, model=None, temperature=0.0, max_tokens=None):
        time.sleep(self._delay * max(1, len(prompts)))
        return self._inner.complete_batch(
            prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )


def _pipeline() -> PipelineSpec:
    return PipelineSpec(
        name="span-overhead",
        steps=[
            PipelineStep(
                "left",
                task=SortSpec(
                    items=list(FLAVORS[:8]), criterion=CHOCOLATEY, strategy="rating"
                ),
            ),
            PipelineStep(
                "right",
                task=SortSpec(
                    items=list(FLAVORS[8:16]), criterion=CHOCOLATEY, strategy="rating"
                ),
            ),
        ],
    )


def _run_once(*, spans_enabled: bool) -> float:
    """One cold pipeline run; a fresh session per run keeps caches cold."""
    session = PromptSession(
        FixedLatencyClient(SimulatedLLM(flavor_oracle(), seed=21)),
        use_cache=False,
    )
    session.spans.enabled = spans_enabled
    engine = DeclarativeEngine(session=session, default_model=MODEL)
    started = time.perf_counter()
    report = engine.run_pipeline(_pipeline(), max_concurrency=2)
    elapsed = time.perf_counter() - started
    assert report.results["left"].order and report.results["right"].order
    assert bool(report.spans) is spans_enabled
    return elapsed


def test_span_tracing_overhead_stays_under_five_percent():
    # Warm both code paths before measuring, then interleave the repeats
    # so drift (CPU frequency, other tests) hits both arms equally.
    _run_once(spans_enabled=False)
    _run_once(spans_enabled=True)
    baseline: list[float] = []
    traced: list[float] = []
    for _ in range(REPEATS):
        baseline.append(_run_once(spans_enabled=False))
        traced.append(_run_once(spans_enabled=True))

    best_baseline = min(baseline)
    best_traced = min(traced)
    ratio = best_traced / best_baseline
    print_table(
        "Span tracing overhead (min of repeats)",
        ["variant", "best seconds", "ratio"],
        [
            ["spans off", f"{best_baseline:.4f}", "1.000"],
            ["spans on", f"{best_traced:.4f}", f"{ratio:.3f}"],
        ],
    )
    assert ratio <= MAX_OVERHEAD, (
        f"span tracing costs {(ratio - 1) * 100:.1f}% wall-clock "
        f"(budget {(MAX_OVERHEAD - 1) * 100:.0f}%)"
    )
