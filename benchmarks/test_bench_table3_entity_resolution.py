"""Table 3 — entity resolution with transitivity over k-NN-augmented comparisons.

Paper values (gpt-3.5-turbo over the DBLP–Google-Scholar validation slice):

    nearest neighbors   F1      recall   precision
    0 (baseline)        0.658   0.503    0.952
    1                   0.706   0.569    0.930
    2                   0.722   0.593    0.923

Expected shape: the baseline is high-precision / low-recall; adding neighbor
comparisons plus transitive "No"-flipping raises recall and F1 while precision
drops only slightly.  The corpus here is the synthetic DBLP-style generator
(see DESIGN.md section 2), so absolute numbers differ.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.data.citations import generate_citation_corpus
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM
from repro.metrics.classification import confusion_from_pairs
from repro.operators.resolve import ResolveOperator

PAPER = {
    0: {"f1": 0.658, "recall": 0.503, "precision": 0.952},
    1: {"f1": 0.706, "recall": 0.569, "precision": 0.930},
    2: {"f1": 0.722, "recall": 0.593, "precision": 0.923},
}

N_ENTITIES = 60
N_PAIRS = 160


def run_table3(seed: int = 3) -> dict[int, dict[str, float]]:
    """Judge the labelled pair set with k = 0, 1, 2 neighbor augmentation."""
    corpus = generate_citation_corpus(n_entities=N_ENTITIES, n_pairs=N_PAIRS, seed=seed)
    pairs = [(pair.left_text, pair.right_text) for pair in corpus.pairs]
    labels = [pair.is_duplicate for pair in corpus.pairs]
    texts = corpus.texts()

    operator = ResolveOperator(
        SimulatedLLM(corpus.oracle(), seed=seed),
        model="sim-gpt-3.5-turbo",
        cost_model=default_registry().cost_model(),
    )
    results: dict[int, dict[str, float]] = {}
    for k in (0, 1, 2):
        judged = operator.judge_pairs(pairs, strategy="transitive", corpus=texts, neighbors_k=k)
        confusion = confusion_from_pairs(judged.decisions, labels)
        results[k] = {
            "f1": confusion.f1,
            "recall": confusion.recall,
            "precision": confusion.precision,
            "llm_pairs": judged.metadata["unique_llm_pairs"],
            "flipped": judged.metadata["flipped"],
        }
    return results


def test_table3_transitive_entity_resolution(benchmark):
    measured = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    rows = []
    for k, paper in PAPER.items():
        ours = measured[k]
        rows.append(
            [
                k,
                f"{paper['f1']:.3f}",
                f"{ours['f1']:.3f}",
                f"{paper['recall']:.3f}",
                f"{ours['recall']:.3f}",
                f"{paper['precision']:.3f}",
                f"{ours['precision']:.3f}",
                int(ours["llm_pairs"]),
                int(ours["flipped"]),
            ]
        )
    print_table(
        "Table 3: duplicate citations with transitivity (paper vs measured)",
        ["k", "F1 paper", "F1 ours", "R paper", "R ours", "P paper", "P ours", "LLM pairs", "flipped"],
        rows,
    )

    baseline = measured[0]
    # The baseline is precision-heavy with limited recall, like the paper's.
    assert baseline["precision"] > 0.85
    assert baseline["recall"] < 0.8
    # Neighbor augmentation + transitivity raises recall and F1.
    assert measured[1]["recall"] >= baseline["recall"]
    assert measured[2]["recall"] > baseline["recall"]
    assert max(measured[1]["f1"], measured[2]["f1"]) > baseline["f1"]
    # Precision may dip slightly but must stay high (paper: 0.95 -> 0.92).
    assert measured[2]["precision"] > 0.8
    # The augmentation asks more unique pairs than the baseline.
    assert measured[1]["llm_pairs"] > baseline["llm_pairs"]
    assert measured[2]["llm_pairs"] > measured[1]["llm_pairs"]
