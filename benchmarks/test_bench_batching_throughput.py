"""Throughput benchmark — sequential vs. batched execution of the Table 1 sort.

The pairwise strategy on the 20-flavor workload issues 190 independent
comparison unit tasks.  Against a real API each one is a network round-trip;
this benchmark models that with a client wrapper that sleeps a fixed per-call
latency, then runs the workload sequentially (``max_concurrency=1``) and
batched (``max_concurrency=4``).

Expected shape: identical results and call counts (the batch layer changes
*scheduling*, not *work*), with batched wall-clock at least 2x below
sequential because the simulated round-trips overlap.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.base import LLMClient, LLMResponse
from repro.llm.simulated import SimulatedLLM
from repro.operators.sort import SortOperator

#: Simulated network latency per unit task.  Large enough to dominate the
#: simulator's compute (a fraction of a millisecond per call), small enough to
#: keep the benchmark quick: 190 calls * 5 ms = ~0.95 s sequential.
LATENCY_SECONDS = 0.005
CONCURRENCY = 4


class LatencyClient:
    """Wrapper that adds a fixed per-call delay, like an API round-trip.

    It deliberately does *not* implement ``complete_batch``: each unit task
    pays its own round-trip, which is exactly the regime where the concurrent
    dispatch path earns its keep.
    """

    def __init__(self, inner: LLMClient, latency: float) -> None:
        self._inner = inner
        self._latency = latency
        self.default_model = getattr(inner, "default_model", "default")

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        time.sleep(self._latency)
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


def _run_sort(max_concurrency: int) -> tuple[float, object]:
    operator = SortOperator(
        LatencyClient(SimulatedLLM(flavor_oracle(), seed=0), LATENCY_SECONDS),
        CHOCOLATEY,
        model="sim-gpt-3.5-turbo",
        max_concurrency=max_concurrency,
    )
    started = time.perf_counter()
    result = operator.run(list(FLAVORS), strategy="pairwise")
    return time.perf_counter() - started, result


def run_throughput_comparison() -> dict[str, dict[str, float]]:
    sequential_elapsed, sequential_result = _run_sort(1)
    batched_elapsed, batched_result = _run_sort(CONCURRENCY)
    assert batched_result.order == sequential_result.order
    assert batched_result.scores == sequential_result.scores
    return {
        "sequential": {
            "elapsed": sequential_elapsed,
            "calls": sequential_result.usage.calls,
            "tokens": sequential_result.usage.total_tokens,
        },
        f"batched (x{CONCURRENCY})": {
            "elapsed": batched_elapsed,
            "calls": batched_result.usage.calls,
            "tokens": batched_result.usage.total_tokens,
        },
    }


def test_batched_dispatch_halves_wall_clock(benchmark):
    measured = benchmark.pedantic(run_throughput_comparison, rounds=1, iterations=1)

    rows = [
        [mode, f"{values['elapsed']:.3f}s", int(values["calls"]), int(values["tokens"])]
        for mode, values in measured.items()
    ]
    print_table(
        "Batching throughput: pairwise sort of 20 flavors, 5 ms simulated latency",
        ["mode", "wall-clock", "calls", "total tokens"],
        rows,
    )

    sequential = measured["sequential"]
    batched = measured[f"batched (x{CONCURRENCY})"]
    # Call-count parity: batching reschedules the same unit tasks.
    assert batched["calls"] == sequential["calls"]
    assert batched["tokens"] == sequential["tokens"]
    # The acceptance bar: >= 2x fewer wall-clock-dominating sequential
    # round-trips.  With 4 workers the ideal speedup is 4x; 2x leaves slack
    # for thread-pool overhead on slow CI machines.
    assert sequential["elapsed"] >= 2.0 * batched["elapsed"]
