"""Throughput benchmark — linear chain vs. DAG scheduling of a pipeline.

The workload is two independent rating-sort branches (10 unit tasks each)
feeding a merge step.  Expressed as a linear chain the branches run one
after the other; expressed as a DAG the scheduler puts both branches in the
same wave and overlaps them on the session executor.  As in the PR 1
batching benchmark, a client wrapper sleeps a fixed per-call latency to
model API round-trips.

Operator-level concurrency is pinned to 1 in both modes, so any speedup is
attributable purely to pipeline-level scheduling — the same unit tasks, the
same call count, identical element-wise results, less wall-clock.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table
from repro.core.engine import DeclarativeEngine
from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.base import LLMClient, LLMResponse
from repro.llm.simulated import SimulatedLLM

#: Simulated network latency per unit task (see the batching benchmark).
LATENCY_SECONDS = 0.008
#: Scheduler pool size for the DAG mode: one worker per independent branch.
CONCURRENCY = 2
MODEL = "sim-gpt-3.5-turbo"

LEFT = list(FLAVORS[:10])
RIGHT = list(FLAVORS[10:])


class LatencyClient:
    """Adds a fixed per-call delay, like an API round-trip."""

    def __init__(self, inner: LLMClient, latency: float) -> None:
        self._inner = inner
        self._latency = latency
        self.default_model = getattr(inner, "default_model", "default")

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        time.sleep(self._latency)
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


def _pipeline(*, linear: bool) -> PipelineSpec:
    return PipelineSpec(
        name="bench-linear" if linear else "bench-dag",
        steps=[
            PipelineStep(
                "left", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
            ),
            PipelineStep(
                "right",
                task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating"),
                depends_on=("left",) if linear else (),
            ),
            PipelineStep(
                "merge",
                run=lambda session, inputs: list(inputs["left"].order)
                + list(inputs["right"].order),
                depends_on=("right",) if linear else ("left", "right"),
            ),
        ],
    )


def _run(*, linear: bool, max_concurrency: int) -> tuple[float, object]:
    engine = DeclarativeEngine(
        LatencyClient(SimulatedLLM(flavor_oracle(), seed=0), LATENCY_SECONDS),
        default_model=MODEL,
        max_concurrency=1,  # operators stay sequential; only the scheduler fans out
    )
    started = time.perf_counter()
    report = engine.run_pipeline(_pipeline(linear=linear), max_concurrency=max_concurrency)
    return time.perf_counter() - started, report


def run_throughput_comparison() -> dict[str, dict[str, object]]:
    linear_elapsed, linear_report = _run(linear=True, max_concurrency=1)
    dag_elapsed, dag_report = _run(linear=False, max_concurrency=CONCURRENCY)
    # Scheduling changes wall-clock, never the work or the answers.
    for name in ("left", "right"):
        assert dag_report.results[name].order == linear_report.results[name].order
        assert dag_report.results[name].scores == linear_report.results[name].scores
    assert dag_report.results["merge"] == linear_report.results["merge"]
    return {
        "linear chain": {
            "elapsed": linear_elapsed,
            "calls": linear_report.total_calls,
            "waves": len(linear_report.waves),
        },
        f"DAG (x{CONCURRENCY})": {
            "elapsed": dag_elapsed,
            "calls": dag_report.total_calls,
            "waves": len(dag_report.waves),
        },
    }


def test_dag_branches_overlap_wall_clock(benchmark):
    measured = benchmark.pedantic(run_throughput_comparison, rounds=1, iterations=1)

    rows = [
        [mode, f"{values['elapsed']:.3f}s", int(values["calls"]), int(values["waves"])]
        for mode, values in measured.items()
    ]
    print_table(
        "Pipeline throughput: two independent sort branches, 8 ms simulated latency",
        ["mode", "wall-clock", "calls", "waves"],
        rows,
    )

    linear = measured["linear chain"]
    dag = measured[f"DAG (x{CONCURRENCY})"]
    # Call-count parity: the DAG reschedules the same unit tasks.
    assert dag["calls"] == linear["calls"]
    # With two equal branches the ideal overlap is 2x; 1.3x leaves slack for
    # scheduler overhead on slow CI machines.
    assert linear["elapsed"] >= 1.3 * dag["elapsed"]
