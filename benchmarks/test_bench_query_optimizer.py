"""Benchmark — what the logical-plan optimizer saves on a fluent query.

The workload is the ISSUE 3 acceptance query over a synthetic product
corpus with duplicate listings: ``filter -> resolve -> top_k`` authored in
the *worst* order (``resolve`` first, the filter after it).  Three plans run
the same declarative query:

* **naive** — the authored chain, lowered without optimization: a full
  pairwise dedup over every listing, then the predicate filter, then top-k.
* **pushdown** — filter pushdown only: the cheap per-item filter runs
  first, so the quadratic dedup sees roughly half the listings.
* **full** — pushdown plus the embedding-blocking proxy pre-filter the
  planner inserts ahead of the pairwise judgments.

The benchmark asserts the optimizer's contract: every plan returns the same
final items, the quoted dollars drop strictly at each stage, and the
executed call counts drop with them.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.core.planner import CostPlanner
from repro.query import Dataset
from repro.query.optimizer import (
    fuse_adjacent_filters,
    insert_proxy_prefilters,
    optimize,
    push_filters_early,
)
from repro.query.compile import compile_plan
from tests.query.support import MODEL, clean_engine, product_corpus

N_ENTITIES = 12
VARIANTS = 3  # 36 listings -> 630 candidate pairs for the naive dedup


def _query() -> Dataset:
    items, _ = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    return (
        Dataset(items, name="bench")
        .resolve()
        .filter("is a short name")
        .top_k("important", k=3, strategy="pairwise_tournament")
    )


def _run_variant(rules, lineage: bool):
    items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    planner = CostPlanner(MODEL)
    plan = _query().logical_plan()
    if rules:
        plan = optimize(plan, planner=planner, rules=rules)
    compiled = compile_plan(plan, planner=planner, lineage_deps=lineage)
    engine = clean_engine(oracle)
    report = engine.run_pipeline(compiled.spec, quote=compiled.quote)
    return (
        compiled.quote,
        report,
        compiled.extract_output(report.results),
    )


def test_query_optimizer_cost_reduction(benchmark):
    naive_quote, naive_report, naive_items = _run_variant((), lineage=False)
    push_quote, push_report, push_items = _run_variant(
        (fuse_adjacent_filters, push_filters_early), lineage=True
    )

    def run_full():
        return _run_variant(
            (fuse_adjacent_filters, push_filters_early, insert_proxy_prefilters),
            lineage=True,
        )

    full_quote, full_report, full_items = benchmark.pedantic(run_full, rounds=1, iterations=1)

    rows = [
        ["naive", naive_quote.total_calls, f"{naive_quote.total_dollars:.6f}",
         naive_report.total_calls, f"{naive_report.total_cost:.6f}"],
        ["+ filter pushdown", push_quote.total_calls, f"{push_quote.total_dollars:.6f}",
         push_report.total_calls, f"{push_report.total_cost:.6f}"],
        ["+ proxy pre-filter", full_quote.total_calls, f"{full_quote.total_dollars:.6f}",
         full_report.total_calls, f"{full_report.total_cost:.6f}"],
    ]
    print_table(
        "Query optimizer: filter pushdown + proxy pre-filtering",
        ["plan", "quoted calls", "quoted $", "actual calls", "actual $"],
        rows,
    )

    # Identical results at every optimization level.
    assert push_items == naive_items
    assert full_items == naive_items

    # Quoted dollars drop strictly at each stage.
    assert push_quote.total_dollars < naive_quote.total_dollars
    assert full_quote.total_dollars < push_quote.total_dollars

    # Executed work drops with the quotes; the full optimizer saves at
    # least 2x the calls of the naive plan on this corpus.
    assert push_report.total_calls < naive_report.total_calls
    assert full_report.total_calls < push_report.total_calls
    assert naive_report.total_calls >= 2 * full_report.total_calls
    assert full_report.total_cost < naive_report.total_cost
