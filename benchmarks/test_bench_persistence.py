"""Benchmark — the durable store makes repeat and resumed workloads cheap.

Two production claims of the persistence layer (ISSUE 5), each pinned:

* **Warm-start quote accuracy** — a *fresh process* (new session, new
  engine) that loads the previous run's workload profile quotes the
  workload with the same zero call-count error a warm in-process session
  achieves, and annotates the same prior→observed corrections.  Without the
  profile the cold quote misprices the filter at its 0.5 prior.
* **Resumed-run call counts** — a pipeline killed mid-run resumes against
  the same store and completes having spent LLM calls only on the steps
  that had not finished; a rerun of a partially *edited* pipeline spends
  only the changed subtree.  Identity of results with an uninterrupted run
  is asserted exactly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import FilterSpec, PipelineSpec, PipelineStep, SortSpec
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM
from repro.query import Dataset
from repro.store import Store
from tests.query.support import clean_behavior, product_corpus

N_ENTITIES = 12
VARIANTS = 3  # 36 listings

WORDS = [
    "apple", "banana", "cherry", "damson", "elder", "fig",
    "grape", "honeydew", "kiwi", "lemon",
]
PREDICATE = "starts early in the alphabet"


def _letters_llm(seed: int = 11) -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key("alphabetical order", key=lambda item: item)
    oracle.register_predicate(PREDICATE, lambda item: item[0] in "abcdef")
    return SimulatedLLM(oracle, seed=seed)


def _pipeline() -> PipelineSpec:
    return PipelineSpec(
        name="persistence-bench",
        steps=[
            PipelineStep(
                name="screen",
                task=FilterSpec(items=WORDS, predicate=PREDICATE, strategy="per_item"),
            ),
            PipelineStep(
                name="order",
                task=lambda inputs: SortSpec(
                    items=list(inputs["screen"].kept),
                    criterion="alphabetical order",
                    strategy="pairwise",
                ),
                depends_on=("screen",),
            ),
        ],
    )


class _CrashingClient:
    """Simulates the process dying after ``fail_after`` LLM calls."""

    def __init__(self, inner, fail_after: int) -> None:
        self._inner = inner
        self.fail_after = fail_after
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        if self.calls >= self.fail_after:
            raise RuntimeError("simulated crash")
        self.calls += 1
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


def _query(items: list[str]) -> Dataset:
    return (
        Dataset(items, name="persistence-bench")
        .filter("keeps everything", expected_selectivity=0.5)
        .resolve()
    )


def test_warm_start_quote_accuracy_across_processes(benchmark, tmp_path):
    items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    path = tmp_path / "store.db"

    # Process one: cold quote, execute, profile saved to the store by .run.
    with Store(path) as store:
        session = PromptSession(
            SimulatedLLM(oracle, seed=11, behavior=clean_behavior()), store=store
        )
        engine = DeclarativeEngine.from_session(session)
        cold_quote = _query(items).quote(optimized=False, planner=engine.planner())
        first_run = _query(items).with_store(store).run(engine, optimized=False)
        actual_calls = first_run.total_calls
        warm_quote = _query(items).quote(optimized=False, planner=engine.planner())

    # Process two: a brand-new session loads the profile from the store.
    def requote():
        with Store(path) as store:
            fresh = PromptSession(
                SimulatedLLM(oracle, seed=11, behavior=clean_behavior()), store=store
            )
            fresh_engine = DeclarativeEngine.from_session(fresh)
            return fresh_engine.planner(), _query(items).quote(
                optimized=False, planner=fresh_engine.planner()
            )

    planner, profile_quote = benchmark.pedantic(requote, rounds=1, iterations=1)

    cold_error = abs(cold_quote.total_calls - actual_calls)
    warm_error = abs(warm_quote.total_calls - actual_calls)
    profile_error = abs(profile_quote.total_calls - actual_calls)
    print_table(
        "Persistence: warm-start quote accuracy (calls vs actual)",
        ["quote", "quoted calls", "actual calls", "|error|"],
        [
            ["cold (priors)", cold_quote.total_calls, actual_calls, cold_error],
            ["warm in-process", warm_quote.total_calls, actual_calls, warm_error],
            ["fresh process + profile", profile_quote.total_calls, actual_calls, profile_error],
        ],
    )

    # The profile-loaded fresh process quotes exactly like the warm session
    # (decay scales numerators and denominators together), and both beat
    # the cold prior-based quote down to zero error on this workload.
    assert cold_error > 0
    assert warm_error == 0
    assert profile_quote.total_calls == warm_quote.total_calls
    assert profile_error == 0
    # The same prior -> observed annotations drive both quotes.
    assert planner.stats.filter_selectivity("keeps everything") == pytest.approx(1.0)


def test_resumed_run_spends_only_the_unfinished_subtree(benchmark, tmp_path):
    # Reference: one uninterrupted run.
    reference_path = tmp_path / "reference.db"
    with Store(reference_path) as store:
        session = PromptSession(_letters_llm(), store=store)
        uninterrupted = DeclarativeEngine.from_session(session).run_pipeline(_pipeline())
    screen_calls = uninterrupted.step_reports["screen"].calls
    total_calls = uninterrupted.total_calls

    # Kill the process right after the screen step finishes.
    crash_path = tmp_path / "crash.db"
    with Store(crash_path) as store:
        crashing = PromptSession(
            _CrashingClient(_letters_llm(), fail_after=screen_calls), store=store
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            DeclarativeEngine.from_session(crashing).run_pipeline(_pipeline())

    # Resume in a fresh process against the same store.
    def resume():
        with Store(crash_path) as store:
            session = PromptSession(_letters_llm(), store=store)
            return DeclarativeEngine.from_session(session).run_pipeline(_pipeline())

    resumed = benchmark.pedantic(resume, rounds=1, iterations=1)

    # Rerun the whole pipeline once more: everything restores, zero calls.
    with Store(crash_path) as store:
        session = PromptSession(_letters_llm(), store=store)
        replay = DeclarativeEngine.from_session(session).run_pipeline(_pipeline())

    print_table(
        "Persistence: crash-resume call counts",
        ["run", "calls", "restored steps"],
        [
            ["uninterrupted", total_calls, "-"],
            ["resumed after crash", resumed.total_calls, ", ".join(resumed.restored_steps)],
            ["replay (fully warm)", replay.total_calls, ", ".join(sorted(replay.restored_steps))],
        ],
    )

    assert resumed.restored_steps == ["screen"]
    assert resumed.total_calls == total_calls - screen_calls
    assert resumed.results["order"].order == uninterrupted.results["order"].order
    assert replay.total_calls == 0
    assert sorted(replay.restored_steps) == ["order", "screen"]


def test_incremental_rerun_after_editing_one_step(tmp_path):
    path = tmp_path / "store.db"
    with Store(path) as store:
        session = PromptSession(_letters_llm(), store=store)
        cold = DeclarativeEngine.from_session(session).run_pipeline(_pipeline())

    edited = _pipeline()
    edited.steps[1].task = lambda inputs: SortSpec(
        items=list(inputs["screen"].kept),
        criterion="alphabetical order",
        strategy="rating",  # the only change
    )
    with Store(path) as store:
        session = PromptSession(_letters_llm(), store=store)
        rerun = DeclarativeEngine.from_session(session).run_pipeline(edited)

    survivors = len(cold.results["screen"].kept)
    print_table(
        "Persistence: incremental re-execution after an edit",
        ["run", "calls", "restored steps"],
        [
            ["cold", cold.total_calls, "-"],
            ["edited sort strategy", rerun.total_calls, ", ".join(rerun.restored_steps)],
        ],
    )
    assert rerun.restored_steps == ["screen"]
    # Only the edited sort re-ran: one rating call per surviving item.
    assert rerun.total_calls == survivors
    assert rerun.total_calls < cold.total_calls
