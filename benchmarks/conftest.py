"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table (or ablation) of the paper.  The
experiments run against the simulated LLM, so absolute numbers differ from the
paper's; every benchmark prints its rows next to the paper's values and
asserts the *shape* (who wins, roughly by how much, where the cost multiplier
lands) rather than the exact numbers.  ``pytest benchmarks/ --benchmark-only``
runs everything.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print an aligned text table to stdout (visible with pytest -s or on failure)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in rendered)) if rendered else len(headers[column])
        for column in range(len(headers))
    ]
    line = " | ".join(header.ljust(width) for header, width in zip(headers, widths))
    separator = "-+-".join("-" * width for width in widths)
    print(f"\n=== {title} ===")
    print(line)
    print(separator)
    for row in rendered:
        print(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
