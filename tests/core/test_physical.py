"""Tests for the physical-planning layer (PR 4).

Three contracts:

* **Result identity** — routing every operator's strategy resolution
  through the :class:`~repro.core.physical.PhysicalPlanner` changes
  nothing at fixed strategies, and an unconstrained ``"auto"`` resolves to
  exactly the default each engine method used to hard-code.
* **Cost-based selection** — a binding budget walks the candidate list
  down to something affordable instead of refusing or overspending.
* **Adaptive feedback** — the engine records observed selectivities,
  dedup ratios, and call counts into :class:`~repro.core.physical.
  RuntimeStats`, and planners fed by the store price later quotes from
  the observations.
"""

from __future__ import annotations

import math

import pytest

from repro.core.budget import Budget
from repro.core.engine import DeclarativeEngine
from repro.core.physical import PhysicalPlanner, RuntimeStats
from repro.core.planner import CostPlanner
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TopKSpec,
)
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.data.products import generate_restaurant_dataset
from repro.llm.simulated import SimulatedLLM
from repro.query.plan import LogicalNode, estimated_items, source
from tests.query.support import MODEL, clean_engine, product_corpus

MODEL_NAME = MODEL


def _flavor_engine(budget: Budget | None = None, seed: int = 7) -> DeclarativeEngine:
    return DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=seed), budget=budget)


class TestFixedStrategiesPassThrough:
    def test_explicit_strategy_is_untouched(self):
        engine = _flavor_engine()
        resolved = engine.physical.resolve(
            SortSpec(items=list(FLAVORS[:5]), criterion=CHOCOLATEY, strategy="rating")
        )
        assert resolved.strategy == "rating"
        assert resolved.decided_by == "fixed"

    def test_fixed_options_are_preserved(self):
        engine = _flavor_engine()
        resolved = engine.physical.resolve(
            ClusterSpec(items=["a", "b", "c"], strategy="two_phase",
                        strategy_options={"seed_size": 2})
        )
        assert resolved.options == {"seed_size": 2}

    def test_fixed_strategy_results_identical_to_direct_run(self):
        """The planner-routed engine behaves exactly like the seed engine."""
        items, oracle = product_corpus(n_entities=6, variants=2)
        direct = clean_engine(oracle).sort(
            SortSpec(items=items, criterion="important", strategy="pairwise")
        )
        routed = clean_engine(oracle).sort(
            SortSpec(items=items, criterion="important", strategy="pairwise")
        )
        assert direct.order == routed.order


class TestCostBasedDefaults:
    """Unconstrained ``auto`` must reproduce the old fixed defaults."""

    EXPECTED_DEFAULTS = {
        "sort": "pairwise",
        "resolve_records": "pairwise",
        "resolve_pairs": "transitive",
        "impute": "hybrid",
        "filter": "per_item",
        "categorize": "per_item",
        "top_k": "hybrid_rating_comparison",
        "join": "blocked",
        "cluster": "two_phase",
    }

    def _specs(self):
        items, _ = product_corpus(n_entities=5, variants=2)
        data = generate_restaurant_dataset(30, seed=5)
        return {
            "sort": SortSpec(items=items, criterion="important"),
            "resolve_records": ResolveSpec(records=items),
            "resolve_pairs": ResolveSpec(pairs=[(items[0], items[1]), (items[2], items[3])]),
            "impute": ImputeSpec(data=data, validation_size=0),
            "filter": FilterSpec(items=items, predicate="is a short name"),
            "categorize": CategorizeSpec(items=items, categories=["early", "late"]),
            "top_k": TopKSpec(items=items, criterion="important", k=2),
            "join": JoinSpec(left=items[:4], right=items[4:8]),
            "cluster": ClusterSpec(items=items),
        }

    def test_auto_resolves_to_the_historical_default(self):
        engine = _flavor_engine()
        for name, spec in self._specs().items():
            resolved = engine.physical.resolve(spec)
            assert resolved.decided_by == "cost", name
            assert resolved.strategy == self.EXPECTED_DEFAULTS[name], name

    def test_resolve_pairs_default_keeps_neighbors_k(self):
        engine = _flavor_engine()
        spec = ResolveSpec(pairs=[("a1", "a2")], neighbors_k=2)
        resolved = engine.physical.resolve(spec)
        assert resolved.strategy == "transitive"
        assert resolved.options == {"neighbors_k": 2}

    def test_auto_run_results_match_the_default_strategy_run(self):
        """Engine behavior at auto is unchanged from the old fixed mapping."""
        items, oracle = product_corpus(n_entities=6, variants=2)
        auto = clean_engine(oracle).filter(FilterSpec(items=items, predicate="is a short name"))
        fixed = clean_engine(oracle).filter(
            FilterSpec(items=items, predicate="is a short name", strategy="per_item")
        )
        assert auto.kept == fixed.kept
        auto_k = clean_engine(oracle).top_k(
            TopKSpec(items=items, criterion="important", k=3)
        )
        fixed_k = clean_engine(oracle).top_k(
            TopKSpec(
                items=items, criterion="important", k=3,
                strategy="hybrid_rating_comparison",
            )
        )
        assert auto_k.top_items == fixed_k.top_items


class TestCostBasedBudgetFallback:
    def test_sort_downgrades_to_rating_under_a_binding_budget(self):
        engine = _flavor_engine()
        items = list(FLAVORS[:8])
        planner = engine.planner()
        rating_dollars = planner.per_item(items).dollars
        pairwise_dollars = planner.pairwise(items).dollars
        assert rating_dollars < pairwise_dollars
        spec = SortSpec(
            items=items, criterion=CHOCOLATEY, budget_dollars=rating_dollars * 1.05
        )
        resolved = engine.physical.resolve(spec)
        assert resolved.strategy == "rating"
        assert resolved.decided_by == "cost"
        result = engine.sort(spec)
        assert result.strategy == "rating"

    def test_cluster_downgrades_to_single_prompt(self):
        engine = _flavor_engine()
        items = [f"item number {index}" for index in range(30)]
        single_dollars = engine.planner().single_prompt(items).dollars
        resolved = engine.physical.resolve(
            ClusterSpec(items=items, budget_dollars=single_dollars * 1.05)
        )
        assert resolved.strategy == "single_prompt"

    def test_impute_falls_back_to_the_free_proxy(self):
        data = generate_restaurant_dataset(30, seed=6)
        engine = DeclarativeEngine(SimulatedLLM(data.oracle(), seed=6))
        resolved = engine.physical.resolve(
            ImputeSpec(data=data, validation_size=0, budget_dollars=0.0)
        )
        assert resolved.strategy == "knn"

    def test_nothing_affordable_picks_the_cheapest(self):
        engine = _flavor_engine()
        spec = SortSpec(
            items=list(FLAVORS[:8]), criterion=CHOCOLATEY, budget_dollars=1e-12
        )
        resolved = engine.physical.resolve(spec)
        estimates = {
            name: engine.physical._try_estimate(spec, name, {}).dollars
            for name in ("pairwise", "rating", "single_prompt")
        }
        assert resolved.strategy == min(estimates, key=estimates.get)

    def test_session_budget_remaining_binds_auto_selection(self):
        items = list(FLAVORS[:8])
        planner = CostPlanner(MODEL_NAME)
        rating_dollars = planner.per_item(items).dollars
        engine = _flavor_engine(budget=Budget(limit=rating_dollars * 1.05))
        resolved = engine.physical.resolve(
            SortSpec(items=items, criterion=CHOCOLATEY),
            budget=engine.session.budget,
        )
        assert resolved.strategy == "rating"


class TestValidationDrivenSelection:
    def test_sort_with_validation_uses_the_selector(self):
        engine = _flavor_engine()
        spec = SortSpec(
            items=list(FLAVORS),
            criterion=CHOCOLATEY,
            validation_order=list(FLAVORS[:6]),
            budget_dollars=0.0005,
        )
        resolved = engine.physical.resolve(spec)
        assert resolved.decided_by == "validation"
        assert resolved.strategy in {"single_prompt", "rating"}

    def test_small_validation_sample_falls_back_to_cost(self):
        engine = _flavor_engine()
        spec = SortSpec(
            items=list(FLAVORS[:8]),
            criterion=CHOCOLATEY,
            validation_order=list(FLAVORS[:2]),  # below the minimum of 3
        )
        resolved = engine.physical.resolve(spec)
        assert resolved.decided_by == "cost"
        assert resolved.strategy == "pairwise"


class TestRuntimeStats:
    def test_empty_store_returns_none(self):
        stats = RuntimeStats()
        assert stats.empty
        assert stats.filter_selectivity("anything") is None
        assert stats.dedup_survivor_ratio() is None
        assert stats.pair_match_rate() is None
        assert stats.join_selectivity() is None
        assert stats.call_ratio("sort:pairwise") is None
        assert stats.call_count("sort:pairwise") == 0

    def test_filter_selectivity_aggregates_across_runs(self):
        stats = RuntimeStats()
        stats.record_filter("p", evaluated=10, kept=5)
        stats.record_filter("p", evaluated=10, kept=10)
        assert stats.filter_selectivity("p") == pytest.approx(0.75)
        assert not stats.empty

    def test_call_ratio_and_counts(self):
        stats = RuntimeStats()
        stats.record_calls("resolve:auto", estimated=100, actual=25)
        stats.record_calls("resolve:auto", estimated=100, actual=35)
        assert stats.call_ratio("resolve:auto") == pytest.approx(0.30)
        assert stats.call_count("resolve:auto") == 60
        assert stats.run_count("resolve:auto") == 2

    def test_zero_denominators_are_ignored(self):
        stats = RuntimeStats()
        stats.record_filter("p", evaluated=0, kept=0)
        stats.record_dedup(inputs=0, survivors=0)
        stats.record_calls("x", estimated=0, actual=5)
        assert stats.filter_selectivity("p") is None
        assert stats.dedup_survivor_ratio() is None
        assert stats.call_ratio("x") is None
        assert stats.call_count("x") == 5

    def test_snapshot_is_plain_data(self):
        stats = RuntimeStats()
        stats.record_join(left=4, matched=1)
        snapshot = stats.snapshot()
        assert snapshot["join_selectivity"] == pytest.approx(0.25)


class TestEngineFeedsStats:
    def test_filter_run_records_observed_selectivity(self):
        items, oracle = product_corpus(n_entities=6, variants=2)
        engine = clean_engine(oracle)
        engine.filter(FilterSpec(items=items, predicate="keeps everything"))
        assert engine.stats.filter_selectivity("keeps everything") == pytest.approx(1.0)

    def test_resolve_records_dedup_ratio(self):
        items, oracle = product_corpus(n_entities=6, variants=2)
        engine = clean_engine(oracle)
        result = engine.resolve(ResolveSpec(records=items, strategy="pairwise"))
        observed = engine.stats.dedup_survivor_ratio()
        assert observed == pytest.approx(len(result.clusters) / len(items))

    def test_join_records_match_selectivity(self):
        items, oracle = product_corpus(n_entities=6, variants=2)
        engine = clean_engine(oracle)
        left = [item for item in items if "(refurb" not in item][:4]
        right = ["laptop device (refurb 1)"]
        engine.join(JoinSpec(left=left, right=right, strategy="all_pairs"))
        assert engine.stats.join_selectivity() == pytest.approx(0.25)

    def test_sort_records_exact_call_ratio(self):
        items, oracle = product_corpus(n_entities=5, variants=1)
        engine = clean_engine(oracle)
        engine.sort(SortSpec(items=items, criterion="important", strategy="pairwise"))
        # Pairwise executes exactly the quoted C(n, 2) comparisons.
        assert engine.stats.call_ratio("sort:pairwise") == pytest.approx(1.0)

    def test_downgraded_run_never_poisons_the_default_strategy_ratio(self):
        """A budget-downgraded auto run records its ratio under the strategy
        that executed; a later quote of the default strategy is untouched."""
        items, oracle = product_corpus(n_entities=6, variants=2)
        engine = clean_engine(oracle)
        single_dollars = engine.planner().single_prompt(items).dollars
        spec = ResolveSpec(records=items, budget_dollars=single_dollars * 1.05)
        result = engine.resolve(spec)
        assert result.strategy == "single_prompt"  # the downgrade happened
        assert engine.stats.run_count("resolve:single_prompt") == 1
        assert engine.stats.run_count("resolve:pairwise") == 0
        explicit = ResolveSpec(records=items, strategy="pairwise")
        structural = CostPlanner(MODEL_NAME).estimate_spec(explicit)
        assert engine.planner().estimate_spec(explicit).calls == structural.calls

    def test_resolve_modes_never_share_a_call_ratio_key(self):
        """Records-path dedups (pairwise n^2) and pairs-path judgments
        (transitive expansion bound) have unrelated cost shapes; blending
        their ratios under one "resolve:auto" key would corrupt both."""
        items, oracle = product_corpus(n_entities=6, variants=2)
        engine = clean_engine(oracle)
        engine.resolve(ResolveSpec(records=items))
        engine.resolve(
            ResolveSpec(pairs=[(items[0], items[1])], records=items, neighbors_k=1)
        )
        assert engine.stats.run_count("resolve:pairwise") == 1
        assert engine.stats.run_count("resolve:transitive") == 1
        assert engine.stats.run_count("resolve:auto") == 0

    def test_transitive_resolve_ratio_corrects_the_upper_bound(self):
        items, oracle = product_corpus(n_entities=6, variants=2)
        engine = clean_engine(oracle)
        pairs = [(items[0], items[1]), (items[2], items[3]), (items[4], items[5])]
        engine.resolve(ResolveSpec(pairs=pairs, records=items, neighbors_k=1))
        # Pairs-path auto is labelled at its priced default ("transitive"),
        # keeping its ratio apart from records-path dedups.
        ratio = engine.stats.call_ratio("resolve:transitive")
        # The quote prices the C(2k+2, 2) expansion upper bound; real runs
        # dedup overlapping comparisons, so the observed ratio must be < 1.
        assert ratio is not None and ratio < 1.0


class TestPlannerConsumesStats:
    def test_filter_estimate_uses_observed_selectivity(self):
        items, _ = product_corpus(n_entities=8, variants=2)
        spec = FilterSpec(
            items=items,
            predicates=("p1", "p2"),
            expected_selectivities=(0.5, 0.5),
            strategy="per_item",
        )
        prior = CostPlanner(MODEL_NAME).estimate_spec(spec)
        stats = RuntimeStats()
        stats.record_filter("p1", evaluated=100, kept=100)  # everything survives
        adaptive = CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec)
        # p2 now re-checks every survivor of p1, not half of them.
        assert adaptive.calls > prior.calls

    def test_call_ratio_scales_structural_estimates(self):
        items, _ = product_corpus(n_entities=6, variants=2)
        spec = ResolveSpec(pairs=[(items[0], items[1])] * 4, neighbors_k=1)
        stats = RuntimeStats()
        stats.record_calls("resolve:transitive", estimated=100, actual=50)
        structural = CostPlanner(MODEL_NAME).estimate_spec(spec)
        adaptive = CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec)
        assert adaptive.calls == round(structural.calls * 0.5)
        assert adaptive.dollars < structural.dollars

    def test_auto_quote_finds_the_default_strategys_observed_ratio(self):
        """Ratios are keyed by executed strategy; an auto-labelled quote
        maps to the default strategy's key when it looks one up."""
        items, _ = product_corpus(n_entities=6, variants=2)
        spec = SortSpec(items=items, criterion="important")  # auto
        stats = RuntimeStats()
        stats.record_calls("sort:pairwise", estimated=100, actual=50)
        structural = CostPlanner(MODEL_NAME).estimate_spec(spec)
        adaptive = CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec)
        assert adaptive.calls == round(structural.calls * 0.5)

    def test_declared_join_selectivity_of_one_is_pinned(self):
        """An explicit expected_selectivity=1.0 must not be overridden by
        the session-global observed match rate."""
        from repro.query import Dataset

        items, _ = product_corpus(n_entities=6, variants=2)
        stats = RuntimeStats()
        stats.record_join(left=10, matched=2)  # global observed 0.2
        declared = (
            Dataset(items, name="l")
            .join(Dataset(items[:4], name="r"), expected_selectivity=1.0)
            .logical_plan()
        )
        undeclared = (
            Dataset(items, name="l")
            .join(Dataset(items[:4], name="r"))
            .logical_plan()
        )
        assert len(estimated_items(declared.root, stats)) == len(items)
        assert len(estimated_items(undeclared.root, stats)) == math.ceil(len(items) * 0.2)

    def test_estimated_items_shrinks_with_observed_stats(self):
        items, _ = product_corpus(n_entities=8, variants=2)
        resolve = LogicalNode(op="resolve", params={}, inputs=(source(items),))
        assert len(estimated_items(resolve)) == len(items)
        stats = RuntimeStats()
        stats.record_dedup(inputs=16, survivors=8)
        assert len(estimated_items(resolve, stats)) == len(items) // 2


class TestPhysicalPipelinePlan:
    def test_plan_pipeline_resolves_static_steps_and_defers_factories(self):
        items, oracle = product_corpus(n_entities=5, variants=1)
        pipeline = PipelineSpec(
            name="p",
            steps=[
                PipelineStep("filter", task=FilterSpec(items=items, predicate="x")),
                PipelineStep(
                    "sorted",
                    task=lambda inputs: SortSpec(
                        items=list(inputs["filter"].kept), criterion="important"
                    ),
                    depends_on=("filter",),
                ),
            ],
        )
        plan = clean_engine(oracle).plan_physical(pipeline)
        assert [step.name for step in plan.steps] == ["filter"]
        assert plan.steps[0].resolved.strategy == "per_item"
        assert plan.deferred == ("sorted",)
        rendering = plan.describe()
        assert "filter: per_item [cost]" in rendering
        assert "resolved at run time" in rendering

    def test_plan_pipeline_is_free_and_defers_validation_specs(self):
        """A pre-flight physical plan must never spend money: validation-
        driven specs are deferred, not resolved by running candidates."""
        engine = _flavor_engine()
        pipeline = PipelineSpec(
            name="p",
            steps=[
                PipelineStep(
                    "validated",
                    task=SortSpec(
                        items=list(FLAVORS),
                        criterion=CHOCOLATEY,
                        validation_order=list(FLAVORS[:6]),
                    ),
                ),
                PipelineStep(
                    "costed",
                    task=SortSpec(items=list(FLAVORS[:5]), criterion=CHOCOLATEY),
                ),
            ],
        )
        plan = engine.plan_physical(pipeline)
        assert engine.spent_dollars == 0.0
        assert engine.session.tracker.usage.calls == 0
        assert plan.deferred == ("validated",)
        assert [step.name for step in plan.steps] == ["costed"]

    def test_call_ratio_corrections_are_clamped(self):
        """A fluke ratio never zeroes an estimate or explodes it unboundedly."""
        items, _ = product_corpus(n_entities=6, variants=2)
        spec = ResolveSpec(pairs=[(items[0], items[1])] * 4, neighbors_k=1)
        structural = CostPlanner(MODEL_NAME).estimate_spec(spec)
        stats = RuntimeStats()
        stats.record_calls("resolve:transitive", estimated=10_000, actual=1)  # ratio 1e-4
        adaptive = CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec)
        assert adaptive.calls == max(1, round(structural.calls * 0.05))

    def test_planner_is_shared_with_the_session_stats(self):
        items, oracle = product_corpus(n_entities=5, variants=1)
        engine = clean_engine(oracle)
        assert engine.physical.stats is engine.session.stats
        assert engine.planner().stats is engine.session.stats


def _predicate_engine(seed: int = 61) -> DeclarativeEngine:
    from repro.llm.oracle import Oracle

    animals = ("cat", "dog", "elephant", "geese", "horse")
    oracle = Oracle()
    oracle.register_predicate(
        "mentions an animal", lambda item: any(animal in item for animal in animals)
    )
    oracle.register_categories(
        {
            item: ("animal" if any(animal in item for animal in animals) else "other")
            for item in _ANIMAL_ITEMS
        }
    )
    return DeclarativeEngine(SimulatedLLM(oracle, seed=seed))


_ANIMAL_ITEMS = [
    "the cat sat on the mat",
    "stock markets rallied today",
    "a dog barked all night",
    "the committee approved the budget",
    "elephants migrate across the savanna",
    "the recipe needs two cups of flour",
    "a flock of geese flew south",
    "the printer is out of toner",
    "wild horses roam the plains",
    "quarterly earnings beat expectations",
]

_FILTER_LABELS = {
    _ANIMAL_ITEMS[0]: True,
    _ANIMAL_ITEMS[1]: False,
    _ANIMAL_ITEMS[2]: True,
    _ANIMAL_ITEMS[3]: False,
    _ANIMAL_ITEMS[4]: True,
}

_CATEGORY_LABELS = {
    _ANIMAL_ITEMS[0]: "animal",
    _ANIMAL_ITEMS[1]: "other",
    _ANIMAL_ITEMS[2]: "animal",
    _ANIMAL_ITEMS[3]: "other",
    _ANIMAL_ITEMS[4]: "animal",
}


class TestFilterCategorizeValidationSelection:
    """validation_labels on FilterSpec/CategorizeSpec drive ensemble choice."""

    def test_labelled_filter_resolves_by_validation(self):
        engine = _predicate_engine()
        spec = FilterSpec(
            items=_ANIMAL_ITEMS,
            predicate="mentions an animal",
            validation_labels=_FILTER_LABELS,
        )
        resolved = engine.physical.resolve(spec)
        assert resolved.decided_by == "validation"
        assert resolved.strategy in {"per_item", "ensemble_vote", "adaptive"}
        if resolved.strategy != "per_item":
            assert len(resolved.options["models"]) >= 2

    def test_labelled_filter_executes_end_to_end(self):
        engine = _predicate_engine()
        spec = FilterSpec(
            items=_ANIMAL_ITEMS,
            predicate="mentions an animal",
            validation_labels=_FILTER_LABELS,
        )
        result = engine.filter(spec)
        assert set(result.kept) <= set(_ANIMAL_ITEMS)
        assert result.usage.calls > 0

    def test_labelled_categorize_resolves_by_validation(self):
        engine = _predicate_engine()
        spec = CategorizeSpec(
            items=_ANIMAL_ITEMS,
            categories=("animal", "other"),
            validation_labels=_CATEGORY_LABELS,
        )
        resolved = engine.physical.resolve(spec)
        assert resolved.decided_by == "validation"
        assert resolved.strategy in {"per_item", "self_consistency", "ensemble_vote"}
        result = engine.categorize(spec)
        assert set(result.assignments.values()) <= {"animal", "other"}

    def test_small_label_sample_falls_back_to_cost(self):
        engine = _predicate_engine()
        spec = FilterSpec(
            items=_ANIMAL_ITEMS,
            predicate="mentions an animal",
            validation_labels={_ANIMAL_ITEMS[0]: True},  # below the minimum of 5
        )
        resolved = engine.physical.resolve(spec)
        assert resolved.decided_by == "cost"
        assert resolved.strategy == "per_item"

    def test_explicit_models_option_wins_over_registry_default(self):
        engine = _predicate_engine()
        spec = FilterSpec(
            items=_ANIMAL_ITEMS,
            predicate="mentions an animal",
            validation_labels=_FILTER_LABELS,
            strategy_options={"models": ["sim-gpt-3.5-turbo", "sim-claude"]},
        )
        assert engine.physical._ensemble_models(spec) == [
            "sim-gpt-3.5-turbo",
            "sim-claude",
        ]

    def test_labelled_specs_are_deferred_in_physical_plans(self):
        engine = _predicate_engine()
        pipeline = PipelineSpec(
            name="deferred",
            steps=[
                PipelineStep(
                    name="screen",
                    task=FilterSpec(
                        items=_ANIMAL_ITEMS,
                        predicate="mentions an animal",
                        validation_labels=_FILTER_LABELS,
                    ),
                )
            ],
        )
        plan = engine.plan_physical(pipeline)
        assert plan.deferred == ("screen",)
        assert engine.session.tracker.usage.calls == 0  # planning spends nothing

    def test_validation_label_consistency_is_enforced(self):
        with pytest.raises(Exception, match="not present"):
            FilterSpec(
                items=("a", "b"), predicate="p", validation_labels={"zz": True}
            ).validate()
        with pytest.raises(Exception, match="not present"):
            CategorizeSpec(
                items=("a", "b"),
                categories=("x", "y"),
                validation_labels={"zz": "x"},
            ).validate()
        with pytest.raises(Exception, match="outside the category set"):
            CategorizeSpec(
                items=("a", "b"),
                categories=("x", "y"),
                validation_labels={"a": "nope"},
            ).validate()


class TestBlockedPairRateQuotes:
    """The blocked-pair quote uses the observed mutual-neighbor rate."""

    def test_blocked_pairwise_estimate_shrinks_with_observed_rate(self):
        records = [f"record number {index} with some text" for index in range(20)]
        spec = ResolveSpec(records=records, strategy="blocked_pairwise")
        structural = CostPlanner(MODEL_NAME).estimate_spec(spec)
        stats = RuntimeStats()
        stats.record_blocked_pairs(candidates=60, upper_bound=100)
        adaptive = CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec)
        assert structural.calls == 20 * 5  # the k*n upper bound
        assert adaptive.calls == round(structural.calls * 0.6)
        assert adaptive.dollars < structural.dollars

    def test_rate_correction_suppresses_double_counting_by_call_ratio(self):
        records = [f"record number {index} with some text" for index in range(20)]
        spec = ResolveSpec(records=records, strategy="blocked_pairwise")
        stats = RuntimeStats()
        stats.record_blocked_pairs(candidates=60, upper_bound=100)
        # A recorded call ratio for the same label must NOT stack on top of
        # the blocked-pair correction (it encodes the same shrinkage).
        stats.record_calls("resolve:blocked_pairwise", estimated=100, actual=60)
        adaptive = CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec)
        assert adaptive.calls == round(20 * 5 * 0.6)

    def test_other_strategies_unaffected_by_blocked_rate(self):
        records = [f"record number {index} with some text" for index in range(10)]
        spec = ResolveSpec(records=records, strategy="pairwise")
        stats = RuntimeStats()
        stats.record_blocked_pairs(candidates=10, upper_bound=100)
        assert (
            CostPlanner(MODEL_NAME, stats=stats).estimate_spec(spec).calls
            == CostPlanner(MODEL_NAME).estimate_spec(spec).calls
        )
