"""Budget accounting under reservations and concurrent charging.

Pins the :meth:`Budget.reserve` over-commit fix — reservations are *holds*
that leave ``remaining``/``can_afford`` immediately, sibling reservations
carve successively smaller pools, re-reserving a name releases the old hold,
and :meth:`Budget.absorb` exchanges the hold for the child's actual spend —
plus a multi-threaded hammer over sibling :class:`BudgetLease` objects
sharing one parent: the parent's total equals the sum of the lease spends
exactly, and each breaching lease raises exactly once.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.budget import Budget, BudgetLease
from repro.exceptions import BudgetExceededError


class TestReservationHolds:
    def test_reservation_leaves_remaining_immediately(self):
        budget = Budget(limit=100.0)
        budget.reserve("a", 0.5)
        assert budget.reserved == pytest.approx(50.0)
        assert budget.remaining == pytest.approx(50.0)

    def test_sibling_reservations_cannot_jointly_overcommit(self):
        budget = Budget(limit=100.0)
        first = budget.reserve("a", 0.5)
        second = budget.reserve("b", 0.5)
        # The second half-fraction is carved from the *remaining* 50, not the
        # original 100 — the old behaviour handed out 50 + 50 against a
        # 100-dollar limit and then forgot both holds.
        assert first.limit == pytest.approx(50.0)
        assert second.limit == pytest.approx(25.0)
        assert budget.remaining == pytest.approx(25.0)
        assert first.limit + second.limit + budget.remaining <= 100.0 + 1e-9

    def test_can_afford_counts_reservations(self):
        budget = Budget(limit=100.0)
        budget.reserve("a", 0.8)
        assert not budget.can_afford(30.0)
        assert budget.can_afford(20.0)

    def test_reserving_the_whole_budget_leaves_nothing(self):
        budget = Budget(limit=10.0)
        child = budget.reserve("all", 1.0)
        assert child.limit == pytest.approx(10.0)
        assert budget.remaining == 0.0
        assert not budget.can_afford(0.01)

    def test_re_reservation_releases_the_old_hold(self):
        budget = Budget(limit=100.0)
        budget.reserve("a", 0.5)
        replacement = budget.reserve("a", 0.5)
        # The superseded hold is released before the replacement is sized, so
        # re-reserving the same name does not leak 50 held dollars forever.
        assert replacement.limit == pytest.approx(50.0)
        assert budget.reserved == pytest.approx(50.0)
        assert budget.remaining == pytest.approx(50.0)

    def test_absorb_exchanges_hold_for_actual_spend(self):
        budget = Budget(limit=100.0)
        child = budget.reserve("a", 0.5)
        child.charge(10.0)
        budget.absorb(child)
        assert budget.spent == pytest.approx(10.0)
        assert budget.reserved == 0.0
        # The unspent 40 of the reservation returned to the pool.
        assert budget.remaining == pytest.approx(90.0)

    def test_absorb_unreserved_child_just_charges(self):
        budget = Budget(limit=100.0)
        stray = Budget(limit=5.0)
        stray.charge(5.0)
        budget.absorb(stray)
        assert budget.spent == pytest.approx(5.0)
        assert budget.reserved == 0.0

    def test_release_returns_held_amount_and_is_idempotent(self):
        budget = Budget(limit=100.0)
        budget.reserve("a", 0.25)
        assert budget.release("a") == pytest.approx(25.0)
        assert budget.release("a") == 0.0
        assert budget.remaining == pytest.approx(100.0)

    def test_unlimited_parent_reservations_stay_unlimited(self):
        budget = Budget()
        child = budget.reserve("a", 0.5)
        assert child.unlimited
        assert budget.remaining == float("inf")

    def test_absorb_into_a_different_parent_keeps_original_hold(self):
        origin = Budget(limit=100.0)
        other = Budget(limit=100.0)
        child = origin.reserve("a", 0.5)
        child.charge(10.0)
        other.absorb(child)
        # ``other`` never held the reservation, so it only gets the charge;
        # the hold stays with ``origin`` until released there.
        assert other.spent == pytest.approx(10.0)
        assert origin.reserved == pytest.approx(50.0)


class TestLeaseHammer:
    """Sibling leases charged from many threads over one parent."""

    LEASES = 16
    CHARGE = 0.01
    ALLOCATION = 0.10  # 10 charges fit, the 11th breaches

    def test_parent_total_equals_sum_of_lease_spends(self):
        parent = Budget(limit=float(self.LEASES))  # roomy: leases breach first
        leases = [parent.lease(self.ALLOCATION) for _ in range(self.LEASES)]
        breaches = [0] * self.LEASES
        barrier = threading.Barrier(self.LEASES)

        def hammer(index: int, lease: BudgetLease) -> None:
            barrier.wait()
            # Charge until the lease stops us, exactly like an executor's
            # unit-task loop; the first breach ends the loop.
            for _ in range(1000):
                try:
                    lease.charge(self.CHARGE)
                except BudgetExceededError:
                    breaches[index] += 1
                    break

        threads = [
            threading.Thread(target=hammer, args=(index, lease))
            for index, lease in enumerate(leases)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Every breaching lease raised exactly once, every charge that the
        # leases recorded reached the parent, and nothing was double-counted.
        assert breaches == [1] * self.LEASES
        assert parent.spent == pytest.approx(sum(lease.spent for lease in leases))
        for lease in leases:
            # 10 in-allocation charges plus the one recorded breaching charge.
            assert lease.spent == pytest.approx(self.ALLOCATION + self.CHARGE)

    def test_concurrent_charges_on_one_budget_never_lose_updates(self):
        budget = Budget(limit=10_000.0)
        threads = 8
        per_thread = 500
        barrier = threading.Barrier(threads)

        def charge() -> None:
            barrier.wait()
            for _ in range(per_thread):
                budget.charge(0.001)

        workers = [threading.Thread(target=charge) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert budget.spent == pytest.approx(threads * per_thread * 0.001)

    def test_concurrent_reservations_respect_the_limit(self):
        budget = Budget(limit=100.0)
        children: list[Budget] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def reserve(index: int) -> None:
            barrier.wait()
            child = budget.reserve(f"r{index}", 0.5)
            with lock:
                children.append(child)

        workers = [threading.Thread(target=reserve, args=(index,)) for index in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        total_granted = sum(child.limit for child in children)
        # However the races interleave, the holds never promise more than
        # the limit, and the parent's view stays consistent.
        assert total_granted <= 100.0 + 1e-9
        assert budget.reserved == pytest.approx(total_granted)
        assert budget.remaining == pytest.approx(100.0 - total_granted)
