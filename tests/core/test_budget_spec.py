"""Tests for budgets and declarative task specs."""

from __future__ import annotations

import pytest

from repro.core.budget import Budget
from repro.core.spec import ImputeSpec, ResolveSpec, SortSpec
from repro.data.products import generate_restaurant_dataset
from repro.exceptions import BudgetExceededError, ConfigurationError, SpecError


class TestBudget:
    def test_unlimited_by_default(self):
        budget = Budget()
        assert budget.unlimited
        assert budget.remaining == float("inf")
        budget.charge(1_000_000.0)  # never raises

    def test_charge_and_remaining(self):
        budget = Budget(limit=1.0)
        budget.charge(0.4)
        assert budget.remaining == pytest.approx(0.6)
        assert budget.can_afford(0.6)
        assert not budget.can_afford(0.61)

    def test_exceeding_raises_and_records(self):
        budget = Budget(limit=0.5)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge(0.7)
        assert excinfo.value.spent == pytest.approx(0.7)
        assert budget.spent == pytest.approx(0.7)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            Budget(limit=-1.0)
        with pytest.raises(ConfigurationError):
            Budget(limit=1.0).charge(-0.1)

    def test_reserve_and_absorb(self):
        budget = Budget(limit=2.0)
        child = budget.reserve("step-1", 0.5)
        assert child.limit == pytest.approx(1.0)
        child.charge(0.8)
        budget.absorb(child)
        assert budget.spent == pytest.approx(0.8)

    def test_reserve_from_unlimited_budget(self):
        child = Budget().reserve("step", 0.5)
        assert child.unlimited

    def test_invalid_reservation_fraction(self):
        with pytest.raises(ConfigurationError):
            Budget(limit=1.0).reserve("step", 0.0)


class TestSortSpec:
    def test_valid_spec(self):
        SortSpec(items=["a", "b", "c"], criterion="size").validate()

    def test_missing_criterion(self):
        with pytest.raises(SpecError):
            SortSpec(items=["a", "b"]).validate()

    def test_empty_items_rejected_single_item_allowed(self):
        with pytest.raises(SpecError):
            SortSpec(items=[], criterion="size").validate()
        # One item is a valid degenerate sort (the operator short-circuits
        # without LLM calls), which compiled query factories rely on.
        SortSpec(items=["a"], criterion="size").validate()

    def test_validation_items_must_be_subset(self):
        with pytest.raises(SpecError):
            SortSpec(items=["a", "b"], criterion="size", validation_order=["z"]).validate()

    def test_invalid_budget_and_accuracy(self):
        with pytest.raises(SpecError):
            SortSpec(items=["a", "b"], criterion="size", budget_dollars=-1).validate()
        with pytest.raises(SpecError):
            SortSpec(items=["a", "b"], criterion="size", accuracy_target=1.5).validate()


class TestResolveSpec:
    def test_valid_with_pairs(self):
        ResolveSpec(pairs=[("a", "b")]).validate()

    def test_needs_records_or_pairs(self):
        with pytest.raises(SpecError):
            ResolveSpec().validate()

    def test_negative_k_rejected(self):
        with pytest.raises(SpecError):
            ResolveSpec(pairs=[("a", "b")], neighbors_k=-1).validate()


class TestImputeSpec:
    def test_valid_spec(self):
        data = generate_restaurant_dataset(50, seed=1)
        ImputeSpec(data=data, n_examples=3).validate()

    def test_missing_data(self):
        with pytest.raises(SpecError):
            ImputeSpec().validate()

    def test_negative_examples(self):
        data = generate_restaurant_dataset(50, seed=1)
        with pytest.raises(SpecError):
            ImputeSpec(data=data, n_examples=-1).validate()


class TestBudgetLease:
    def test_lease_measures_only_its_own_charges(self):
        parent = Budget(limit=1.0)
        left = parent.lease(0.4)
        right = parent.lease(0.4)
        left.charge(0.3)
        # Sibling leases are independent: right has spent nothing.
        assert left.spent == pytest.approx(0.3)
        assert right.spent == 0.0
        assert right.remaining == pytest.approx(0.4)
        # Every dollar still reached the shared parent.
        assert parent.spent == pytest.approx(0.3)

    def test_lease_caps_even_an_unlimited_parent(self):
        parent = Budget()
        lease = parent.lease(0.01)
        assert not lease.unlimited
        assert lease.remaining == pytest.approx(0.01)
        with pytest.raises(BudgetExceededError):
            lease.charge(0.02)
        # The overshooting charge is still recorded, like Budget.charge.
        assert lease.spent == pytest.approx(0.02)
        assert parent.spent == pytest.approx(0.02)

    def test_lease_respects_the_parent_limit(self):
        parent = Budget(limit=0.05)
        parent.charge(0.04)
        lease = parent.lease(0.5)
        assert lease.remaining == pytest.approx(0.01)
        assert not lease.can_afford(0.02)

    def test_nested_leases_forward_to_the_root(self):
        root = Budget(limit=1.0)
        cap = root.lease(0.5)
        step = cap.lease(0.2)
        step.charge(0.1)
        assert step.spent == pytest.approx(0.1)
        assert cap.spent == pytest.approx(0.1)
        assert root.spent == pytest.approx(0.1)

    def test_negative_allocation_rejected(self):
        with pytest.raises(ConfigurationError):
            Budget().lease(-0.1)
