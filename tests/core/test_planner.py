"""Tests for the a-priori cost planner."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import CostPlanner
from repro.core.spec import PipelineSpec, PipelineStep, ResolveSpec, SortSpec
from repro.data.flavors import FLAVORS
from repro.data.words import random_words
from repro.exceptions import ConfigurationError
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM
from repro.data.flavors import CHOCOLATEY, flavor_oracle
from repro.operators.sort import SortOperator


class TestCostPlannerShapes:
    def test_empty_items_rejected(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        with pytest.raises(ConfigurationError):
            planner.single_prompt([])

    def test_pairwise_calls_are_quadratic(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        assert planner.pairwise(items).calls == len(items) * (len(items) - 1) // 2
        assert planner.per_item(items).calls == len(items)
        assert planner.single_prompt(items).calls == 1

    def test_batching_reduces_calls_and_prompt_tokens(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        unbatched = planner.per_item(items, batch_size=1)
        batched = planner.per_item(items, batch_size=5)
        assert batched.calls < unbatched.calls
        assert batched.usage.prompt_tokens < unbatched.usage.prompt_tokens

    def test_invalid_parameters(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        with pytest.raises(ConfigurationError):
            planner.per_item(list(FLAVORS), batch_size=0)
        with pytest.raises(ConfigurationError):
            planner.pairwise_against(list(FLAVORS), -1)

    def test_cost_ordering_matches_strategy_granularity(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        assert (
            planner.single_prompt(items).dollars
            < planner.per_item(items).dollars
            < planner.pairwise(items).dollars
        )

    def test_affordable_strategies_filters_and_sorts(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        pairwise_cost = planner.pairwise(items).dollars
        affordable = planner.affordable_strategies(items, budget_dollars=pairwise_cost / 2)
        names = [estimate.strategy for estimate in affordable]
        assert "pairwise" not in names
        assert names == sorted(
            names, key=lambda name: [e.strategy for e in affordable].index(name)
        )
        dollars = [estimate.dollars for estimate in affordable]
        assert dollars == sorted(dollars)

    def test_fits_context_detects_oversized_prompts(self):
        small_context = CostPlanner("sim-small")
        long_context = CostPlanner("sim-claude-2")
        # 400 six-word snippets: a few thousand tokens — beyond sim-small's
        # 2k context but far inside sim-claude-2's 100k window.
        snippets = [" ".join(random_words(6, seed=index)) for index in range(400)]
        assert long_context.fits_context(snippets) is True
        assert small_context.fits_context(snippets) is False


class TestPlannerAgainstMeasuredCost:
    def test_estimates_are_within_a_factor_of_actual_usage(self):
        """The planner's predictions should land in the right ballpark.

        It only has to be good enough to discard unaffordable strategies, so a
        factor-of-three agreement with the measured token counts is plenty.
        """
        planner = CostPlanner("sim-gpt-3.5-turbo", registry=default_registry())
        items = list(FLAVORS)
        operator = SortOperator(
            SimulatedLLM(flavor_oracle(), seed=7), CHOCOLATEY, model="sim-gpt-3.5-turbo"
        )
        measured = operator.run(items, strategy="pairwise")
        predicted = planner.pairwise(items)
        assert predicted.calls == measured.usage.calls
        ratio = predicted.usage.prompt_tokens / measured.usage.prompt_tokens
        assert 1 / 3 <= ratio <= 3


# Hypothesis strategies for the property suite: short lowercase "items".
_item = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
_items = st.lists(_item, min_size=2, max_size=25)
_extra_items = st.lists(_item, min_size=1, max_size=10)


def _planner() -> CostPlanner:
    return CostPlanner("sim-gpt-3.5-turbo")


class TestCostPlannerProperties:
    """Property tests: shape monotonicity and pipeline-quote additivity."""

    @given(items=_items, extra=_extra_items)
    @settings(max_examples=60)
    def test_shapes_are_monotone_in_item_count(self, items, extra):
        """Adding items never makes any cost shape cheaper."""
        planner = _planner()
        grown = items + extra
        shapes = [
            lambda xs: planner.single_prompt(xs),
            lambda xs: planner.per_item(xs),
            lambda xs: planner.per_item(xs, batch_size=5),
            lambda xs: planner.pairwise(xs),
            lambda xs: planner.pairwise_against(xs, 3),
        ]
        for shape in shapes:
            small, large = shape(items), shape(grown)
            assert small.calls <= large.calls
            assert small.dollars <= large.dollars + 1e-12
            assert small.usage.total_tokens <= large.usage.total_tokens

    @given(items=_items, extra=_extra_items)
    @settings(max_examples=60)
    def test_pair_judgments_monotone_in_pair_count(self, items, extra):
        planner = _planner()
        pairs = [(item, item[::-1]) for item in items]
        grown = pairs + [(item, item + "x") for item in extra]
        small = planner.pair_judgments(pairs)
        large = planner.pair_judgments(grown)
        assert small.calls <= large.calls
        assert small.dollars <= large.dollars + 1e-12

    @given(
        branches=st.lists(
            st.lists(_item, min_size=2, max_size=15), min_size=1, max_size=5
        )
    )
    @settings(max_examples=40)
    def test_pipeline_quote_is_the_sum_of_step_quotes(self, branches):
        planner = _planner()
        steps = [
            PipelineStep(
                f"sort-{index}",
                task=SortSpec(items=items, criterion="weight", strategy="rating"),
            )
            for index, items in enumerate(branches)
        ]
        steps.append(
            PipelineStep(
                "judge",
                task=ResolveSpec(
                    pairs=[(branches[0][0], branches[0][1])], strategy="pairwise"
                ),
            )
        )
        pipeline = PipelineSpec(name="quoted", steps=steps)
        quote = planner.quote_pipeline(pipeline)
        per_step = [planner.estimate_spec(step.task) for step in steps]
        assert quote.total_calls == sum(estimate.calls for estimate in per_step)
        assert quote.total_dollars == pytest.approx(
            sum(estimate.dollars for estimate in per_step)
        )
        assert quote.total_usage.total_tokens == sum(
            estimate.usage.total_tokens for estimate in per_step
        )
        assert set(quote.steps) == {step.name for step in steps}
        assert quote.unquoted == ()

    def test_dynamic_steps_are_listed_as_unquoted(self):
        pipeline = PipelineSpec(
            name="partial",
            steps=[
                PipelineStep("block", run=lambda session, inputs: []),
                PipelineStep(
                    "resolve",
                    task=lambda inputs: ResolveSpec(pairs=inputs["block"]),
                    depends_on=("block",),
                ),
                PipelineStep(
                    "sort",
                    task=SortSpec(items=list(FLAVORS[:4]), criterion=CHOCOLATEY),
                ),
            ],
        )
        quote = _planner().quote_pipeline(pipeline)
        assert set(quote.steps) == {"sort"}
        assert quote.unquoted == ("block", "resolve")

    def test_spec_estimates_follow_strategy_shapes(self):
        planner = _planner()
        items = list(FLAVORS)
        rating = planner.estimate_spec(
            SortSpec(items=items, criterion=CHOCOLATEY, strategy="rating")
        )
        pairwise = planner.estimate_spec(
            SortSpec(items=items, criterion=CHOCOLATEY, strategy="pairwise")
        )
        assert rating.strategy == "sort:rating"
        assert rating.calls == len(items)
        assert pairwise.calls == len(items) * (len(items) - 1) // 2
        assert rating.dollars < pairwise.dollars

    def test_transitive_resolve_expands_per_pair_calls(self):
        planner = _planner()
        pairs = [(left, right) for left, right in zip(FLAVORS[:5], FLAVORS[5:10])]
        plain = planner.estimate_spec(ResolveSpec(pairs=pairs, strategy="pairwise"))
        augmented = planner.estimate_spec(
            ResolveSpec(pairs=pairs, strategy="transitive", neighbors_k=1)
        )
        assert plain.calls == len(pairs)
        # C(2k+2, 2) = 6 comparisons per queried pair at k = 1.
        assert augmented.calls == 6 * len(pairs)
