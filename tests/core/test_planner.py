"""Tests for the a-priori cost planner."""

from __future__ import annotations

import pytest

from repro.core.planner import CostPlanner
from repro.data.flavors import FLAVORS
from repro.data.words import random_words
from repro.exceptions import ConfigurationError
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM
from repro.data.flavors import CHOCOLATEY, flavor_oracle
from repro.operators.sort import SortOperator


class TestCostPlannerShapes:
    def test_empty_items_rejected(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        with pytest.raises(ConfigurationError):
            planner.single_prompt([])

    def test_pairwise_calls_are_quadratic(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        assert planner.pairwise(items).calls == len(items) * (len(items) - 1) // 2
        assert planner.per_item(items).calls == len(items)
        assert planner.single_prompt(items).calls == 1

    def test_batching_reduces_calls_and_prompt_tokens(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        unbatched = planner.per_item(items, batch_size=1)
        batched = planner.per_item(items, batch_size=5)
        assert batched.calls < unbatched.calls
        assert batched.usage.prompt_tokens < unbatched.usage.prompt_tokens

    def test_invalid_parameters(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        with pytest.raises(ConfigurationError):
            planner.per_item(list(FLAVORS), batch_size=0)
        with pytest.raises(ConfigurationError):
            planner.pairwise_against(list(FLAVORS), -1)

    def test_cost_ordering_matches_strategy_granularity(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        assert (
            planner.single_prompt(items).dollars
            < planner.per_item(items).dollars
            < planner.pairwise(items).dollars
        )

    def test_affordable_strategies_filters_and_sorts(self):
        planner = CostPlanner("sim-gpt-3.5-turbo")
        items = list(FLAVORS)
        pairwise_cost = planner.pairwise(items).dollars
        affordable = planner.affordable_strategies(items, budget_dollars=pairwise_cost / 2)
        names = [estimate.strategy for estimate in affordable]
        assert "pairwise" not in names
        assert names == sorted(
            names, key=lambda name: [e.strategy for e in affordable].index(name)
        )
        dollars = [estimate.dollars for estimate in affordable]
        assert dollars == sorted(dollars)

    def test_fits_context_detects_oversized_prompts(self):
        small_context = CostPlanner("sim-small")
        long_context = CostPlanner("sim-claude-2")
        # 400 six-word snippets: a few thousand tokens — beyond sim-small's
        # 2k context but far inside sim-claude-2's 100k window.
        snippets = [" ".join(random_words(6, seed=index)) for index in range(400)]
        assert long_context.fits_context(snippets) is True
        assert small_context.fits_context(snippets) is False


class TestPlannerAgainstMeasuredCost:
    def test_estimates_are_within_a_factor_of_actual_usage(self):
        """The planner's predictions should land in the right ballpark.

        It only has to be good enough to discard unaffordable strategies, so a
        factor-of-three agreement with the measured token counts is plenty.
        """
        planner = CostPlanner("sim-gpt-3.5-turbo", registry=default_registry())
        items = list(FLAVORS)
        operator = SortOperator(
            SimulatedLLM(flavor_oracle(), seed=7), CHOCOLATEY, model="sim-gpt-3.5-turbo"
        )
        measured = operator.run(items, strategy="pairwise")
        predicted = planner.pairwise(items)
        assert predicted.calls == measured.usage.calls
        ratio = predicted.usage.prompt_tokens / measured.usage.prompt_tokens
        assert 1 / 3 <= ratio <= 3
