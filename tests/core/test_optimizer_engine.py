"""Tests for the strategy optimizer and the declarative engine facade."""

from __future__ import annotations

import pytest

from repro.core.budget import Budget
from repro.core.engine import DeclarativeEngine
from repro.core.optimizer import StrategyCandidate, StrategySelector
from repro.core.spec import ImputeSpec, ResolveSpec, SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.data.products import generate_restaurant_dataset
from repro.exceptions import SpecError
from repro.llm.simulated import SimulatedLLM
from repro.metrics.ranking import kendall_tau_b
from repro.operators.base import OperatorResult
from repro.tokenizer.cost import Usage


def _result(cost: float) -> OperatorResult:
    return OperatorResult(strategy="stub", usage=Usage(100, 10, 1), cost=cost)


class TestStrategyCandidate:
    def test_linear_extrapolation(self):
        candidate = StrategyCandidate(name="rating", cost_scaling="linear")
        assert candidate.extrapolate_cost(1.0, validation_size=10, full_size=100) == pytest.approx(10.0)

    def test_quadratic_extrapolation(self):
        candidate = StrategyCandidate(name="pairwise", cost_scaling="quadratic")
        assert candidate.extrapolate_cost(1.0, 10, 100) == pytest.approx(100.0)

    def test_constant_extrapolation(self):
        candidate = StrategyCandidate(name="single", cost_scaling="constant")
        assert candidate.extrapolate_cost(1.0, 10, 100) == pytest.approx(1.0)


class TestStrategySelector:
    def _selector(self, accuracies: dict[str, float], costs: dict[str, float]) -> StrategySelector:
        return StrategySelector(
            run_candidate=lambda candidate: _result(costs[candidate.name]),
            score=lambda result: accuracies[result.strategy] if result.strategy != "stub" else 0.0,
            validation_size=10,
            full_size=10,
        )

    def test_picks_most_accurate_within_budget(self):
        accuracies = {"cheap": 0.6, "expensive": 0.9}
        costs = {"cheap": 0.1, "expensive": 10.0}
        selector = StrategySelector(
            run_candidate=lambda candidate: OperatorResult(
                strategy=candidate.name, cost=costs[candidate.name]
            ),
            score=lambda result: accuracies[result.strategy],
            validation_size=10,
            full_size=10,
        )
        candidates = [StrategyCandidate("cheap"), StrategyCandidate("expensive")]
        assert selector.select(candidates, budget_dollars=1.0).name == "cheap"
        assert selector.select(candidates, budget_dollars=100.0).name == "expensive"

    def test_accuracy_target_prefers_cheapest_sufficient(self):
        accuracies = {"cheap": 0.85, "expensive": 0.95}
        costs = {"cheap": 0.1, "expensive": 10.0}
        selector = StrategySelector(
            run_candidate=lambda candidate: OperatorResult(
                strategy=candidate.name, cost=costs[candidate.name]
            ),
            score=lambda result: accuracies[result.strategy],
            validation_size=5,
            full_size=5,
        )
        candidates = [StrategyCandidate("cheap"), StrategyCandidate("expensive")]
        chosen = selector.select(candidates, accuracy_target=0.8)
        assert chosen.name == "cheap"

    def test_no_candidates_raises(self):
        selector = StrategySelector(
            run_candidate=lambda candidate: OperatorResult(strategy=candidate.name),
            score=lambda result: 1.0,
            validation_size=1,
            full_size=1,
        )
        with pytest.raises(SpecError):
            selector.select([])

    def test_invalid_sizes(self):
        with pytest.raises(SpecError):
            StrategySelector(
                run_candidate=lambda candidate: OperatorResult(strategy=candidate.name),
                score=lambda result: 1.0,
                validation_size=0,
                full_size=1,
            )


class TestDeclarativeEngine:
    def _engine(self, budget: Budget | None = None) -> DeclarativeEngine:
        return DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=91), budget=budget)

    def test_explicit_strategy_sort(self):
        engine = self._engine()
        result = engine.sort(
            SortSpec(items=list(FLAVORS), criterion=CHOCOLATEY, strategy="pairwise")
        )
        assert result.strategy == "pairwise"
        assert kendall_tau_b(result.order, list(FLAVORS)) > 0.5
        assert engine.spent_dollars > 0.0

    def test_auto_sort_without_validation_defaults_to_pairwise(self):
        engine = self._engine()
        result = engine.sort(
            SortSpec(items=list(FLAVORS[:8]), criterion=CHOCOLATEY, strategy="auto")
        )
        assert result.strategy == "pairwise"

    def test_auto_sort_with_validation_and_tight_budget_picks_cheap_strategy(self):
        engine = self._engine()
        spec = SortSpec(
            items=list(FLAVORS),
            criterion=CHOCOLATEY,
            strategy="auto",
            validation_order=list(FLAVORS[:6]),
            budget_dollars=0.0005,
        )
        result = engine.sort(spec)
        assert result.strategy in {"single_prompt", "rating"}

    def test_engine_impute_auto(self):
        data = generate_restaurant_dataset(80, seed=92)
        engine = DeclarativeEngine(SimulatedLLM(data.oracle(), seed=93))
        result = engine.impute(ImputeSpec(data=data, strategy="auto", validation_size=10))
        assert result.strategy in {"knn", "hybrid", "llm_only"}
        assert set(result.predictions) == set(data.ground_truth)

    def test_engine_resolve_records_clusters(self, citation_corpus):
        """Records-only resolve specs run whole-corpus clustering."""
        engine = DeclarativeEngine(SimulatedLLM(citation_corpus.oracle(), seed=94))
        texts = list(dict.fromkeys(citation_corpus.texts()))[:8]
        result = engine.resolve(ResolveSpec(records=texts, strategy="pairwise"))
        assert sorted(index for cluster in result.clusters for index in cluster) == list(
            range(len(texts))
        )

    def test_engine_resolve_transitive(self, citation_corpus):
        engine = DeclarativeEngine(SimulatedLLM(citation_corpus.oracle(), seed=95))
        pairs = [(pair.left_text, pair.right_text) for pair in citation_corpus.pairs[:20]]
        result = engine.resolve(
            ResolveSpec(
                pairs=pairs,
                records=citation_corpus.texts(),
                strategy="transitive",
                neighbors_k=1,
            )
        )
        assert len(result.judgments) == len(pairs)

    def test_budget_is_shared_across_engine_calls(self):
        engine = self._engine(budget=Budget(limit=10.0))
        engine.sort(SortSpec(items=list(FLAVORS[:6]), criterion=CHOCOLATEY, strategy="rating"))
        first_spend = engine.spent_dollars
        engine.sort(SortSpec(items=list(FLAVORS[6:12]), criterion=CHOCOLATEY, strategy="rating"))
        assert engine.spent_dollars > first_spend
