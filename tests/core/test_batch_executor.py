"""Tests for the batched/concurrent execution layer (`repro.core.executor`).

Covers ordered result return, the client-level ``complete_batch`` equivalence
with the sequential ``complete`` loop across batch sizes {1, 2, 7, 64} and
``max_concurrency`` {1, 4}, per-call retry integration, and budget-aware early
stopping.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.budget import Budget
from repro.core.executor import BatchExecutor, BatchRequest
from repro.data.words import random_words
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.llm.base import LLMResponse, sequential_complete_batch
from repro.llm.cache import CachedClient
from repro.llm.oracle import Oracle
from repro.llm.prompts import rating_prompt
from repro.llm.simulated import SimulatedLLM
from repro.llm.tracker import TrackedClient, UsageTracker
from repro.tokenizer.cost import Usage

BATCH_SIZES = (1, 2, 7, 64)
CONCURRENCIES = (1, 4)
CRITERION = "alphabetical order"


def _simulated_client(seed: int = 3) -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key(CRITERION, lambda word: word.lower())
    return SimulatedLLM(oracle, seed=seed)


class EchoClient:
    """Deterministic fake client that counts calls and optionally charges a budget."""

    default_model = "echo"

    def __init__(self, budget: Budget | None = None, charge: float = 0.0) -> None:
        self.budget = budget
        self.charge = charge
        self.calls = 0
        self._lock = threading.Lock()

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        with self._lock:
            self.calls += 1
        if self.budget is not None:
            self.budget.charge(self.charge)
        return LLMResponse(
            text=f"echo:{prompt}", model=model or self.default_model, usage=Usage(1, 1, 1)
        )


def _rating_prompts(count: int) -> list[str]:
    return [rating_prompt(word, CRITERION) for word in random_words(count, seed=5)]


class TestBatchExecutorBasics:
    def test_results_in_input_order(self):
        client = EchoClient()
        executor = BatchExecutor(client, max_concurrency=4)
        prompts = [f"prompt-{index}" for index in range(20)]
        responses = executor.run(prompts)
        assert [response.text for response in responses] == [f"echo:{p}" for p in prompts]
        assert client.calls == 20

    def test_empty_batch(self):
        executor = BatchExecutor(EchoClient())
        assert executor.run([]) == []

    def test_plain_strings_promoted_to_requests(self):
        executor = BatchExecutor(EchoClient())
        responses = executor.run(["a", BatchRequest(prompt="b", model="other")])
        assert responses[0].model == "echo"
        assert responses[1].model == "other"

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchExecutor(EchoClient(), max_concurrency=0)


class TestClientBatchEquivalence:
    """complete_batch == [complete(p) for p in prompts] at temperature 0."""

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_simulated_client(self, size):
        prompts = _rating_prompts(size)
        batch = _simulated_client().complete_batch(prompts)
        loop = sequential_complete_batch(_simulated_client(), prompts)
        assert [r.text for r in batch] == [r.text for r in loop]
        assert [r.usage for r in batch] == [r.usage for r in loop]

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_cached_client(self, size):
        # Repeat every prompt so within-batch dedup is exercised.
        prompts = _rating_prompts(size) * 2
        batch_client = CachedClient(_simulated_client())
        loop_client = CachedClient(_simulated_client())
        batch = batch_client.complete_batch(prompts)
        loop = sequential_complete_batch(loop_client, prompts)
        assert [r.text for r in batch] == [r.text for r in loop]
        assert [r.usage for r in batch] == [r.usage for r in loop]
        assert [r.metadata.get("cache_hit") for r in batch] == [
            r.metadata.get("cache_hit") for r in loop
        ]
        assert batch_client.cache.stats.hits == loop_client.cache.stats.hits
        assert batch_client.cache.stats.misses == loop_client.cache.stats.misses

    @pytest.mark.parametrize("size", BATCH_SIZES)
    def test_tracked_client(self, size):
        prompts = _rating_prompts(size)
        batch_tracker, loop_tracker = UsageTracker(), UsageTracker()
        batch = TrackedClient(_simulated_client(), batch_tracker).complete_batch(
            prompts
        )
        loop = sequential_complete_batch(
            TrackedClient(_simulated_client(), loop_tracker), prompts
        )
        assert [r.text for r in batch] == [r.text for r in loop]
        assert batch_tracker.usage == loop_tracker.usage
        assert batch_tracker.calls == size

    @pytest.mark.parametrize("size", BATCH_SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_executor_matches_sequential_loop(self, size, concurrency):
        prompts = _rating_prompts(size)
        executor_client = TrackedClient(
            CachedClient(_simulated_client()), UsageTracker()
        )
        executor = BatchExecutor(executor_client, max_concurrency=concurrency)
        reference = sequential_complete_batch(
            TrackedClient(CachedClient(_simulated_client()), UsageTracker()),
            prompts,
        )
        responses = executor.run(prompts)
        assert [r.text for r in responses] == [r.text for r in reference]
        assert [r.usage for r in responses] == [r.usage for r in reference]


class TestRetryIntegration:
    def test_validator_triggers_retries_and_stats(self):
        client = EchoClient()
        executor = BatchExecutor(
            client,
            max_concurrency=2,
            validator=lambda text: not text.endswith("bad"),
            max_retries=2,
        )
        responses = executor.run(["good-1", "bad", "good-2"])
        assert [r.text for r in responses] == ["echo:good-1", "echo:bad", "echo:good-2"]
        assert executor.retry_stats is not None
        # The rejected prompt was attempted 1 + max_retries times.
        assert executor.retry_stats.attempts == 2 + 3
        assert executor.retry_stats.retries == 2
        assert executor.retry_stats.failures == 1
        assert responses[1].metadata["attempts"] == 3
        # All attempts' usage is accumulated onto the returned response.
        assert responses[1].usage.calls == 3

    def test_no_validator_means_no_retry_stats(self):
        executor = BatchExecutor(EchoClient())
        executor.run(["a"])
        assert executor.retry_stats is None


class TestBudgetEarlyStopping:
    def test_exhausted_budget_stops_before_any_dispatch(self):
        budget = Budget(limit=1.0)
        budget.charge(1.0)
        client = EchoClient()
        executor = BatchExecutor(client, max_concurrency=1, budget=budget)
        with pytest.raises(BudgetExceededError):
            executor.run([f"p{i}" for i in range(10)])
        assert client.calls == 0

    def test_budget_stops_batch_midway_sequentially(self):
        budget = Budget(limit=1.0)
        client = EchoClient(budget=budget, charge=0.4)
        executor = BatchExecutor(client, budget=budget)
        with pytest.raises(BudgetExceededError):
            executor.run([f"p{i}" for i in range(10)])
        # 0.4 + 0.4 fit the budget, the third charge exceeds it, and the
        # remaining seven unit tasks are never dispatched.
        assert client.calls == 3

    def test_concurrent_workers_observe_exhaustion(self):
        budget = Budget(limit=0.5)
        budget.charge(0.5)
        client = EchoClient()
        executor = BatchExecutor(client, max_concurrency=4, budget=budget)
        with pytest.raises(BudgetExceededError):
            executor.run([f"p{i}" for i in range(16)])
        assert client.calls == 0

    def test_unlimited_budget_never_stops(self):
        client = EchoClient()
        executor = BatchExecutor(client, budget=Budget())
        assert len(executor.run([f"p{i}" for i in range(5)])) == 5
        assert client.calls == 5


class TestConcurrentDuplicateHandling:
    """Duplicate temperature-0 prompts must not race past a downstream cache."""

    def test_duplicates_served_from_one_inner_call_through_cache(self):
        inner = EchoClient()
        executor = BatchExecutor(CachedClient(inner), max_concurrency=4)
        responses = executor.run(["same"] * 8)
        assert inner.calls == 1
        assert [r.text for r in responses] == ["echo:same"] * 8
        # The first occurrence is the real call; the rest are zero-usage hits,
        # exactly like the sequential loop.
        assert responses[0].metadata.get("cache_hit") is None
        assert all(r.metadata.get("cache_hit") is True for r in responses[1:])
        assert all(r.usage.calls == 0 for r in responses[1:])

    def test_duplicates_without_cache_each_pay_their_call(self):
        client = EchoClient()
        executor = BatchExecutor(client, max_concurrency=4)
        responses = executor.run(["same"] * 8)
        # Matches the sequential loop through an uncached client.
        assert client.calls == 8
        assert all(r.usage.calls == 1 for r in responses)

    def test_nonzero_temperature_duplicates_stay_independent(self):
        client = EchoClient()
        executor = BatchExecutor(CachedClient(client), max_concurrency=4)
        executor.run([BatchRequest(prompt="same", temperature=0.7)] * 6)
        assert client.calls == 6

    def test_dedup_keys_on_cache_key_not_full_request(self):
        # Requests differing only in max_tokens share a (model, prompt) cache
        # entry, so only one may go to the pool — like the sequential path,
        # where the second is a cache hit.
        inner = EchoClient()
        executor = BatchExecutor(CachedClient(inner), max_concurrency=4)
        responses = executor.run(
            [BatchRequest(prompt="same", max_tokens=100), BatchRequest(prompt="same", max_tokens=200)]
        )
        assert inner.calls == 1
        assert responses[1].metadata.get("cache_hit") is True

    def test_unit_task_error_stops_dispatching_queued_tasks(self):
        class FailingClient(EchoClient):
            def complete(self, prompt, **kwargs):
                if prompt == "boom":
                    with self._lock:
                        self.calls += 1
                    raise ValueError("simulated API failure")
                return super().complete(prompt, **kwargs)

        client = FailingClient()
        executor = BatchExecutor(client, max_concurrency=2)
        with pytest.raises(ValueError):
            executor.run(["ok-1", "boom"] + [f"queued-{i}" for i in range(40)])
        # The queued tail was cancelled once the failure surfaced; only the
        # few tasks already in flight (at most a handful) ran.
        assert client.calls < 10


class TestEngineBudgetEnforcement:
    """The engine threads its session budget into every operator's executor."""

    def test_operator_batch_stops_at_the_limit(self):
        from repro.core import DeclarativeEngine
        from repro.core.spec import SortSpec
        from repro.data.words import random_words
        from repro.exceptions import BudgetExceededError as Exceeded

        engine = DeclarativeEngine(
            _simulated_client(), budget=Budget(limit=1e-6), max_concurrency=1
        )
        words = random_words(12, seed=47)
        with pytest.raises(Exceeded):
            engine.sort(SortSpec(items=words, criterion=CRITERION, strategy="pairwise"))
        # The limit interrupted the 66-comparison batch near its start instead
        # of charging the whole batch after the fact.
        assert engine.session.tracker.calls < 5


class TestBatchExecutorMap:
    """map() runs arbitrary independent callables with outcome reporting."""

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_values_in_input_order(self, concurrency):
        executor = BatchExecutor(EchoClient(), max_concurrency=concurrency)
        outcomes = executor.map([(lambda index=index: index * 2) for index in range(17)])
        assert all(outcome.ok for outcome in outcomes)
        assert [outcome.value for outcome in outcomes] == [index * 2 for index in range(17)]

    def test_empty(self):
        assert BatchExecutor(EchoClient()).map([]) == []

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_failure_is_reported_not_raised(self, concurrency):
        def boom():
            raise ValueError("boom")

        executor = BatchExecutor(EchoClient(), max_concurrency=concurrency)
        outcomes = executor.map([lambda: 1, boom, lambda: 3])
        assert outcomes[0].ok and outcomes[0].value == 1
        assert isinstance(outcomes[1].error, ValueError)
        # Once a task fails, not-yet-started tasks are skipped (at
        # concurrency > 1 an in-flight sibling may still finish).
        if concurrency == 1:
            assert outcomes[2].skipped

    def test_sequential_failure_skips_the_rest(self):
        ran = []

        def boom():
            raise ValueError("boom")

        executor = BatchExecutor(EchoClient(), max_concurrency=1)
        outcomes = executor.map([lambda: ran.append("a"), boom, lambda: ran.append("c")])
        assert ran == ["a"]
        assert outcomes[2].skipped and not outcomes[2].ok

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_exhausted_budget_stops_dispatch(self, concurrency):
        budget = Budget(limit=1.0)
        budget.spent = 1.0
        executor = BatchExecutor(EchoClient(), max_concurrency=concurrency, budget=budget)
        outcomes = executor.map([lambda: 1, lambda: 2])
        # The tasks never ran: skipped, with the budget error attached to the
        # one(s) that failed the pre-dispatch check.
        assert not any(outcome.ok for outcome in outcomes)
        assert all(outcome.skipped for outcome in outcomes)
        errors = [outcome.error for outcome in outcomes if outcome.error is not None]
        assert errors and all(isinstance(error, BudgetExceededError) for error in errors)

    def test_budget_skip_outcome_parity_between_paths(self):
        # Pin: every task an exhausted budget prevents from running carries
        # the BudgetExceededError, on BOTH the sequential and the concurrent
        # path — not just the first one the pre-dispatch check happened to
        # reject.  Callers (the pipeline scheduler) rely on this to tell
        # budget skips from sibling-failure skips without caring which path
        # executed the batch.
        def shapes(concurrency: int) -> list[tuple[bool, bool, str | None]]:
            budget = Budget(limit=1.0)
            budget.spent = 1.0
            executor = BatchExecutor(
                EchoClient(), max_concurrency=concurrency, budget=budget
            )
            outcomes = executor.map([lambda: 1, lambda: 2, lambda: 3, lambda: 4])
            return [
                (o.ok, o.skipped, type(o.error).__name__ if o.error else None)
                for o in outcomes
            ]

        sequential = shapes(1)
        concurrent = shapes(4)
        assert sequential == concurrent
        assert sequential == [(False, True, "BudgetExceededError")] * 4

    def test_midway_exhaustion_attaches_error_to_every_budget_skip(self):
        # Tasks charge the budget as they run; once it dies, every task the
        # pre-dispatch check turned away must carry the error — and whatever
        # the thread timing, the budget's death is always visible on at
        # least one outcome (a skip with the error attached, or a mid-task
        # breach reported as a failure).
        for concurrency in CONCURRENCIES:
            budget = Budget(limit=1.0)
            executor = BatchExecutor(
                EchoClient(), max_concurrency=concurrency, budget=budget
            )

            def spend() -> str:
                budget.charge(0.5)
                return "ran"

            outcomes = executor.map([spend] * 6)
            budget_errors = [
                outcome
                for outcome in outcomes
                if isinstance(outcome.error, BudgetExceededError)
            ]
            assert budget_errors, f"budget death invisible at concurrency {concurrency}"
            # A skipped outcome carries either nothing (a sibling failed
            # mid-run first) or the budget error — never a different one.
            for outcome in outcomes:
                if outcome.skipped and outcome.error is not None:
                    assert isinstance(outcome.error, BudgetExceededError)
            # The sequential path is fully deterministic: two tasks fit the
            # budget, the other four are budget-skips with the error.
            if concurrency == 1:
                assert [outcome.ok for outcome in outcomes] == [True] * 2 + [False] * 4
                assert all(
                    outcome.skipped and isinstance(outcome.error, BudgetExceededError)
                    for outcome in outcomes[2:]
                )
