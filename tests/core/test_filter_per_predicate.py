"""Per-predicate strategy resolution for fused multi-predicate filters.

The planner measures each candidate strategy on each predicate separately,
so a fused filter can run a cheap ``per_item`` pass for an easy predicate
ahead of an ensemble for a hard one instead of paying the ensemble price
for the whole conjunction.
"""

from __future__ import annotations

import pytest

import repro.core.engine as engine_module
import repro.core.physical as physical_module
from repro.core.physical import PhysicalPlanner
from repro.core.session import PromptSession
from repro.core.spec import FilterSpec
from repro.data.flavors import flavor_oracle
from repro.llm.simulated import SimulatedLLM
from repro.operators.filter import FilterResult

ITEMS = ["i1", "i2", "i3", "i4", "i5", "i6"]

EASY_TRUTH = {"i1": True, "i2": True, "i3": False, "i4": True, "i5": False, "i6": True}
HARD_TRUTH = {"i1": True, "i2": False, "i3": True, "i4": True, "i5": True, "i6": False}
CONJUNCTION = {item: EASY_TRUTH[item] and HARD_TRUTH[item] for item in ITEMS}

# Every strategy nails the easy predicate; only the ensemble nails the hard
# one (per_item/adaptive flip two items there).
_FLIPPED_HARD = {**HARD_TRUTH, "i2": True, "i4": False}
DECISIONS = {
    "is easy": {
        "per_item": EASY_TRUTH,
        "ensemble_vote": EASY_TRUTH,
        "adaptive": EASY_TRUTH,
    },
    "is hard": {
        "per_item": _FLIPPED_HARD,
        "ensemble_vote": HARD_TRUTH,
        "adaptive": _FLIPPED_HARD,
    },
}
COSTS = {"per_item": 1.0, "ensemble_vote": 3.0, "adaptive": 2.0}


class StubFilterOperator:
    """Deterministic stand-in: decisions come from the tables above."""

    def __init__(self, client, predicate, **kwargs):
        self.predicate = predicate

    def run(self, items, *, strategy, **options):
        table = DECISIONS[self.predicate][strategy]
        decisions = {item: table.get(item, False) for item in items}
        return FilterResult(
            strategy=strategy,
            cost=COSTS[strategy],
            decisions=decisions,
            kept=[item for item in items if decisions[item]],
        )


@pytest.fixture
def stubbed(monkeypatch):
    monkeypatch.setattr(physical_module, "FilterOperator", StubFilterOperator)
    monkeypatch.setattr(engine_module, "FilterOperator", StubFilterOperator)


def _planner() -> PhysicalPlanner:
    return PhysicalPlanner(PromptSession(SimulatedLLM(flavor_oracle(), seed=7)))


def _spec(**overrides) -> FilterSpec:
    base = dict(
        items=ITEMS,
        predicates=["is easy", "is hard"],
        strategy="auto",
        validation_labels=CONJUNCTION,
    )
    base.update(overrides)
    return FilterSpec(**base)


class TestPerPredicateResolution:
    def test_mixed_combo_pairs_cheap_and_accurate_strategies(self, stubbed):
        plans = _planner().resolve_filter(_spec())
        by_predicate = {predicate: resolved for predicate, resolved in plans}
        assert by_predicate["is easy"].strategy == "per_item"
        assert by_predicate["is hard"].strategy == "ensemble_vote"
        assert all(resolved.decided_by == "validation" for _, resolved in plans)
        assert "per_item" in by_predicate["is easy"].considered
        assert "ensemble_vote" in by_predicate["is easy"].considered

    def test_predicate_order_is_preserved(self, stubbed):
        plans = _planner().resolve_filter(_spec())
        assert [predicate for predicate, _ in plans] == ["is easy", "is hard"]

    def test_accuracy_target_picks_the_cheapest_sufficient_combo(self, stubbed):
        # All-per_item misclassifies two items on the hard predicate but
        # still clears a loose target, and it is the cheapest combination.
        plans = _planner().resolve_filter(_spec(accuracy_target=0.5))
        assert [resolved.strategy for _, resolved in plans] == ["per_item", "per_item"]

    def test_fixed_strategy_applies_uniformly(self, stubbed):
        plans = _planner().resolve_filter(_spec(strategy="ensemble_vote"))
        assert [resolved.strategy for _, resolved in plans] == [
            "ensemble_vote",
            "ensemble_vote",
        ]
        assert all(resolved.decided_by == "fixed" for _, resolved in plans)

    def test_unlabelled_spec_shares_one_cost_based_resolution(self, stubbed):
        plans = _planner().resolve_filter(_spec(validation_labels={}))
        strategies = {resolved.strategy for _, resolved in plans}
        assert len(strategies) == 1  # no labels -> no per-predicate search
        assert all(resolved.decided_by != "validation" for _, resolved in plans)

    def test_too_many_predicates_fall_back_to_shared_validation(self, stubbed):
        predicates = ["is easy"] * 4 + ["is hard"]
        plans = _planner().resolve_filter(_spec(predicates=predicates))
        assert len(plans) == 5
        assert len({resolved.strategy for _, resolved in plans}) == 1


class TestEngineIntegration:
    def test_engine_reports_and_executes_per_predicate_strategies(self, stubbed):
        engine = engine_module.DeclarativeEngine.from_session(
            PromptSession(SimulatedLLM(flavor_oracle(), seed=7))
        )
        result = engine.filter(_spec())
        assert result.metadata["predicate_strategies"] == {
            "is easy": "per_item",
            "is hard": "ensemble_vote",
        }
        assert result.strategy == "per_item+ensemble_vote"
        assert result.kept == [item for item in ITEMS if CONJUNCTION[item]]
        assert all(
            result.decisions[item] == CONJUNCTION[item] for item in ITEMS
        )
