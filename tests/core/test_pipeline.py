"""Tests for the DAG pipeline engine (`repro.core.workflow` + friends).

Three batteries:

* **Equivalence** — the same pipeline expressed as a linear chain and as a
  DAG, executed at scheduler concurrency 1 and 4, produces element-wise
  identical step results at temperature 0.
* **Validation** — cycle detection, unknown dependencies, duplicate names,
  and malformed pipeline steps all raise :class:`SpecError`.
* **Budget** — the scheduler apportions the remaining dollars across
  pending steps (quote-weighted) and stops cleanly mid-pipeline, reporting
  partial results instead of raising.

Plus the golden end-to-end regression for the paper's block → resolve →
transitivity-repair entity-resolution pipeline, pinning clusters, call
counts, and cost against the seeded simulator.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.consistency.transitivity import MatchGraph
from repro.core import (
    Budget,
    PipelineQuote,
    PipelineSpec,
    PipelineStep,
    Workflow,
    topological_waves,
    transitive_dependencies,
)
from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import ResolveSpec, SortSpec
from repro.data.citations import generate_citation_corpus
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.exceptions import SpecError
from repro.llm.prompts import rating_prompt
from repro.llm.simulated import SimulatedLLM
from repro.operators.sort import SortOperator
from repro.proxies.blocking import EmbeddingBlocker

MODEL = "sim-gpt-3.5-turbo"
# Pinned in CI (see .github/workflows/ci.yml) so the equivalence suite runs
# the same scheduler fan-out on every runner; locally defaults to 4.
SCHEDULER_CONCURRENCIES = (1, int(os.environ.get("REPRO_TEST_THREADS", "4")))

LEFT = list(FLAVORS[:8])
RIGHT = list(FLAVORS[8:16])


def _flavor_engine(seed: int = 21, **kwargs) -> DeclarativeEngine:
    return DeclarativeEngine(
        SimulatedLLM(flavor_oracle(), seed=seed), default_model=MODEL, **kwargs
    )


def _merge(session, inputs):
    return list(inputs["left"].order) + list(inputs["right"].order)


def _two_branch_pipeline() -> PipelineSpec:
    """Two independent sort branches feeding one merge step."""
    return PipelineSpec(
        name="two-branch",
        steps=[
            PipelineStep("left", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")),
            PipelineStep(
                "right", task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
            ),
            PipelineStep("merge", run=_merge, depends_on=("left", "right")),
        ],
    )


def _chain_pipeline() -> PipelineSpec:
    """The same work forced into a linear chain."""
    return PipelineSpec(
        name="chain",
        steps=[
            PipelineStep("left", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")),
            PipelineStep(
                "right",
                task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating"),
                depends_on=("left",),
            ),
            PipelineStep("merge", run=_merge, depends_on=("right",)),
        ],
    )


class TestDagLinearEquivalence:
    """DAG and linear-chain execution agree element-wise at temperature 0."""

    def _step_outputs(self, report):
        return (
            list(report.results["left"].order),
            dict(report.results["left"].scores),
            list(report.results["right"].order),
            dict(report.results["right"].scores),
            list(report.results["merge"]),
        )

    @pytest.mark.parametrize("concurrency", SCHEDULER_CONCURRENCIES)
    def test_dag_matches_linear_chain(self, concurrency):
        chain_report = _flavor_engine().run_pipeline(_chain_pipeline(), max_concurrency=1)
        dag_report = _flavor_engine().run_pipeline(
            _two_branch_pipeline(), max_concurrency=concurrency
        )
        assert self._step_outputs(dag_report) == self._step_outputs(chain_report)
        assert dag_report.total_calls == chain_report.total_calls

    def test_dag_concurrency_levels_agree(self):
        reports = [
            _flavor_engine().run_pipeline(_two_branch_pipeline(), max_concurrency=concurrency)
            for concurrency in SCHEDULER_CONCURRENCIES
        ]
        outputs = [self._step_outputs(report) for report in reports]
        assert all(output == outputs[0] for output in outputs)
        assert all(report.total_calls == reports[0].total_calls for report in reports)

    def test_dag_matches_legacy_callable_chain(self):
        """The old linear add_step API is the degenerate chain of the DAG."""
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=21))

        def sort_step(items):
            def step(session_, inputs):
                operator = SortOperator(session_.client(), CHOCOLATEY, model=MODEL)
                return operator.run(items, strategy="rating")

            return step

        legacy = (
            Workflow("legacy")
            .add_step("left", sort_step(LEFT))
            .add_step("right", sort_step(RIGHT))
            .add_step("merge", _merge)
        )
        legacy_report = legacy.execute(session)
        dag_report = _flavor_engine().run_pipeline(_two_branch_pipeline(), max_concurrency=4)
        assert self._step_outputs(dag_report) == self._step_outputs(legacy_report)

    def test_waves_and_step_order_are_deterministic(self):
        report = _flavor_engine().run_pipeline(_two_branch_pipeline(), max_concurrency=4)
        assert report.waves == [["left", "right"], ["merge"]]
        assert report.step_order == ["left", "right", "merge"]

    def test_inputs_are_transitive_dependencies(self):
        """A step sees every transitive upstream result, keyed by name."""
        seen = {}

        def tail(session_, inputs):
            seen.update(inputs)
            return "done"

        workflow = (
            Workflow("diamond")
            .add_step("a", lambda s, i: 1, depends_on=())
            .add_step("b", lambda s, i: i["a"] + 1, depends_on=("a",))
            .add_step("c", lambda s, i: i["a"] + 2, depends_on=("a",))
            .add_step("tail", tail, depends_on=("b", "c"))
        )
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=1))
        report = workflow.execute(session, max_concurrency=4)
        assert report.results["tail"] == "done"
        assert seen == {"a": 1, "b": 2, "c": 3}


class TestPipelineValidation:
    def test_cycle_rejected(self):
        pipeline = PipelineSpec(
            steps=[
                PipelineStep("a", run=lambda s, i: 1, depends_on=("b",)),
                PipelineStep("b", run=lambda s, i: 2, depends_on=("a",)),
            ]
        )
        with pytest.raises(SpecError, match="cycle"):
            pipeline.validate()

    def test_self_cycle_rejected(self):
        workflow = Workflow().add_step("a", lambda s, i: 1, depends_on=("a",))
        with pytest.raises(SpecError, match="cycle"):
            workflow.waves()

    def test_unknown_dependency_rejected(self):
        pipeline = PipelineSpec(
            steps=[PipelineStep("a", run=lambda s, i: 1, depends_on=("ghost",))]
        )
        with pytest.raises(SpecError, match="unknown"):
            pipeline.validate()

    def test_duplicate_names_rejected(self):
        pipeline = PipelineSpec(
            steps=[
                PipelineStep("a", run=lambda s, i: 1),
                PipelineStep("a", run=lambda s, i: 2),
            ]
        )
        with pytest.raises(SpecError, match="duplicate"):
            pipeline.validate()
        workflow = Workflow().add_task("a", SortSpec(items=LEFT, criterion=CHOCOLATEY))
        with pytest.raises(SpecError, match="duplicate"):
            workflow.add_step("a", lambda s, i: 1)

    def test_deep_chains_do_not_overflow(self):
        """A thousands-deep chain declared leaf-first must not recurse out."""
        n = 1500
        deps = {f"s{i}": [f"s{i - 1}"] for i in range(n - 1, 0, -1)}
        deps["s0"] = []
        closures = transitive_dependencies(deps)
        assert len(closures[f"s{n - 1}"]) == n - 1
        assert len(topological_waves(deps)) == n

    def test_static_garbage_task_rejected_at_validate_time(self):
        """A non-spec, non-callable task must fail before any money is spent."""
        with pytest.raises(SpecError, match="TaskSpec or a spec factory"):
            PipelineStep("bad", task="resolve-me").validate()
        with pytest.raises(SpecError, match="must be callable"):
            PipelineStep("bad", run="not-callable").validate()

    def test_step_needs_exactly_one_of_task_and_run(self):
        with pytest.raises(SpecError, match="exactly one"):
            PipelineStep("a").validate()
        with pytest.raises(SpecError, match="exactly one"):
            PipelineStep(
                "a", task=SortSpec(items=LEFT, criterion=CHOCOLATEY), run=lambda s, i: 1
            ).validate()

    def test_empty_pipeline_rejected(self):
        with pytest.raises(SpecError, match="no steps"):
            PipelineSpec().validate()

    def test_spec_steps_need_an_engine(self):
        workflow = Workflow().add_task("sort", SortSpec(items=LEFT, criterion=CHOCOLATEY))
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=1))
        with pytest.raises(SpecError, match="run_pipeline"):
            workflow.execute(session)

    def test_factory_must_produce_a_spec(self):
        pipeline = PipelineSpec(
            steps=[PipelineStep("bad", task=lambda inputs: "not a spec")]
        )
        with pytest.raises(SpecError, match="expected a TaskSpec"):
            _flavor_engine().run_pipeline(pipeline)


class TestBudgetApportionment:
    def test_allocations_are_quote_weighted(self):
        pipeline = PipelineSpec(
            steps=[
                PipelineStep(
                    "cheap", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "dear", task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="pairwise")
                ),
            ]
        )
        engine = _flavor_engine(budget=Budget(limit=1.0))
        report = engine.run_pipeline(pipeline)
        assert not report.stopped_early
        cheap = report.step_reports["cheap"].allocation
        dear = report.step_reports["dear"].allocation
        assert cheap is not None and dear is not None
        # 28 pairwise comparisons dwarf 8 rating calls in the quote.
        assert dear > cheap
        assert cheap + dear == pytest.approx(1.0)

    def test_unlimited_budget_skips_apportionment(self):
        report = _flavor_engine().run_pipeline(_two_branch_pipeline())
        assert all(step.allocation is None for step in report.step_reports.values())

    def test_mid_pipeline_budget_stop_is_clean(self):
        engine = _flavor_engine(budget=Budget(limit=0.0009))
        report = engine.run_pipeline(_chain_pipeline())
        assert report.stopped_early
        assert report.stop_reason
        statuses = {name: step.status for name, step in report.step_reports.items()}
        # The first spec step hits its lease mid-batch; everything downstream
        # is never dispatched.
        assert statuses["left"] == "stopped"
        assert statuses["right"] == "skipped"
        assert statuses["merge"] == "skipped"
        assert report.stopped_steps == ["left"]
        assert report.skipped_steps == ["right", "merge"]
        # The stopped step's partial spend is still accounted per step.
        assert report.step_reports["left"].cost > 0.0
        assert report.step_reports["left"].cost == pytest.approx(report.total_cost)
        # The stop happened between unit tasks, not after blowing the limit.
        assert engine.spent_dollars <= 0.0009 + 1e-3

    def test_sequential_siblings_do_not_share_a_lease_window(self):
        """Regression: leases used to snapshot at wave build, so an earlier
        sibling's spending counted against every later step's allocation and
        an affordable pipeline stopped early at concurrency 1."""
        probe = _flavor_engine()
        one_branch = probe.sort(
            SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
        ).cost
        pipeline = PipelineSpec(
            steps=[
                PipelineStep(
                    "left", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "right", task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
                ),
            ]
        )
        engine = _flavor_engine(budget=Budget(limit=2.4 * one_branch))
        report = engine.run_pipeline(pipeline, max_concurrency=1)
        assert not report.stopped_early
        assert report.completed_steps == ["left", "right"]

    def test_pipeline_budget_dollars_caps_an_unlimited_session(self):
        """A PipelineSpec-level cap binds even with no session limit."""
        pipeline = PipelineSpec(
            budget_dollars=0.0005,
            steps=[
                PipelineStep(
                    "left", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "right",
                    task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="pairwise"),
                    depends_on=("left",),
                ),
            ],
        )
        engine = _flavor_engine()  # unlimited session budget
        report = engine.run_pipeline(pipeline)
        assert report.stopped_early
        assert engine.spent_dollars < 0.002  # stopped near the cap, not at the full cost
        # The dispatched step was apportioned a share of the pipeline cap.
        assert report.step_reports["left"].allocation is not None
        assert report.step_reports["left"].allocation <= 0.0005

    def test_concurrent_siblings_have_independent_leases(self):
        """Regression: leases used to watch the shared spend counter, so two
        concurrent branches each stopped once their *combined* spend hit one
        allocation, stranding half the budget at max_concurrency > 1."""
        probe = _flavor_engine()
        one_branch = probe.sort(
            SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
        ).cost
        pipeline = PipelineSpec(
            steps=[
                PipelineStep(
                    "left", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "right", task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
                ),
            ]
        )
        engine = _flavor_engine(budget=Budget(limit=2.4 * one_branch))
        report = engine.run_pipeline(pipeline, max_concurrency=2)
        assert not report.stopped_early
        assert sorted(report.completed_steps) == ["left", "right"]

    def test_stopped_branches_release_their_share(self):
        """Regression: a stopped step's unreachable dependents used to keep
        reserving budget, diluting the live branches' leases."""
        pipeline = PipelineSpec(
            steps=[
                PipelineStep(
                    "starved", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "dependent",
                    task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating"),
                    depends_on=("starved",),
                ),
                PipelineStep(
                    "live", task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
                ),
            ]
        )
        probe = _flavor_engine()
        branch_cost = probe.sort(
            SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
        ).cost
        engine = _flavor_engine(budget=Budget(limit=1.3 * branch_cost))
        real = engine.quote_pipeline(pipeline)
        skewed = PipelineQuote(
            pipeline=real.pipeline,
            steps={
                # "starved" gets a near-zero share and stops immediately;
                # "dependent" is then unreachable and must not hold onto its
                # share — "live" (which costs ~branch_cost) needs the rest.
                "starved": replace(
                    real.steps["starved"], dollars=real.steps["starved"].dollars / 10000
                ),
                "dependent": real.steps["dependent"],
                "live": real.steps["live"],
            },
            unquoted=real.unquoted,
        )
        report = engine.run_pipeline(pipeline, quote=skewed, max_concurrency=1)
        assert report.step_reports["starved"].status == "stopped"
        assert report.step_reports["dependent"].status == "skipped"
        assert report.step_reports["live"].status == "completed"

    def test_run_only_steps_get_no_budget_share(self):
        """A callable step can't charge a lease, so it must not hoard one."""
        pipeline = PipelineSpec(
            steps=[
                PipelineStep("noop", run=lambda s, i: None),
                PipelineStep(
                    "sort", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
            ]
        )
        engine = _flavor_engine(budget=Budget(limit=0.01))
        report = engine.run_pipeline(pipeline)
        assert not report.stopped_early
        assert report.step_reports["noop"].allocation is None
        # The whole remaining budget goes to the only step that can spend it.
        assert report.step_reports["sort"].allocation == pytest.approx(0.01)

    def test_lease_stop_is_contained_to_its_branch(self):
        """A step that exhausts its lease blocks only its dependents;
        independent branches keep running on their own allocations."""
        pipeline = PipelineSpec(
            steps=[
                PipelineStep(
                    "starved", task=SortSpec(items=LEFT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "healthy", task=SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
                ),
                PipelineStep(
                    "tail", run=lambda s, i: len(i["starved"].order), depends_on=("starved",)
                ),
            ]
        )
        probe = _flavor_engine()
        branch_cost = probe.sort(
            SortSpec(items=RIGHT, criterion=CHOCOLATEY, strategy="rating")
        ).cost
        engine = _flavor_engine(budget=Budget(limit=2.2 * branch_cost))
        real = engine.quote_pipeline(pipeline)
        # Doctor the quote so "starved" is apportioned almost nothing while
        # the shared budget comfortably covers "healthy".
        skewed = PipelineQuote(
            pipeline=real.pipeline,
            steps={
                "starved": replace(
                    real.steps["starved"], dollars=real.steps["starved"].dollars / 1000
                ),
                "healthy": real.steps["healthy"],
            },
            unquoted=real.unquoted,
        )
        report = engine.run_pipeline(pipeline, quote=skewed, max_concurrency=1)
        assert report.stopped_early
        assert report.step_reports["starved"].status == "stopped"
        assert report.step_reports["healthy"].status == "completed"
        assert report.step_reports["tail"].status == "skipped"
        assert "healthy" in report.results

    def test_budget_dollars_caps_callable_steps_too(self):
        """Regression: raw session calls inside a run= step used to charge
        the session budget directly and silently bypass the workflow cap."""

        def chatty(session_, inputs):
            for flavor in LEFT:
                session_.complete(rating_prompt(flavor, CHOCOLATEY))
            return True

        workflow = Workflow("capped", budget_dollars=1e-6).add_step("chatty", chatty)
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=21))
        report = workflow.execute(session)
        assert session.budget.unlimited  # only the workflow carried a cap
        assert report.stopped_early
        assert report.step_reports["chatty"].status == "stopped"
        # The step was cut off after its first over-cap call, not after all 8.
        assert report.total_calls < len(LEFT)

    def test_exhausted_budget_stops_before_the_first_wave(self):
        budget = Budget(limit=0.001)
        budget.spent = 0.001
        engine = _flavor_engine(budget=budget)
        report = engine.run_pipeline(_two_branch_pipeline())
        assert report.stopped_early
        assert report.stop_reason.startswith("budget exhausted before")
        assert report.completed_steps == []
        assert report.total_calls == 0

    def test_failure_in_a_step_raises_after_finalizing(self):
        def boom(session_, inputs):
            raise RuntimeError("step exploded")

        workflow = Workflow("fails").add_step("boom", boom, depends_on=())
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=1))
        with pytest.raises(RuntimeError, match="step exploded"):
            workflow.execute(session)


class TestGoldenEntityResolutionPipeline:
    """Golden end-to-end regression: block → resolve → transitivity repair.

    Pinned against the seeded simulator: the blocked candidate-pair count,
    the LLM call count, the reported cost, and the final clusters (including
    one transitivity flip).  Any scheduler, operator, or simulator change
    that shifts these shows up here first.
    """

    SEED = 5
    EXPECTED_CANDIDATE_PAIRS = 39
    EXPECTED_CALLS = 39
    EXPECTED_COST = 0.0097845
    EXPECTED_FLIPPED = 1
    EXPECTED_CLUSTERS = [
        [0, 1],
        [2, 3],
        [4, 5, 6],
        [7],
        [8],
        [9, 11],
        [10],
        [12, 13],
        [14, 15, 16],
        [17, 19],
        [18],
    ]

    def _pipeline(self, texts):
        def block_step(session, inputs):
            blocking = EmbeddingBlocker(k=3).block(texts)
            return [(texts[i], texts[j]) for i, j in blocking.candidate_pairs]

        def resolve_spec(inputs):
            return ResolveSpec(pairs=inputs["block"], strategy="pairwise")

        def repair_step(session, inputs):
            graph = MatchGraph()
            for text in texts:
                graph.add_node(text)
            for judgment in inputs["resolve"].judgments:
                if judgment.is_duplicate:
                    graph.add_match(judgment.left, judgment.right)
                else:
                    graph.add_non_match(judgment.left, judgment.right)
            index_of = {text: index for index, text in enumerate(texts)}
            clusters = sorted(
                sorted(index_of[text] for text in component)
                for component in graph.components()
            )
            return {"clusters": clusters, "flipped": len(graph.conflicts())}

        return PipelineSpec(
            name="entity-resolution",
            steps=[
                PipelineStep("block", run=block_step, description="embedding blocking"),
                PipelineStep(
                    "resolve",
                    task=resolve_spec,
                    depends_on=("block",),
                    description="LLM duplicate checks",
                ),
                PipelineStep(
                    "repair",
                    run=repair_step,
                    depends_on=("resolve",),
                    description="transitive-closure repair",
                ),
            ],
        )

    @pytest.mark.parametrize("concurrency", SCHEDULER_CONCURRENCIES)
    def test_golden_run(self, concurrency):
        corpus = generate_citation_corpus(
            n_entities=8, duplicates_per_entity=(2, 3), n_pairs=30, seed=self.SEED
        )
        texts = corpus.texts()
        engine = DeclarativeEngine(
            SimulatedLLM(corpus.oracle(), seed=self.SEED), default_model=MODEL
        )
        report = engine.run_pipeline(self._pipeline(texts), max_concurrency=concurrency)

        assert len(report.results["block"]) == self.EXPECTED_CANDIDATE_PAIRS
        assert report.step_reports["resolve"].calls == self.EXPECTED_CALLS
        assert report.total_calls == self.EXPECTED_CALLS
        assert report.total_cost == pytest.approx(self.EXPECTED_COST)
        assert report.step_reports["resolve"].cost == pytest.approx(self.EXPECTED_COST)
        assert report.results["repair"]["clusters"] == self.EXPECTED_CLUSTERS
        assert report.results["repair"]["flipped"] == self.EXPECTED_FLIPPED
        assert report.step_order == ["block", "resolve", "repair"]
