"""Tests for the asyncio-native execution path (`repro.core.executor`).

Batteries:

* **Parity** — :class:`AsyncBatchExecutor.run` is element-wise identical to
  :class:`BatchExecutor.run` at temperature 0, for native-async and
  sync-only (thread-bridged) clients alike, across batch sizes and
  concurrencies.
* **Semantics** — ordered results, budget pre-checks and the skip-with-error
  contract of ``map``, first-failure cancellation with deterministic
  propagation, duplicate-prompt dedup ahead of the cache.
* **Governor** — the shared admission point bounds async in-flight dispatch
  and is obeyed by the async sequential path.
* **Scheduler equivalence** — a DAG pipeline run with ``scheduler="async"``
  produces the same report as the thread scheduler.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core.budget import Budget
from repro.core.executor import (
    DEFAULT_POOL_SIZE,
    AsyncBatchExecutor,
    BatchExecutor,
    BatchRequest,
)
from repro.core.governor import ConcurrencyGovernor
from repro.data.words import random_words
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.llm.base import LLMResponse
from repro.llm.cache import CachedClient
from repro.llm.oracle import Oracle
from repro.llm.prompts import rating_prompt
from repro.llm.simulated import SimulatedLLM
from repro.tokenizer.cost import Usage

BATCH_SIZES = (1, 2, 7, 64)
CONCURRENCIES = (1, 4)
CRITERION = "alphabetical order"


def _simulated_client(seed: int = 3) -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key(CRITERION, lambda word: word.lower())
    return SimulatedLLM(oracle, seed=seed)


def _rating_prompts(count: int) -> list[str]:
    return [rating_prompt(word, CRITERION) for word in random_words(count, seed=5)]


class EchoClient:
    """Sync-only deterministic client: exercises the to_thread bridge."""

    default_model = "echo"

    def __init__(self, budget: Budget | None = None, charge: float = 0.0) -> None:
        self.budget = budget
        self.charge = charge
        self.calls = 0
        self._lock = threading.Lock()

    def complete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        with self._lock:
            self.calls += 1
        if self.budget is not None:
            self.budget.charge(self.charge)
        return LLMResponse(
            text=f"echo:{prompt}", model=model or self.default_model, usage=Usage(1, 1, 1)
        )


class AsyncEchoClient:
    """Native-async client that records its peak concurrent in-flight count."""

    def __init__(self, latency: float = 0.0) -> None:
        self.latency = latency
        self.calls = 0
        self.in_flight = 0
        self.peak_in_flight = 0

    async def acomplete(
        self,
        prompt: str,
        *,
        model: str | None = None,
        temperature: float = 0.0,
        max_tokens: int | None = None,
    ) -> LLMResponse:
        self.calls += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        try:
            if self.latency:
                await asyncio.sleep(self.latency)
            return LLMResponse(
                text=f"echo:{prompt}", model=model or "async-echo", usage=Usage(1, 1, 1)
            )
        finally:
            self.in_flight -= 1


class TestAsyncExecutorBasics:
    def test_results_in_input_order(self):
        client = AsyncEchoClient(latency=0.001)
        executor = AsyncBatchExecutor(client, max_concurrency=8)
        prompts = [f"prompt-{index}" for index in range(20)]
        responses = asyncio.run(executor.run(prompts))
        assert [response.text for response in responses] == [f"echo:{p}" for p in prompts]
        assert client.calls == 20

    def test_empty_batch(self):
        executor = AsyncBatchExecutor(AsyncEchoClient())
        assert asyncio.run(executor.run([])) == []

    def test_plain_strings_promoted_to_requests(self):
        executor = AsyncBatchExecutor(EchoClient())
        responses = asyncio.run(
            executor.run(["a", BatchRequest(prompt="b", model="other")])
        )
        assert responses[0].model == "echo"
        assert responses[1].model == "other"

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncBatchExecutor(AsyncEchoClient(), max_concurrency=0)

    def test_concurrency_is_actually_bounded(self):
        client = AsyncEchoClient(latency=0.002)
        executor = AsyncBatchExecutor(client, max_concurrency=3)
        asyncio.run(executor.run([f"p{i}" for i in range(24)]))
        assert client.peak_in_flight <= 3

    def test_sync_only_client_is_bridged(self):
        client = EchoClient()
        executor = AsyncBatchExecutor(client, max_concurrency=4)
        responses = asyncio.run(executor.run([f"p{i}" for i in range(9)]))
        assert client.calls == 9
        assert [r.text for r in responses] == [f"echo:p{i}" for i in range(9)]


class TestSyncAsyncParity:
    """async run == sync run, element-wise, at temperature 0."""

    @pytest.mark.parametrize("size", BATCH_SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_simulated_client(self, size, concurrency):
        prompts = _rating_prompts(size)
        sync_responses = BatchExecutor(
            _simulated_client(), max_concurrency=concurrency
        ).run(prompts)
        async_executor = AsyncBatchExecutor(
            _simulated_client(), max_concurrency=concurrency
        )
        async_responses = asyncio.run(async_executor.run(prompts))
        assert [r.text for r in async_responses] == [r.text for r in sync_responses]
        assert [r.usage for r in async_responses] == [r.usage for r in sync_responses]

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_cached_client(self, concurrency):
        prompts = _rating_prompts(7) * 2  # repeats exercise the dedup + cache
        sync_client = CachedClient(_simulated_client())
        async_client = CachedClient(_simulated_client())
        sync_responses = BatchExecutor(sync_client, max_concurrency=concurrency).run(prompts)
        async_responses = asyncio.run(
            AsyncBatchExecutor(async_client, max_concurrency=concurrency).run(prompts)
        )
        assert [r.text for r in async_responses] == [r.text for r in sync_responses]
        assert async_client.cache.stats.misses == sync_client.cache.stats.misses


class TestAsyncBudget:
    def test_exhausted_budget_stops_before_any_dispatch(self):
        budget = Budget(limit=1.0)
        budget.charge(1.0)
        client = AsyncEchoClient()
        executor = AsyncBatchExecutor(client, max_concurrency=4, budget=budget)
        with pytest.raises(BudgetExceededError):
            asyncio.run(executor.run([f"p{i}" for i in range(10)]))
        assert client.calls == 0

    def test_budget_stops_sequential_batch_midway(self):
        budget = Budget(limit=1.0)
        client = EchoClient(budget=budget, charge=0.4)
        executor = AsyncBatchExecutor(client, max_concurrency=1, budget=budget)
        with pytest.raises(BudgetExceededError):
            asyncio.run(executor.run([f"p{i}" for i in range(10)]))
        # 0.4 + 0.4 fit, the third charge exceeds, the rest never dispatch —
        # exactly like the sync sequential path.
        assert client.calls == 3

    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_map_budget_skips_carry_the_error(self, concurrency):
        budget = Budget(limit=1.0)
        budget.spent = 1.0
        executor = AsyncBatchExecutor(
            AsyncEchoClient(), max_concurrency=concurrency, budget=budget
        )
        outcomes = asyncio.run(executor.map([lambda: 1, lambda: 2, lambda: 3]))
        assert all(outcome.skipped for outcome in outcomes)
        assert all(isinstance(outcome.error, BudgetExceededError) for outcome in outcomes)


class TestAsyncMap:
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_values_in_input_order(self, concurrency):
        executor = AsyncBatchExecutor(AsyncEchoClient(), max_concurrency=concurrency)
        outcomes = asyncio.run(
            executor.map([(lambda index=index: index * 2) for index in range(17)])
        )
        assert all(outcome.ok for outcome in outcomes)
        assert [o.value for o in outcomes] == [index * 2 for index in range(17)]

    def test_coroutine_tasks_run_natively(self):
        async def double(value: int) -> int:
            await asyncio.sleep(0)
            return value * 2

        executor = AsyncBatchExecutor(AsyncEchoClient(), max_concurrency=4)
        outcomes = asyncio.run(
            executor.map([(lambda v=v: double(v)) for v in range(5)])
        )
        assert [o.value for o in outcomes] == [0, 2, 4, 6, 8]

    def test_failure_is_reported_not_raised(self):
        def boom():
            raise ValueError("boom")

        executor = AsyncBatchExecutor(AsyncEchoClient(), max_concurrency=1)
        outcomes = asyncio.run(executor.map([lambda: 1, boom, lambda: 3]))
        assert outcomes[0].ok and outcomes[0].value == 1
        assert isinstance(outcomes[1].error, ValueError)
        assert outcomes[2].skipped

    def test_empty(self):
        executor = AsyncBatchExecutor(AsyncEchoClient())
        assert asyncio.run(executor.map([])) == []


class TestAsyncFirstFailure:
    def test_deterministic_propagation_of_earliest_error(self):
        class FailingClient(AsyncEchoClient):
            async def acomplete(self, prompt, **kwargs):
                if prompt.startswith("boom"):
                    raise ValueError(prompt)
                return await super().acomplete(prompt, **kwargs)

        executor = AsyncBatchExecutor(FailingClient(), max_concurrency=4)
        with pytest.raises(ValueError, match="boom-1"):
            asyncio.run(executor.run(["ok-0", "boom-1", "boom-2", "ok-3"]))

    def test_queued_tasks_are_not_dispatched_after_a_failure(self):
        class FailFastClient(AsyncEchoClient):
            async def acomplete(self, prompt, **kwargs):
                if prompt == "boom":
                    raise ValueError("boom")
                return await super().acomplete(prompt, **kwargs)

        client = FailFastClient(latency=0.001)
        executor = AsyncBatchExecutor(client, max_concurrency=2)
        with pytest.raises(ValueError):
            asyncio.run(executor.run(["boom"] + [f"queued-{i}" for i in range(40)]))
        # The queued tail was skipped once the failure surfaced; only tasks
        # already admitted by the semaphore ran.
        assert client.calls < 10


class TestAsyncDuplicateHandling:
    def test_duplicates_served_from_one_inner_call_through_cache(self):
        inner = EchoClient()
        executor = AsyncBatchExecutor(CachedClient(inner), max_concurrency=4)
        responses = asyncio.run(executor.run(["same"] * 8))
        assert inner.calls == 1
        assert [r.text for r in responses] == ["echo:same"] * 8
        assert all(r.metadata.get("cache_hit") is True for r in responses[1:])

    def test_nonzero_temperature_duplicates_stay_independent(self):
        client = EchoClient()
        executor = AsyncBatchExecutor(CachedClient(client), max_concurrency=4)
        asyncio.run(executor.run([BatchRequest(prompt="same", temperature=0.7)] * 6))
        assert client.calls == 6


class TestAsyncGovernor:
    def test_governor_slots_bound_async_in_flight(self):
        governor = ConcurrencyGovernor(max_in_flight=2)
        client = AsyncEchoClient(latency=0.002)
        executor = AsyncBatchExecutor(client, max_concurrency=16, governor=governor)
        asyncio.run(executor.run([f"p{i}" for i in range(12)]))
        assert client.peak_in_flight <= 2
        assert governor.stats.admitted == 12
        assert governor.in_flight == 0

    def test_shared_governor_counts_both_paths(self):
        governor = ConcurrencyGovernor()
        sync_executor = BatchExecutor(EchoClient(), governor=governor)
        async_executor = AsyncBatchExecutor(AsyncEchoClient(), governor=governor)
        sync_executor.run(["a", "b"])
        asyncio.run(async_executor.run(["c", "d"]))
        assert governor.stats.admitted == 4


class TestAsyncSchedulerEquivalence:
    """scheduler="async" produces the same pipeline report as threads."""

    @staticmethod
    def _engine():
        from repro.core.engine import DeclarativeEngine
        from repro.data.flavors import flavor_oracle

        return DeclarativeEngine(
            SimulatedLLM(flavor_oracle(), seed=21),
            default_model="sim-gpt-3.5-turbo",
            max_concurrency=4,
        )

    @staticmethod
    def _pipeline():
        from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
        from repro.data.flavors import CHOCOLATEY, FLAVORS

        def merge(session, inputs):
            return list(inputs["left"].order) + list(inputs["right"].order)

        return PipelineSpec(
            name="two-branch",
            steps=[
                PipelineStep(
                    "left",
                    task=SortSpec(
                        items=list(FLAVORS[:8]), criterion=CHOCOLATEY, strategy="rating"
                    ),
                ),
                PipelineStep(
                    "right",
                    task=SortSpec(
                        items=list(FLAVORS[8:16]), criterion=CHOCOLATEY, strategy="rating"
                    ),
                ),
                PipelineStep("merge", run=merge, depends_on=("left", "right")),
            ],
        )

    def test_async_report_matches_thread_report(self):
        thread_report = self._engine().run_pipeline(self._pipeline())
        async_report = self._engine().run_pipeline(self._pipeline(), scheduler="async")
        assert async_report.results["merge"] == thread_report.results["merge"]
        assert async_report.results["left"].order == thread_report.results["left"].order
        assert async_report.waves == thread_report.waves
        assert {
            name: report.status for name, report in async_report.step_reports.items()
        } == {name: report.status for name, report in thread_report.step_reports.items()}
        assert async_report.total_calls == thread_report.total_calls
        assert async_report.total_cost == pytest.approx(thread_report.total_cost)

    def test_unknown_scheduler_rejected(self):
        from repro.exceptions import SpecError

        with pytest.raises(SpecError):
            self._engine().run_pipeline(self._pipeline(), scheduler="fibers")

    def test_execute_async_inside_a_running_loop(self):
        from repro.core.session import PromptSession
        from repro.core.workflow import Workflow

        session = PromptSession(EchoClient(), max_concurrency=4)
        workflow = Workflow(name="inline")
        workflow.add_step("one", lambda s, inputs: s.complete("hello").text)
        workflow.add_step(
            "two", lambda s, inputs: inputs["one"] + "!", depends_on=("one",)
        )
        report = asyncio.run(workflow.execute_async(session))
        assert report.results["two"] == "echo:hello!"
        assert report.step_order == ["one", "two"]


class TestDefaultPoolSizeConstant:
    def test_benchmark_reference_is_pinned(self):
        # The async throughput benchmark compares against a thread pool of
        # exactly this documented size; a silent change would invalidate it.
        assert DEFAULT_POOL_SIZE == 8
