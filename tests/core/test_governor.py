"""Tests for the rate-limited admission layer (`repro.core.governor`).

Covers the token bucket's virtual-scheduling pacing, the governor's RPM/TPM
caps (demonstrated wall-clock-free with an injected clock and sleep), the
in-flight slot semaphore shared by sync and async dispatch, the adaptive
backoff driven by :class:`~repro.exceptions.RateLimitError` (including
``retry_after`` hints), and the executor integration that feeds it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.executor import BatchExecutor
from repro.core.governor import (
    ConcurrencyGovernor,
    ModelRate,
    TokenBucket,
    estimated_prompt_tokens,
    is_rate_limit,
)
from repro.exceptions import ConfigurationError, RateLimitError, ResponseParseError
from repro.llm.base import LLMResponse
from repro.tokenizer.cost import Usage


class FakeClock:
    """A controllable monotonic clock whose sleep advances virtual time."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


class TestTokenBucket:
    def test_burst_admits_first_call_immediately(self):
        clock = FakeClock()
        bucket = TokenBucket(60, clock=clock)  # 1/s, burst defaults to 1
        assert bucket.reserve() == 0.0

    def test_reservations_pace_linearly_at_the_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(60, burst=1, clock=clock)
        # Four instantaneous reservations: the first rides the burst, the
        # k-th over-budget one owes k refill intervals (1s at 60/min).
        waits = [bucket.reserve() for _ in range(4)]
        assert waits == [0.0, 1.0, 2.0, 3.0]

    def test_refill_restores_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(60, burst=1, clock=clock)
        bucket.reserve()
        clock.now += 2.0  # refill past full; capacity stays capped at burst
        assert bucket.reserve() == 0.0
        assert bucket.reserve() == pytest.approx(1.0)

    def test_token_weighted_reservations(self):
        clock = FakeClock()
        bucket = TokenBucket(600, burst=100, clock=clock)  # 10 tokens/s
        assert bucket.reserve(100) == 0.0  # burst covers it
        assert bucket.reserve(50) == pytest.approx(5.0)  # 50 tokens / 10 per s

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0)
        with pytest.raises(ConfigurationError):
            TokenBucket(60, burst=0)
        with pytest.raises(ConfigurationError):
            TokenBucket(60).reserve(-1)


class TestEstimatedPromptTokens:
    def test_chars_over_four_with_floor(self):
        assert estimated_prompt_tokens("") == 1
        assert estimated_prompt_tokens("abcd" * 25) == 25


class TestRpmCap:
    """The governor demonstrably caps dispatch at the configured RPM."""

    def test_dispatch_rate_never_exceeds_rpm(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(
            rpm=120, burst=1, clock=clock, sleep=clock.sleep
        )
        stamps = []
        for _ in range(13):
            with governor.admit("m"):
                stamps.append(clock.now)
        # 13 admissions at 120 RPM (0.5s spacing), the first free via the
        # burst: the run takes 12 intervals of virtual time, i.e. dispatch
        # proceeded at exactly — never above — the configured rate.
        assert stamps[-1] == pytest.approx(12 * 0.5)
        spacings = [b - a for a, b in zip(stamps, stamps[1:])]
        assert all(spacing >= 0.5 - 1e-9 for spacing in spacings)
        assert governor.stats.admitted == 13
        assert governor.stats.throttled == 12

    def test_tpm_quota_paces_by_estimated_tokens(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(
            tpm=600, burst=10, clock=clock, sleep=clock.sleep
        )
        with governor.admit("m", estimated_tokens=10):
            pass
        assert clock.now == 0.0  # burst covered it
        with governor.admit("m", estimated_tokens=20):
            pass
        # 20 tokens over an empty bucket at 10 tokens/s → a 2s wait.
        assert clock.now == pytest.approx(2.0)

    def test_per_model_overrides_have_independent_buckets(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(
            rpm=60,
            model_rates={"fast": ModelRate(rpm=6000)},
            burst=1,
            clock=clock,
            sleep=clock.sleep,
        )
        with governor.admit("slow"):
            pass
        with governor.admit("slow"):
            pass
        slow_elapsed = clock.now
        assert slow_elapsed == pytest.approx(1.0)  # 60 RPM → 1s spacing
        for _ in range(10):
            with governor.admit("fast"):
                pass
        # 6000 RPM → 10ms spacing; the slow model's bucket is untouched.
        assert clock.now - slow_elapsed == pytest.approx(9 * 0.01)

    def test_no_quotas_means_no_waiting(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(clock=clock, sleep=clock.sleep)
        for _ in range(100):
            with governor.admit("m", estimated_tokens=1000):
                pass
        assert clock.now == 0.0
        assert governor.stats.throttled == 0


class TestBackoff:
    def test_exponential_schedule_without_hint(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(
            backoff_initial=0.5, backoff_multiplier=2.0, backoff_max=3.0, clock=clock
        )
        delays = [governor.record_failure(RateLimitError()) for _ in range(4)]
        assert delays == [0.5, 1.0, 2.0, 3.0]  # capped at backoff_max

    def test_retry_after_hint_dominates_when_larger(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(backoff_initial=0.5, clock=clock)
        delay = governor.record_failure(RateLimitError(retry_after=7.5))
        assert delay == 7.5
        assert governor.cooldown_remaining == pytest.approx(7.5)

    def test_success_resets_the_streak(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(backoff_initial=0.5, clock=clock)
        governor.record_failure(RateLimitError())
        governor.record_failure(RateLimitError())
        governor.record_success()
        assert governor.record_failure(RateLimitError()) == 0.5

    def test_cooldown_delays_the_next_admission(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(
            backoff_initial=2.0, clock=clock, sleep=clock.sleep
        )
        governor.record_failure(RateLimitError())
        with governor.admit("m"):
            pass
        assert clock.now == pytest.approx(2.0)
        assert governor.stats.rate_limit_events == 1

    def test_invalid_backoff_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ConcurrencyGovernor(backoff_initial=0.0)
        with pytest.raises(ConfigurationError):
            ConcurrencyGovernor(backoff_multiplier=0.5)


class TestInFlightSlots:
    def test_slot_cap_bounds_simultaneous_dispatch(self):
        governor = ConcurrencyGovernor(max_in_flight=2)
        peak = 0
        peak_lock = threading.Lock()
        barrier = threading.Barrier(8)

        def dispatch() -> None:
            barrier.wait()
            with governor.admit("m"):
                with peak_lock:
                    nonlocal peak
                    peak = max(peak, governor.in_flight)
                time.sleep(0.005)

        threads = [threading.Thread(target=dispatch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert peak <= 2
        assert governor.stats.max_in_flight <= 2
        assert governor.in_flight == 0  # every slot was released

    def test_invalid_slot_count_rejected(self):
        with pytest.raises(ConfigurationError):
            ConcurrencyGovernor(max_in_flight=0)


class RateLimitedClient:
    """Fails with RateLimitError for the first ``failures`` calls."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        with self._lock:
            self.calls += 1
            calls = self.calls
        if calls <= self.failures:
            raise RateLimitError(retry_after=0.0)
        return LLMResponse(text=f"ok:{prompt}", model=model or "m", usage=Usage(1, 1, 1))


class TestExecutorIntegration:
    def test_rate_limit_failures_feed_the_backoff(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(
            backoff_initial=1.0, clock=clock, sleep=clock.sleep
        )
        client = RateLimitedClient(failures=2)
        executor = BatchExecutor(client, governor=governor)
        with pytest.raises(RateLimitError):
            executor.run(["a"])
        with pytest.raises(RateLimitError):
            executor.run(["a"])
        assert governor.stats.rate_limit_events == 2
        # The accumulated cooldown is what the third dispatch waits out.
        before = clock.now
        executor.run(["a"])
        assert clock.now > before
        assert governor.cooldown_remaining == 0.0 or governor.stats.admitted == 3

    def test_non_rate_limit_failures_do_not_back_off(self):
        clock = FakeClock()
        governor = ConcurrencyGovernor(clock=clock, sleep=clock.sleep)

        class ParseFailClient:
            def complete(self, prompt, **kwargs):
                raise ResponseParseError("malformed")

        executor = BatchExecutor(ParseFailClient(), governor=governor)
        with pytest.raises(ResponseParseError):
            executor.run(["a"])
        assert governor.stats.rate_limit_events == 0
        assert governor.cooldown_remaining == 0.0

    def test_sequential_batch_respects_the_governor(self):
        # A homogeneous batch normally takes the native complete_batch fast
        # path; with a governor attached it must fall back to per-call
        # admission so the quota actually binds.
        clock = FakeClock()
        governor = ConcurrencyGovernor(rpm=60, burst=1, clock=clock, sleep=clock.sleep)
        client = RateLimitedClient(failures=0)
        executor = BatchExecutor(client, governor=governor)
        executor.run(["a", "b", "c"])
        assert client.calls == 3
        assert clock.now == pytest.approx(2.0)  # 3 calls at 1/s, first free


class TestIsRateLimit:
    def test_taxonomy_discrimination(self):
        assert is_rate_limit(RateLimitError())
        assert not is_rate_limit(ValueError("429"))
        assert not is_rate_limit(ResponseParseError("nope"))
