"""Tests for the prompt session and workflow execution."""

from __future__ import annotations

import pytest

from repro.core.budget import Budget
from repro.core.session import PromptSession
from repro.core.workflow import Workflow
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.exceptions import BudgetExceededError, SpecError
from repro.llm.prompts import rating_prompt
from repro.llm.simulated import SimulatedLLM


@pytest.fixture()
def session() -> PromptSession:
    return PromptSession(SimulatedLLM(flavor_oracle(), seed=81))


class TestPromptSession:
    def test_calls_are_tracked_and_charged(self, session):
        session.complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        assert session.tracker.calls == 1
        assert session.spent_dollars > 0.0

    def test_cache_deduplicates_identical_calls(self, session):
        prompt = rating_prompt(FLAVORS[1], CHOCOLATEY)
        session.complete(prompt)
        before = session.tracker.usage.total_tokens
        session.complete(prompt)
        # The cached call contributes no new tokens.
        assert session.tracker.usage.total_tokens == before
        assert session.cache.stats.hits == 1

    def test_budget_enforced(self):
        budget = Budget(limit=1e-7)
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=82), budget=budget)
        with pytest.raises(BudgetExceededError):
            for flavor in FLAVORS:
                session.complete(rating_prompt(flavor, CHOCOLATEY))

    def test_batch_charges_every_response_before_raising(self):
        """Regression: a limit breach mid-batch used to stop the charging
        loop, leaving the budget understating what was actually spent."""
        budget = Budget(limit=5e-5)
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=82), budget=budget)
        prompts = [rating_prompt(flavor, CHOCOLATEY) for flavor in FLAVORS]
        with pytest.raises(BudgetExceededError):
            session.complete_batch(prompts)
        # Every tracked dollar reached the budget, overshoot included.
        assert budget.spent == pytest.approx(session.tracker.cost())

    def test_client_view_routes_through_session(self, session):
        client = session.client()
        client.complete(rating_prompt(FLAVORS[2], CHOCOLATEY))
        assert session.tracker.calls == 1

    def test_default_model_from_config(self, session):
        response = session.complete(rating_prompt(FLAVORS[3], CHOCOLATEY))
        assert response.model == session.config.chat_model

    def test_reset_usage_keeps_budget(self, session):
        session.complete(rating_prompt(FLAVORS[4], CHOCOLATEY))
        spent = session.spent_dollars
        session.reset_usage()
        assert session.tracker.calls == 0
        assert session.spent_dollars == spent


class TestWorkflow:
    def test_steps_run_in_order_and_share_results(self, session):
        workflow = Workflow("demo")
        workflow.add_step("first", lambda session_, results: 21)
        workflow.add_step("second", lambda session_, results: results["first"] * 2)
        report = workflow.execute(session)
        assert report.step_order == ["first", "second"]
        assert report.results["second"] == 42

    def test_llm_usage_is_aggregated(self, session):
        workflow = Workflow("llm-demo")
        workflow.add_step(
            "rate",
            lambda session_, results: session_.complete(
                rating_prompt(FLAVORS[0], CHOCOLATEY)
            ).text,
        )
        report = workflow.execute(session)
        assert report.total_prompt_tokens > 0
        assert report.total_cost > 0.0

    def test_duplicate_step_names_rejected(self):
        workflow = Workflow()
        workflow.add_step("a", lambda session_, results: 1)
        with pytest.raises(SpecError):
            workflow.add_step("a", lambda session_, results: 2)

    def test_empty_workflow_rejected(self, session):
        with pytest.raises(SpecError):
            Workflow().execute(session)

    def test_legacy_add_step_builds_a_degenerate_chain(self):
        workflow = Workflow("chain")
        workflow.add_step("first", lambda session_, results: 1)
        workflow.add_step("second", lambda session_, results: 2)
        workflow.add_step("third", lambda session_, results: 3)
        assert [step.depends_on for step in workflow.steps] == [(), ("first",), ("second",)]
        assert workflow.waves() == [["first"], ["second"], ["third"]]

    def test_second_workflow_on_same_session_reports_only_its_own_usage(self, session):
        """Regression: totals used to be session-lifetime, double-counting reuse."""

        def rate(flavor):
            def step(session_, results):
                return session_.complete(rating_prompt(flavor, CHOCOLATEY)).text

            return step

        report_one = Workflow("first").add_step("rate", rate(FLAVORS[0])).execute(session)
        report_two = Workflow("second").add_step("rate", rate(FLAVORS[1])).execute(session)

        assert report_one.total_prompt_tokens > 0
        assert report_two.total_prompt_tokens > 0
        lifetime = session.tracker.usage
        # Each report carries its own delta; before the fix the second report
        # repeated the first run's usage on top of its own.
        assert report_two.total_prompt_tokens < lifetime.prompt_tokens
        assert (
            report_one.total_prompt_tokens + report_two.total_prompt_tokens
            == lifetime.prompt_tokens
        )
        assert report_one.total_calls + report_two.total_calls == lifetime.calls
        assert report_one.total_cost + report_two.total_cost == pytest.approx(
            session.tracker.cost()
        )
