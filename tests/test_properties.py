"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.ranking_repair import alignment_insert_position, count_inversions
from repro.consistency.transitivity import MatchGraph
from repro.core.budget import Budget
from repro.llm.base import LLMResponse, sequential_complete_batch
from repro.llm.cache import CachedClient
from repro.llm.prompts import build_structured_prompt, parse_structured_prompt
from repro.metrics.classification import BinaryConfusion, confusion_from_pairs
from repro.metrics.ranking import kendall_tau_b, ranking_alignment
from repro.proxies.similarity import jaccard_similarity, levenshtein_distance
from repro.quality.validation import wilson_interval
from repro.quality.voting import majority_vote
from repro.tokenizer.cost import PriceTable, Usage
from repro.tokenizer.simple import SimpleTokenizer

# Text strategies: printable-ish words without newlines or the prompt markers.
_word = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)
_words = st.lists(_word, min_size=2, max_size=15, unique=True)


class TestTokenizerProperties:
    @given(st.text(max_size=300))
    @settings(max_examples=60)
    def test_token_count_non_negative_and_bounded(self, text):
        count = SimpleTokenizer().count(text)
        assert count >= 0
        assert count <= max(1, len(text))

    @given(st.text(max_size=150), st.text(max_size=150))
    @settings(max_examples=60)
    def test_concatenation_is_superadditive_up_to_boundary(self, first, second):
        tokenizer = SimpleTokenizer()
        combined = tokenizer.count(first + " " + second)
        assert combined >= max(tokenizer.count(first), tokenizer.count(second))


class TestUsageAndPricingProperties:
    @given(
        st.integers(0, 10**6),
        st.integers(0, 10**6),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_cost_non_negative_and_monotone(self, prompt, completion, p_price, c_price):
        table = PriceTable(p_price, c_price)
        usage = Usage(prompt, completion, 1)
        bigger = Usage(prompt + 10, completion + 10, 1)
        assert table.cost(usage) >= 0.0
        assert table.cost(bigger) >= table.cost(usage)

    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 1000)), max_size=20))
    @settings(max_examples=40)
    def test_usage_addition_is_commutative(self, pairs):
        total_forward = Usage()
        total_backward = Usage()
        usages = [Usage(p, c, 1) for p, c in pairs]
        for usage in usages:
            total_forward.add(usage)
        for usage in reversed(usages):
            total_backward.add(usage)
        assert total_forward.prompt_tokens == total_backward.prompt_tokens
        assert total_forward.completion_tokens == total_backward.completion_tokens


class TestStructuredPromptProperties:
    @given(_words, st.dictionaries(st.sampled_from(["criterion", "scale", "predicate"]), _word, max_size=3))
    @settings(max_examples=60)
    def test_round_trip_items_and_fields(self, items, fields):
        prompt = build_structured_prompt("sort_list", fields=fields, items=items, instructions="Go.")
        parsed = parse_structured_prompt(prompt)
        assert parsed.items == items
        for key, value in fields.items():
            assert parsed.fields[key] == value


class TestRankingMetricProperties:
    @given(_words)
    @settings(max_examples=60)
    def test_identity_permutation_scores_one(self, items):
        assert kendall_tau_b(items, items) == pytest.approx(1.0)
        assert ranking_alignment(items, items) == 1.0

    @given(_words, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_tau_is_symmetric_under_swap_of_arguments(self, items, rng):
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert kendall_tau_b(shuffled, items) == kendall_tau_b(items, shuffled)

    @given(_words, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_tau_bounded(self, items, rng):
        shuffled = list(items)
        rng.shuffle(shuffled)
        value = kendall_tau_b(shuffled, items)
        assert -1.0 <= value <= 1.0


class TestClassificationProperties:
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_confusion_counts_sum_to_total(self, pairs):
        predictions = [p for p, _ in pairs]
        labels = [l for _, l in pairs]
        confusion = confusion_from_pairs(predictions, labels)
        assert confusion.total == len(pairs)
        assert 0.0 <= confusion.precision <= 1.0
        assert 0.0 <= confusion.recall <= 1.0
        assert 0.0 <= confusion.f1 <= 1.0

    @given(st.integers(0, 200), st.integers(1, 200))
    @settings(max_examples=60)
    def test_wilson_interval_contains_proportion(self, successes, trials):
        successes = min(successes, trials)
        lower, upper = wilson_interval(successes, trials)
        assert 0.0 <= lower <= upper <= 1.0
        assert lower <= successes / trials + 1e-9
        assert upper >= successes / trials - 1e-9


class TestConsistencyProperties:
    @given(st.lists(st.tuples(_word, _word), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_transitive_closure_is_reflexively_consistent(self, edges):
        graph = MatchGraph()
        for left, right in edges:
            graph.add_match(left, right)
        closure = graph.transitive_matches()
        # Every direct edge between distinct nodes appears in the closure.
        for left, right in edges:
            if left != right:
                assert frozenset((left, right)) in closure

    @given(_words, st.data())
    @settings(max_examples=60)
    def test_alignment_insert_position_in_bounds(self, items, data):
        comparisons = {item: data.draw(st.booleans()) for item in items}
        position = alignment_insert_position(items, comparisons)
        assert 0 <= position <= len(items)

    @given(_words, st.data())
    @settings(max_examples=40)
    def test_count_inversions_bounded_by_number_of_comparisons(self, items, data):
        comparisons = {}
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                comparisons[(items[i], items[j])] = data.draw(st.booleans())
        assert 0 <= count_inversions(items, comparisons) <= len(comparisons)


class TestProxyProperties:
    @given(_word, _word)
    @settings(max_examples=60)
    def test_similarity_bounds_and_symmetry(self, first, second):
        value = jaccard_similarity(first, second)
        assert 0.0 <= value <= 1.0
        assert value == jaccard_similarity(second, first)

    @given(_word, _word)
    @settings(max_examples=60)
    def test_levenshtein_triangle_with_identity(self, first, second):
        assert levenshtein_distance(first, first) == 0
        assert levenshtein_distance(first, second) == levenshtein_distance(second, first)
        assert levenshtein_distance(first, second) <= max(len(first), len(second))


class TestVotingAndBudgetProperties:
    @given(st.lists(st.sampled_from(["yes", "no", "maybe"]), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_majority_winner_has_maximal_count(self, votes):
        result = majority_vote(votes)
        assert result.counts[result.winner] == max(result.counts.values())
        assert 0.0 < result.support <= 1.0

    @given(st.lists(st.floats(0, 0.1, allow_nan=False), max_size=20))
    @settings(max_examples=60)
    def test_budget_spent_equals_sum_of_charges(self, charges):
        budget = Budget(limit=None)
        for charge in charges:
            budget.charge(charge)
        assert budget.spent == sum(charges) or abs(budget.spent - sum(charges)) < 1e-9


class _CountingEchoClient:
    """Deterministic echo client that counts how many calls actually go out."""

    default_model = "echo"

    def __init__(self) -> None:
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        self.calls += 1
        return LLMResponse(
            text=f"echo:{prompt}", model=model or self.default_model, usage=Usage(1, 1, 1)
        )


class TestCachedBatchProperties:
    """Properties of CachedClient.complete_batch on random prompt lists."""

    @given(st.lists(_word, min_size=1, max_size=12), st.data())
    @settings(max_examples=60)
    def test_same_responses_and_strictly_fewer_inner_calls(self, prompts, data):
        # Force at least one duplicate so "strictly fewer" is well-defined.
        prompts = prompts + [data.draw(st.sampled_from(prompts))]
        uncached = _CountingEchoClient()
        inner = _CountingEchoClient()
        cached = CachedClient(inner)
        plain_responses = sequential_complete_batch(uncached, prompts)
        cached_responses = cached.complete_batch(prompts)
        assert [r.text for r in cached_responses] == [r.text for r in plain_responses]
        assert inner.calls < uncached.calls
        assert uncached.calls == len(prompts)

    @given(st.lists(_word, min_size=1, max_size=12), st.data())
    @settings(max_examples=60)
    def test_duplicates_within_one_batch_share_a_single_inner_call(self, prompts, data):
        prompts = prompts + [data.draw(st.sampled_from(prompts))]
        inner = _CountingEchoClient()
        CachedClient(inner).complete_batch(prompts)
        assert inner.calls == len(set(prompts))

    @given(st.lists(_word, min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_batch_equals_sequential_loop_through_the_cache(self, prompts):
        batch_client = CachedClient(_CountingEchoClient())
        loop_client = CachedClient(_CountingEchoClient())
        batch = batch_client.complete_batch(prompts)
        loop = sequential_complete_batch(loop_client, prompts)
        assert [r.text for r in batch] == [r.text for r in loop]
        assert [r.usage for r in batch] == [r.usage for r in loop]
        assert [r.metadata.get("cache_hit") for r in batch] == [
            r.metadata.get("cache_hit") for r in loop
        ]
        assert batch_client.cache.stats.hits == loop_client.cache.stats.hits
        assert batch_client.cache.stats.misses == loop_client.cache.stats.misses
