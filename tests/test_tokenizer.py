"""Tests for the tokenizer and the pricing / usage accounting layer."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, UnknownModelError
from repro.tokenizer.cost import CostModel, CostSummary, PriceTable, Usage
from repro.tokenizer.simple import SimpleTokenizer, count_tokens


class TestSimpleTokenizer:
    def test_empty_string_has_zero_tokens(self):
        assert SimpleTokenizer().count("") == 0

    def test_single_short_word_is_one_token(self):
        assert SimpleTokenizer().count("cat") == 1

    def test_long_word_is_chunked(self):
        # 12 characters at 4 characters per chunk -> 3 tokens.
        assert SimpleTokenizer().count("abcdefghijkl") == 3

    def test_punctuation_counts_as_tokens(self):
        tokens = SimpleTokenizer().tokenize("hello, world!")
        assert "," in tokens
        assert "!" in tokens

    def test_count_is_monotone_in_text_length(self):
        tokenizer = SimpleTokenizer()
        short = tokenizer.count("alpha beta")
        long = tokenizer.count("alpha beta gamma delta epsilon")
        assert long > short

    def test_count_is_deterministic(self):
        tokenizer = SimpleTokenizer()
        text = "the quick brown fox jumps over the lazy dog"
        assert tokenizer.count(text) == tokenizer.count(text)

    def test_memoization_returns_same_result(self):
        tokenizer = SimpleTokenizer()
        first = tokenizer.count("memoized text")
        second = tokenizer.count("memoized text")
        assert first == second

    def test_module_level_count_tokens(self):
        # Three words of at most four characters each -> exactly three tokens.
        assert count_tokens("one two six") == 3

    def test_unicode_text_tokenizes(self):
        assert SimpleTokenizer().count("café résumé") >= 2


class TestUsage:
    def test_defaults_are_zero(self):
        usage = Usage()
        assert usage.prompt_tokens == 0
        assert usage.completion_tokens == 0
        assert usage.calls == 0
        assert usage.total_tokens == 0

    def test_add_accumulates_in_place(self):
        usage = Usage(10, 5, 1)
        usage.add(Usage(3, 2, 1))
        assert usage.prompt_tokens == 13
        assert usage.completion_tokens == 7
        assert usage.calls == 2

    def test_addition_operator_returns_new_usage(self):
        first = Usage(1, 2, 1)
        second = Usage(3, 4, 1)
        combined = first + second
        assert combined.prompt_tokens == 4
        assert combined.completion_tokens == 6
        assert first.prompt_tokens == 1  # unchanged

    def test_copy_is_independent(self):
        usage = Usage(5, 5, 1)
        duplicate = usage.copy()
        duplicate.add(Usage(1, 1, 1))
        assert usage.prompt_tokens == 5


class TestPriceTable:
    def test_cost_is_linear_in_tokens(self):
        table = PriceTable(prompt_price_per_million=1.0, completion_price_per_million=2.0)
        assert table.cost(Usage(1_000_000, 0, 1)) == pytest.approx(1.0)
        assert table.cost(Usage(0, 1_000_000, 1)) == pytest.approx(2.0)
        assert table.cost(Usage(500_000, 500_000, 1)) == pytest.approx(1.5)

    def test_negative_prices_rejected(self):
        with pytest.raises(ConfigurationError):
            PriceTable(-1.0, 0.0)


class TestCostModel:
    def test_register_and_cost(self):
        model = CostModel()
        model.register("m", PriceTable(2.0, 4.0))
        assert model.has_model("m")
        assert model.cost("m", Usage(1_000_000, 1_000_000, 2)) == pytest.approx(6.0)

    def test_unknown_model_raises(self):
        with pytest.raises(UnknownModelError):
            CostModel().cost("missing", Usage(1, 1, 1))

    def test_models_sorted(self):
        model = CostModel({"b": PriceTable(1, 1), "a": PriceTable(1, 1)})
        assert model.models() == ["a", "b"]


class TestCostSummary:
    def test_totals_aggregate_models(self):
        summary = CostSummary(
            by_model={"a": Usage(10, 5, 1), "b": Usage(20, 10, 2)},
            dollars_by_model={"a": 0.5, "b": 1.5},
        )
        assert summary.total_usage.prompt_tokens == 30
        assert summary.total_usage.calls == 3
        assert summary.total_dollars == pytest.approx(2.0)
