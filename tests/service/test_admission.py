"""Admission control: rejections are decided before any LLM spend.

The declarative framing makes pipelines *priceable*: the controller quotes
the whole submission from the cost planner and compares it against the
tenant's remaining budget and queue depth.  The load-bearing assertion in
every rejection test is ``client.calls == 0`` — counted below every cache,
so a rejection provably costs the tenant nothing.
"""

from __future__ import annotations

import pytest

from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
from repro.exceptions import ConfigurationError
from repro.service import AdmissionController, TenantConfig, TenantRegistry

from _service_helpers import CRITERION, MODEL, WORDS, demo_pipeline, make_client


def make_tenant(client, **overrides):
    config = TenantConfig(
        tenant_id=overrides.pop("tenant_id", "acme"),
        api_key=overrides.pop("api_key", "key-acme"),
        default_model=MODEL,
        **overrides,
    )
    registry = TenantRegistry(client, [config])
    return registry.get(config.tenant_id)


class TestAdmission:
    def test_affordable_pipeline_is_admitted_with_quote(self):
        client = make_client()
        tenant = make_tenant(client, budget_dollars=10.0)
        decision, quote = AdmissionController().review(
            tenant, demo_pipeline(), active_jobs=0
        )
        assert decision.admitted
        assert decision.status_code == 202
        assert decision.quote["total_dollars"] == pytest.approx(quote.total_dollars)
        assert quote.total_dollars > 0
        assert client.calls == 0  # quoting is planner work, not LLM work

    def test_over_budget_rejection_spends_nothing(self):
        client = make_client()
        tenant = make_tenant(client, budget_dollars=0.000001)
        decision, quote = AdmissionController().review(
            tenant, demo_pipeline(), active_jobs=0
        )
        assert not decision.admitted
        assert decision.status_code == 402
        assert "available" in decision.reason
        # The rejected caller still learns the full price...
        assert decision.quote["total_dollars"] == pytest.approx(quote.total_dollars)
        # ...and paid nothing to learn it.
        assert client.calls == 0

    def test_pipeline_budget_cap_tightens_an_unlimited_tenant(self):
        client = make_client()
        tenant = make_tenant(client)  # unlimited tenant budget
        decision, _ = AdmissionController().review(
            tenant, demo_pipeline(budget_dollars=0.0000001), active_jobs=0
        )
        assert not decision.admitted
        assert decision.status_code == 402
        assert client.calls == 0

    def test_queue_depth_rejection_comes_with_the_price(self):
        client = make_client()
        tenant = make_tenant(client, budget_dollars=10.0, max_queue_depth=2)
        decision, _ = AdmissionController().review(
            tenant, demo_pipeline(), active_jobs=2
        )
        assert not decision.admitted
        assert decision.status_code == 429
        assert "queue depth" in decision.reason
        assert decision.quote is not None
        assert client.calls == 0

    def test_spend_erodes_admission(self):
        client = make_client()
        tenant = make_tenant(client, budget_dollars=10.0)
        decision, quote = AdmissionController().review(
            tenant, demo_pipeline(), active_jobs=0
        )
        assert decision.admitted
        # Simulate the tenant having spent almost everything.
        tenant.session.budget.charge(10.0 - quote.total_dollars / 2)
        decision, _ = AdmissionController().review(
            tenant, demo_pipeline(), active_jobs=0
        )
        assert not decision.admitted
        assert decision.status_code == 402

    def test_precomputed_quote_is_reused(self):
        client = make_client()
        tenant = make_tenant(client, budget_dollars=10.0)
        quote = tenant.engine.quote_pipeline(demo_pipeline())
        decision, returned = AdmissionController().review(
            tenant, demo_pipeline(), active_jobs=0, quote=quote
        )
        assert decision.admitted
        assert returned is quote


class TestTenantConfigValidation:
    def test_rejects_blank_ids_and_keys(self):
        with pytest.raises(ConfigurationError):
            TenantConfig(tenant_id="", api_key="k")
        with pytest.raises(ConfigurationError):
            TenantConfig(tenant_id="t", api_key="")
        with pytest.raises(ConfigurationError):
            TenantConfig(tenant_id="t", api_key="k", max_queue_depth=0)
        with pytest.raises(ConfigurationError):
            TenantConfig(tenant_id="t", api_key="k", max_concurrency=0)

    def test_registry_rejects_duplicates(self):
        client = make_client()
        with pytest.raises(ConfigurationError, match="duplicate tenant id"):
            TenantRegistry(
                client,
                [
                    TenantConfig(tenant_id="t", api_key="k1"),
                    TenantConfig(tenant_id="t", api_key="k2"),
                ],
            )
        with pytest.raises(ConfigurationError, match="collides"):
            TenantRegistry(
                client,
                [
                    TenantConfig(tenant_id="t1", api_key="k"),
                    TenantConfig(tenant_id="t2", api_key="k"),
                ],
            )

    def test_governor_only_built_when_an_envelope_is_set(self):
        client = make_client()
        assert make_tenant(client).governor is None
        assert make_tenant(client, rpm=600).governor is not None
