"""Job lifecycle under shutdown: drain, kill, and checkpointed resume.

The crash-honesty contract: a killed service leaves every accepted job as a
durable ``stopped`` + ``resumable`` row, and the next process's
``recover()`` re-enqueues it — with the engine's content-addressed
checkpoints restoring already-finished steps for **zero** additional LLM
calls.  The kill test here cancels mid-pipeline (after the first step has
checkpointed, while the second is gated mid-flight) and then restarts
against the same store file.
"""

from __future__ import annotations

import asyncio
import threading

from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.llm.simulated import SimulatedLLM
from repro.service import ServiceApp, ServiceClient, TenantConfig, TenantRegistry
from repro.store import Store

from _service_helpers import MODEL, corpus_oracle, demo_pipeline, make_client

ACME_KEY = "key-acme"


class GatedClient:
    """Counts calls; blocks every call after ``release_after`` on a gate.

    This freezes a pipeline at an exact call boundary — here, between the
    filter step (checkpointed) and the sort step (mid-flight) — so the kill
    test is deterministic instead of racing a timer.
    """

    def __init__(self, inner: SimulatedLLM, release_after: int) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self.calls = 0
        self.release_after = release_after
        self.gate = threading.Event()

    def _tick(self) -> int:
        with self._lock:
            self.calls += 1
            return self.calls

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        if self._tick() > self.release_after:
            assert self.gate.wait(timeout=30), "gate never released"
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )

    def complete_batch(self, prompts, *, model=None, temperature=0.0, max_tokens=None):
        return [
            self.complete(p, model=model, temperature=temperature, max_tokens=max_tokens)
            for p in prompts
        ]


def tenant_configs():
    return [
        TenantConfig(
            tenant_id="acme",
            api_key=ACME_KEY,
            budget_dollars=10.0,
            default_model=MODEL,
        )
    ]


def pipeline_wire():
    from repro.core.spec_codec import pipeline_to_dict

    return pipeline_to_dict(demo_pipeline())


def direct_baseline():
    """One clean direct run: ground-truth results and per-step call counts."""
    engine = DeclarativeEngine(session=PromptSession(make_client()), default_model=MODEL)
    return engine.run_pipeline(demo_pipeline())


async def poll_to_terminal(client, job_id, *, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        record = (await client.get(f"/v1/jobs/{job_id}")).json()
        if record["status"] in ("succeeded", "failed", "stopped"):
            return record
        assert asyncio.get_running_loop().time() < deadline, "job never settled"
        await asyncio.sleep(0.01)


class TestGracefulDrain:
    def test_drain_finishes_inflight_work_and_refuses_new(self, tmp_path):
        with Store(tmp_path / "svc.db") as store:
            registry = TenantRegistry(make_client(), tenant_configs(), store=store)
            app = ServiceApp(registry)
            client = ServiceClient(app, api_key=ACME_KEY)

            async def scenario():
                submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
                job_id = submitted.json()["job_id"]
                # Drain immediately: the in-flight job must still finish.
                await app.shutdown(drain=True)
                record = (await client.get(f"/v1/jobs/{job_id}")).json()
                refused = await client.post("/v1/pipelines", json_body=pipeline_wire())
                return record, refused

            record, refused = asyncio.run(scenario())
            assert record["status"] == "succeeded"
            assert refused.status == 503
            # The drain persisted the terminal row.
            assert store.load_job(record["job_id"]).status == "succeeded"


class TestKillAndResume:
    def test_kill_midrun_resumes_from_checkpoints_without_doubled_calls(self, tmp_path):
        baseline = direct_baseline()
        filter_calls = baseline.step_reports["filter"].calls
        sort_calls = baseline.step_reports["sort"].calls
        assert filter_calls > 0 and sort_calls > 0

        # ---- process 1: run until filter is checkpointed, then kill -------
        gated = GatedClient(SimulatedLLM(corpus_oracle(), seed=11), filter_calls)
        store1 = Store(tmp_path / "svc.db")
        registry1 = TenantRegistry(gated, tenant_configs(), store=store1)
        app1 = ServiceApp(registry1)
        client1 = ServiceClient(app1, api_key=ACME_KEY)

        async def process_one():
            submitted = await client1.post("/v1/pipelines", json_body=pipeline_wire())
            job_id = submitted.json()["job_id"]
            deadline = asyncio.get_running_loop().time() + 30
            while True:
                record = (await client1.get(f"/v1/jobs/{job_id}")).json()
                if record["steps"].get("filter", {}).get("status") == "completed":
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            # The fast shutdown is the in-process stand-in for SIGKILL: it
            # cancels the job task, whose handler persists stopped+resumable.
            await app1.shutdown(drain=False)
            record = (await client1.get(f"/v1/jobs/{job_id}")).json()
            gated.gate.set()  # unblock the stranded sort workers
            return job_id, record

        job_id, killed = asyncio.run(process_one())
        store1.close()
        assert killed["status"] == "stopped"
        assert killed["resumable"] is True
        assert killed["error"] is not None
        assert killed["steps"]["filter"]["status"] == "completed"

        # ---- process 2: fresh everything but the store file ---------------
        client2 = make_client()
        store2 = Store(tmp_path / "svc.db")
        registry2 = TenantRegistry(client2, tenant_configs(), store=store2)
        app2 = ServiceApp(registry2)
        service2 = ServiceClient(app2, api_key=ACME_KEY)

        async def process_two():
            await service2.lifespan_startup()  # recover() re-enqueues the job
            record = await poll_to_terminal(service2, job_id)
            events = await service2.get(f"/v1/jobs/{job_id}/events")
            await service2.lifespan_shutdown()
            return record, events

        record, events = asyncio.run(process_two())
        assert record["status"] == "succeeded"
        assert record["job_id"] == job_id  # resumed under its original id

        # The filter step came back from its checkpoint, not from the LLM.
        # (The sort may be restored too: the kill's stranded worker thread
        # finishes its step during executor shutdown and checkpoints it —
        # crash recovery then pays nothing at all for it.)
        assert record["steps"]["filter"]["restored"] is True
        assert record["steps"]["sort"]["status"] == "completed"
        assert record["report"]["step_reports"]["filter"]["restored"] is True
        # No doubled work: the restart re-pays at most the interrupted sort,
        # and the combined spend of kill + resume never exceeds one clean
        # uninterrupted run.
        assert client2.calls <= sort_calls
        assert gated.calls + client2.calls <= filter_calls + sort_calls

        # No doubled steps: each step settled exactly once in the stream.
        step_events = [e for e in events.sse_events() if e["event"] == "step"]
        assert sorted(e["step"]["name"] for e in step_events) == ["filter", "sort"]

        # And the resumed results match a clean uninterrupted run.
        from repro.core.workflow import WorkflowReport

        resumed = WorkflowReport.from_dict(record["report"])
        assert resumed.results["sort"].order == baseline.results["sort"].order
        assert resumed.results["filter"].kept == baseline.results["filter"].kept

        row = store2.load_job(job_id)
        assert row.status == "succeeded"
        store2.close()

    def test_recover_skips_budget_stops_and_terminal_rows(self, tmp_path):
        from repro.store import JobRecord

        with Store(tmp_path / "svc.db") as store:
            from repro.core.spec_codec import pipeline_to_json

            wire = pipeline_to_json(demo_pipeline())
            store.save_job(
                JobRecord(job_id="budget", tenant="acme", status="stopped",
                          resumable=False, pipeline_json=wire)
            )
            store.save_job(
                JobRecord(job_id="done", tenant="acme", status="succeeded",
                          pipeline_json=wire)
            )
            store.save_job(
                JobRecord(job_id="orphan", tenant="ghost", status="running",
                          pipeline_json=wire)
            )
            store.save_job(
                JobRecord(job_id="garbled", tenant="acme", status="running",
                          pipeline_json="{not json")
            )
            registry = TenantRegistry(make_client(), tenant_configs(), store=store)
            app = ServiceApp(registry)

            async def scenario():
                resumed = app.startup()
                await app.shutdown()
                return resumed

            resumed = asyncio.run(scenario())
            assert resumed == []
            assert store.load_job("budget").status == "stopped"
            assert store.load_job("done").status == "succeeded"
            orphan = store.load_job("orphan")
            assert orphan.status == "failed"
            assert "no longer configured" in orphan.error
            garbled = store.load_job("garbled")
            assert garbled.status == "failed"
            assert "unreadable" in garbled.error

    def test_queued_and_running_rows_are_recovered(self, tmp_path):
        from repro.core.spec_codec import pipeline_to_json
        from repro.store import JobRecord

        with Store(tmp_path / "svc.db") as store:
            wire = pipeline_to_json(demo_pipeline())
            store.save_job(
                JobRecord(job_id="hardkill", tenant="acme", status="running",
                          pipeline_json=wire)
            )
            registry = TenantRegistry(make_client(), tenant_configs(), store=store)
            app = ServiceApp(registry)
            client = ServiceClient(app, api_key=ACME_KEY)

            async def scenario():
                resumed = app.startup()
                record = await poll_to_terminal(client, "hardkill")
                await app.shutdown()
                return resumed, record

            resumed, record = asyncio.run(scenario())
            assert resumed == ["hardkill"]
            assert record["status"] == "succeeded"
