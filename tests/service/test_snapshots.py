"""Concurrency-safety of the stats snapshots the usage endpoint reads.

The service's ``GET /v1/tenants/{id}/usage`` handler reads governor stats
and trace summaries while the tenant's pipelines are mid-flight on worker
threads.  These tests hammer each snapshot with concurrent writers and
assert two things: no exceptions (no torn state), and every snapshot is
*internally consistent* — a copy taken under the lock, not a live view that
mutates while the handler serialises it.
"""

from __future__ import annotations

import threading

from repro.core.governor import ConcurrencyGovernor, GovernorStats
from repro.trace.tracer import Tracer


class TestGovernorSnapshot:
    def test_snapshot_is_a_detached_copy(self):
        governor = ConcurrencyGovernor(rpm=600)
        with governor.admit(model="m", estimated_tokens=10):
            pass
        snap = governor.stats_snapshot()
        assert isinstance(snap, GovernorStats)
        assert snap is not governor.stats
        admitted = snap.admitted
        with governor.admit(model="m", estimated_tokens=10):
            pass
        # Later admissions must not leak into the already-taken snapshot.
        assert snap.admitted == admitted
        assert governor.stats_snapshot().admitted == admitted + 1

    def test_to_dict_is_json_shaped(self):
        governor = ConcurrencyGovernor(rpm=600)
        with governor.admit(model="m", estimated_tokens=5):
            pass
        data = governor.stats_snapshot().to_dict()
        assert data["admitted"] == 1
        assert set(data) >= {"admitted", "throttled", "wait_seconds", "rate_limit_events"}

    def test_snapshot_under_reader_writer_hammer(self):
        governor = ConcurrencyGovernor(rpm=1_000_000, max_in_flight=8)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                while not stop.is_set():
                    with governor.admit(model="m", estimated_tokens=3):
                        pass
            except BaseException as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def reader():
            try:
                last = -1
                while not stop.is_set():
                    snap = governor.stats_snapshot()
                    # admitted is monotone; a torn read could go backwards.
                    assert snap.admitted >= last
                    last = snap.admitted
                    snap.to_dict()
            except BaseException as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors


class TestTracerSummary:
    def test_summary_matches_module_level_aggregation(self):
        from repro.trace.tracer import summarize_records

        tracer = Tracer()
        for index in range(10):
            tracer.record(
                model="m",
                cost=0.1,
                duration_ms=2.0,
                cache_hit=index % 2 == 0,
                error="Boom" if index == 3 else None,
            )
        summary = tracer.summarize_records()
        expected = summarize_records(tracer.records())
        for key, value in expected.items():
            assert summary[key] == value
        assert summary["dropped"] == 0

    def test_summary_counts_ring_drops(self):
        tracer = Tracer(capacity=4)
        for _ in range(10):
            tracer.record(model="m", cost=0.0)
        summary = tracer.summarize_records()
        assert summary["calls"] == 4
        assert summary["dropped"] == 6

    def test_summary_under_reader_writer_hammer(self):
        tracer = Tracer(capacity=256)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            try:
                while not stop.is_set():
                    record = tracer.record(model="m", cost=0.5, cache_hit=True)
                    tracer.annotate(record.call_id, attempt=1)
            except BaseException as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    summary = tracer.summarize_records()
                    # Internal consistency: every recorded call here is a
                    # cache hit costing exactly $0.5, so any torn aggregate
                    # breaks these identities.
                    assert summary["cache_hits"] == summary["calls"]
                    assert summary["cost"] == summary["calls"] * 0.5
                    if summary["calls"]:
                        assert summary["cache_hit_rate"] == 1.0
            except BaseException as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)] + [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
