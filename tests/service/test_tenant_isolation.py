"""Two tenants hammering one app concurrently: nothing bleeds across.

Each tenant owns a full execution universe — budget, response cache
namespace, tracer, governor — over one shared process, one shared LLM
client, and one shared SQLite file.  These tests run both tenants' jobs
at the same time and assert the isolation invariants afterwards.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import ServiceApp, ServiceClient, TenantConfig, TenantRegistry
from repro.store import Store

from _service_helpers import MODEL, demo_pipeline, make_client

ACME_KEY = "key-acme"
BETA_KEY = "key-beta"


def build_app(tmp_path, **overrides):
    client = make_client()
    store = Store(tmp_path / "svc.db")
    registry = TenantRegistry(
        client,
        [
            TenantConfig(
                tenant_id="acme",
                api_key=ACME_KEY,
                budget_dollars=10.0,
                default_model=MODEL,
                **overrides,
            ),
            TenantConfig(
                tenant_id="beta",
                api_key=BETA_KEY,
                budget_dollars=10.0,
                default_model=MODEL,
                **overrides,
            ),
        ],
        store=store,
    )
    return ServiceApp(registry), client, store


def pipeline_wire():
    from repro.core.spec_codec import pipeline_to_dict

    return pipeline_to_dict(demo_pipeline())


async def run_jobs(client, count):
    """Run ``count`` identical pipelines back to back, each to settlement.

    Sequential within the tenant (so its second job deterministically
    restores from its own checkpoints); tenants run these loops against
    each other concurrently.
    """
    records = []
    for _ in range(count):
        submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
        assert submitted.status == 202
        job_id = submitted.json()["job_id"]
        deadline = asyncio.get_running_loop().time() + 30
        while True:
            response = await client.get(f"/v1/jobs/{job_id}")
            record = response.json()
            if record["status"] in ("succeeded", "failed", "stopped"):
                records.append(record)
                break
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.01)
    return records


class TestTenantIsolation:
    def test_concurrent_tenants_share_nothing_observable(self, tmp_path):
        app, _, store = build_app(tmp_path)
        acme = ServiceClient(app, api_key=ACME_KEY)
        beta = ServiceClient(app, api_key=BETA_KEY)

        async def scenario():
            acme_records, beta_records = await asyncio.gather(
                run_jobs(acme, 2), run_jobs(beta, 2)
            )
            acme_usage = (await acme.get("/v1/tenants/acme/usage")).json()
            beta_usage = (await beta.get("/v1/tenants/beta/usage")).json()
            await app.shutdown()
            return acme_records, beta_records, acme_usage, beta_usage

        acme_records, beta_records, acme_usage, beta_usage = asyncio.run(scenario())

        for record in acme_records + beta_records:
            assert record["status"] == "succeeded"

        # Both tenants ran the identical pipeline: were caches or checkpoints
        # shared, the tenant arriving second would ride the first one's
        # entries and trace almost nothing.  Isolation means symmetric call
        # counts (the exact dollar spend wobbles with the shared simulator's
        # sampled response lengths, so the count is the deterministic signal).
        assert acme_usage["budget"]["spent"] > 0
        assert beta_usage["budget"]["spent"] > 0
        assert acme_usage["traces"]["calls"] == beta_usage["traces"]["calls"] > 0

        # Each tenant's *second* job restored from its own namespaced
        # checkpoints — reuse happens within a tenant, never across.
        for records in (acme_records, beta_records):
            assert all(
                step["restored"] for step in records[1]["steps"].values()
            )
            assert not any(
                step["restored"] for step in records[0]["steps"].values()
            )
        # The shared jobs table still partitions cleanly by tenant.
        acme_rows = store.list_jobs(tenant="acme")
        beta_rows = store.list_jobs(tenant="beta")
        assert {r.job_id for r in acme_rows} == {r["job_id"] for r in acme_records}
        assert {r.job_id for r in beta_rows} == {r["job_id"] for r in beta_records}
        store.close()

    def test_one_tenants_exhaustion_does_not_throttle_the_other(self, tmp_path):
        app, _, store = build_app(tmp_path)
        acme = ServiceClient(app, api_key=ACME_KEY)
        beta = ServiceClient(app, api_key=BETA_KEY)

        async def scenario():
            # Burn acme's budget to (almost) nothing.
            app.registry.get("acme").session.budget.charge(9.9999999)
            acme_response = await acme.post(
                "/v1/pipelines", json_body=pipeline_wire()
            )
            beta_records = await run_jobs(beta, 1)
            await app.shutdown()
            return acme_response, beta_records

        acme_response, beta_records = asyncio.run(scenario())
        store.close()
        assert acme_response.status == 402
        assert beta_records[0]["status"] == "succeeded"

    def test_per_tenant_queue_depth_is_independent(self, tmp_path):
        app, _, store = build_app(tmp_path, max_queue_depth=1)
        acme = ServiceClient(app, api_key=ACME_KEY)
        beta = ServiceClient(app, api_key=BETA_KEY)

        async def scenario():
            first = await acme.post("/v1/pipelines", json_body=pipeline_wire())
            # acme's queue is now full; beta's is not.
            acme_second = await acme.post("/v1/pipelines", json_body=pipeline_wire())
            beta_first = await beta.post("/v1/pipelines", json_body=pipeline_wire())
            await app.shutdown()
            return first, acme_second, beta_first

        first, acme_second, beta_first = asyncio.run(scenario())
        store.close()
        assert first.status == 202
        assert acme_second.status == 429
        assert beta_first.status == 202
