"""Shared helpers for the service-layer suite.

Everything is deterministic (seeded simulator, temperature 0) and fully
in-process: the ASGI app is driven by
:class:`repro.service.testing.ServiceClient`, and async scenarios run under
plain ``asyncio.run`` (no pytest-asyncio dependency).
"""

from __future__ import annotations

import threading

from repro.core.spec import FilterSpec, PipelineSpec, PipelineStep, SortSpec
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM

MODEL = "sim-gpt-3.5-turbo"
WORDS = ["apple", "banana", "cherry", "damson", "elder", "fig"]
PREDICATE = "starts early in the alphabet"
CRITERION = "alphabetical order"


class CountingClient:
    """Counts every completion issued to the wrapped client (thread-safe).

    The admission tests' core claim — "a rejected submission costs zero LLM
    calls" — is asserted against this counter, *below* every cache.
    """

    def __init__(self, inner: SimulatedLLM) -> None:
        self._inner = inner
        self._lock = threading.Lock()
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        with self._lock:
            self.calls += 1
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )

    def complete_batch(self, prompts, *, model=None, temperature=0.0, max_tokens=None):
        with self._lock:
            self.calls += len(prompts)
        return self._inner.complete_batch(
            prompts, model=model, temperature=temperature, max_tokens=max_tokens
        )


def corpus_oracle() -> Oracle:
    oracle = Oracle()
    oracle.register_key(CRITERION, key=lambda item: item)
    oracle.register_predicate(PREDICATE, lambda item: item[0] in "abc")
    return oracle


def make_client(seed: int = 11) -> CountingClient:
    return CountingClient(SimulatedLLM(corpus_oracle(), seed=seed))


def demo_pipeline(*, budget_dollars: float | None = None) -> PipelineSpec:
    """A two-wave, fully concrete pipeline (JSON-serialisable end to end)."""
    return PipelineSpec(
        name="demo",
        steps=[
            PipelineStep(
                name="filter",
                task=FilterSpec(items=WORDS, predicate=PREDICATE, strategy="per_item"),
            ),
            PipelineStep(
                name="sort",
                task=SortSpec(items=WORDS, criterion=CRITERION, strategy="pairwise"),
                depends_on=("filter",),
            ),
        ],
        budget_dollars=budget_dollars,
        description="filter then sort the word corpus",
    )
