"""End-to-end service tests: the full HTTP lifecycle, fully in-process.

The anchor test submits a pipeline over the ASGI surface, polls the job to
completion, and asserts the results are *identical* to running the same
pipeline directly on an engine with an identically-seeded client — the
service is a transport, not a different execution semantics.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.workflow import WorkflowReport
from repro.service import ServiceApp, ServiceClient, TenantConfig, TenantRegistry
from repro.store import Store

from _service_helpers import MODEL, demo_pipeline, make_client

ACME_KEY = "key-acme"
BETA_KEY = "key-beta"


def build_app(tmp_path, *, budget=10.0, store=None, **tenant_overrides):
    client = make_client()
    store = store if store is not None else Store(tmp_path / "svc.db")
    registry = TenantRegistry(
        client,
        [
            TenantConfig(
                tenant_id="acme",
                api_key=ACME_KEY,
                budget_dollars=budget,
                default_model=MODEL,
                **tenant_overrides,
            ),
            TenantConfig(
                tenant_id="beta",
                api_key=BETA_KEY,
                budget_dollars=budget,
                default_model=MODEL,
            ),
        ],
        store=store,
    )
    return ServiceApp(registry), client, store


async def poll_to_terminal(client, job_id, *, timeout=30.0):
    """GET the job until it reaches a settled status."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        response = await client.get(f"/v1/jobs/{job_id}")
        assert response.status == 200
        record = response.json()
        if record["status"] in ("succeeded", "failed", "stopped"):
            return record
        assert asyncio.get_running_loop().time() < deadline, "job never settled"
        await asyncio.sleep(0.01)


def pipeline_wire(**kwargs):
    from repro.core.spec_codec import pipeline_to_dict

    return pipeline_to_dict(demo_pipeline(**kwargs))


class TestSubmitAndPoll:
    def test_e2e_results_match_a_direct_run(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
            assert submitted.status == 202
            body = submitted.json()
            assert body["status"] == "queued"
            assert body["quote"]["total_dollars"] > 0
            record = await poll_to_terminal(client, body["job_id"])
            await app.shutdown()
            return body, record

        body, record = asyncio.run(scenario())
        store.close()
        assert record["status"] == "succeeded"
        assert record["error"] is None
        # Streamed step reports settled alongside the final report.
        assert set(record["steps"]) == {"filter", "sort"}
        assert all(s["status"] == "completed" for s in record["steps"].values())

        # The ground truth: the same pipeline on a direct engine over an
        # identically-seeded client.
        direct_engine = DeclarativeEngine(
            session=PromptSession(make_client()), default_model=MODEL
        )
        direct = direct_engine.run_pipeline(demo_pipeline())
        served = WorkflowReport.from_dict(record["report"])
        assert served.results["sort"].order == direct.results["sort"].order
        assert served.results["filter"].kept == direct.results["filter"].kept
        assert served.step_order == direct.step_order
        assert served.total_calls == direct.total_calls

    def test_job_row_is_durable(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
            record = await poll_to_terminal(client, submitted.json()["job_id"])
            await app.shutdown()
            return record

        record = asyncio.run(scenario())
        store.close()
        with Store(tmp_path / "svc.db") as reopened:
            row = reopened.load_job(record["job_id"])
            assert row is not None
            assert row.status == "succeeded"
            assert row.tenant == "acme"
            assert row.report is not None

    def test_over_budget_submission_rejected_with_quote_and_zero_calls(self, tmp_path):
        app, counting, store = build_app(tmp_path, budget=0.000001)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            response = await client.post("/v1/pipelines", json_body=pipeline_wire())
            await app.shutdown()
            return response

        response = asyncio.run(scenario())
        store.close()
        assert response.status == 402
        body = response.json()
        assert body["error"]["code"] == "rejected"
        assert body["quote"]["total_dollars"] > 0  # the price is in the error body
        assert counting.calls == 0  # and not one LLM call was spent

    def test_queue_depth_rejection_is_429(self, tmp_path):
        app, _, store = build_app(tmp_path, max_queue_depth=1)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            first = await client.post("/v1/pipelines", json_body=pipeline_wire())
            assert first.status == 202
            second = await client.post("/v1/pipelines", json_body=pipeline_wire())
            await poll_to_terminal(client, first.json()["job_id"])
            await app.shutdown()
            return second

        second = asyncio.run(scenario())
        store.close()
        assert second.status == 429
        assert second.json()["error"]["code"] == "rejected"


class TestEventsStream:
    def test_stream_replays_lifecycle_and_steps(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
            job_id = submitted.json()["job_id"]
            record = await poll_to_terminal(client, job_id)
            events = await client.get(f"/v1/jobs/{job_id}/events")
            await app.shutdown()
            return record, events

        record, events = asyncio.run(scenario())
        store.close()
        assert record["status"] == "succeeded"
        assert events.status == 200
        assert events.headers["content-type"] == "text/event-stream"
        payloads = events.sse_events()
        assert payloads[-1]["event"] == "done"
        assert payloads[-1]["status"] == "succeeded"
        step_events = [p for p in payloads if p["event"] == "step"]
        names = {p["step"]["name"] for p in step_events}
        assert names == {"filter", "sort"}
        assert all(p["step"]["status"] == "completed" for p in step_events)

    def test_stream_for_unknown_job_is_404(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            response = await client.get("/v1/jobs/nope/events")
            await app.shutdown()
            return response

        response = asyncio.run(scenario())
        store.close()
        assert response.status == 404


class TestQuoteEndpoint:
    def test_quote_prices_without_running(self, tmp_path):
        app, counting, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            response = await client.post(
                "/v1/pipelines/quote", json_body=pipeline_wire()
            )
            await app.shutdown()
            return response

        response = asyncio.run(scenario())
        store.close()
        assert response.status == 200
        body = response.json()
        assert body["pipeline"] == "demo"
        assert body["quote"]["total_dollars"] > 0
        assert counting.calls == 0


class TestAuthAndTenancy:
    def test_missing_or_unknown_key_is_401(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app)

        async def scenario():
            anonymous = await client.get("/v1/jobs/x")
            wrong = await client.get("/v1/jobs/x", api_key="key-mallory")
            await app.shutdown()
            return anonymous, wrong

        anonymous, wrong = asyncio.run(scenario())
        store.close()
        assert anonymous.status == 401
        assert wrong.status == 401

    def test_foreign_jobs_are_indistinguishable_from_absent(self, tmp_path):
        app, _, store = build_app(tmp_path)
        acme = ServiceClient(app, api_key=ACME_KEY)
        beta = ServiceClient(app, api_key=BETA_KEY)

        async def scenario():
            submitted = await acme.post("/v1/pipelines", json_body=pipeline_wire())
            job_id = submitted.json()["job_id"]
            await poll_to_terminal(acme, job_id)
            as_beta = await beta.get(f"/v1/jobs/{job_id}")
            as_nobody = await beta.get("/v1/jobs/does-not-exist")
            await app.shutdown()
            return as_beta, as_nobody

        as_beta, as_nobody = asyncio.run(scenario())
        store.close()
        assert as_beta.status == 404
        # Byte-identical apart from the id: existence is not leaked.
        assert as_beta.json()["error"]["code"] == as_nobody.json()["error"]["code"]

    def test_usage_is_own_tenant_only(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
            await poll_to_terminal(client, submitted.json()["job_id"])
            own = await client.get("/v1/tenants/acme/usage")
            foreign = await client.get("/v1/tenants/beta/usage")
            await app.shutdown()
            return own, foreign

        own, foreign = asyncio.run(scenario())
        store.close()
        assert foreign.status == 403
        assert own.status == 200
        usage = own.json()
        assert usage["tenant"] == "acme"
        assert usage["budget"]["limit"] == 10.0
        assert usage["budget"]["spent"] > 0
        assert usage["budget"]["remaining"] == pytest.approx(
            10.0 - usage["budget"]["spent"]
        )
        assert usage["traces"]["calls"] > 0
        assert usage["jobs"]["active"] == 0


class TestBadRequests:
    @pytest.mark.parametrize(
        ("payload", "code"),
        [
            (None, "invalid_pipeline"),
            ({"not": "a pipeline"}, "invalid_pipeline"),
            ({"name": "x", "steps": []}, "invalid_pipeline"),
        ],
    )
    def test_invalid_bodies_are_400(self, tmp_path, payload, code):
        app, counting, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            response = await client.post("/v1/pipelines", json_body=payload)
            await app.shutdown()
            return response

        response = asyncio.run(scenario())
        store.close()
        assert response.status == 400
        assert response.json()["error"]["code"] == code
        assert counting.calls == 0

    def test_malformed_json_is_400(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            response = await client.request(
                "POST",
                "/v1/pipelines",
                headers={"content-type": "application/json"},
            )
            # An empty body decodes as null -> invalid pipeline; send raw junk
            # through a custom scope for the truly malformed case.
            scope_junk = await client.post("/v1/pipelines", json_body="{nope")
            await app.shutdown()
            return response, scope_junk

        response, junk = asyncio.run(scenario())
        store.close()
        assert response.status == 400
        assert junk.status == 400

    def test_unknown_route_is_404(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            response = await client.get("/v1/nope")
            await app.shutdown()
            return response

        response = asyncio.run(scenario())
        store.close()
        assert response.status == 404


class TestLifespan:
    def test_lifespan_startup_and_shutdown(self, tmp_path):
        app, _, store = build_app(tmp_path)
        client = ServiceClient(app, api_key=ACME_KEY)

        async def scenario():
            await client.lifespan_startup()
            submitted = await client.post("/v1/pipelines", json_body=pipeline_wire())
            record = await poll_to_terminal(client, submitted.json()["job_id"])
            await client.lifespan_shutdown()
            after = await client.post("/v1/pipelines", json_body=pipeline_wire())
            return record, after

        record, after = asyncio.run(scenario())
        store.close()
        assert record["status"] == "succeeded"
        assert after.status == 503  # draining after shutdown
