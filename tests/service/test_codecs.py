"""JSON round-trips for specs, pipelines, quotes, and reports.

The service's wire forms must be *faithful*: a pipeline that crosses HTTP,
lands in the job table, and is re-parsed by a resuming process has to be
semantically identical to the object the client built — and anything that
cannot round-trip (callables, factories, live objects) must be refused
loudly, never smuggled or silently dropped.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    ImputeSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TopKSpec,
)
from repro.core.spec_codec import (
    pipeline_from_dict,
    pipeline_from_json,
    pipeline_to_dict,
    pipeline_to_json,
    spec_from_dict,
    spec_to_dict,
    step_to_dict,
)
from repro.core.workflow import StepReport, WorkflowReport
from repro.data.products import generate_restaurant_dataset
from repro.exceptions import SpecError

from _service_helpers import CRITERION, MODEL, PREDICATE, WORDS, demo_pipeline, make_client


def roundtrip(spec):
    return spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))


class TestSpecCodec:
    @pytest.mark.parametrize(
        "spec",
        [
            SortSpec(items=WORDS, criterion=CRITERION, strategy="pairwise"),
            SortSpec(
                items=WORDS,
                criterion=CRITERION,
                strategy="auto",
                validation_order=["apple", "banana"],
                strategy_options={"k": 3},
            ),
            ResolveSpec(
                records=WORDS,
                pairs=[("apple", "banana"), ("cherry", "damson")],
                validation_labels={("apple", "banana"): False},
                neighbors_k=2,
            ),
            FilterSpec(
                items=WORDS,
                predicate=PREDICATE,
                validation_labels={"apple": True, "fig": False},
            ),
            FilterSpec(
                items=WORDS,
                predicates=[PREDICATE, "is a fruit"],
                expected_selectivities=[0.5, 0.9],
            ),
            CategorizeSpec(
                items=WORDS,
                categories=["early", "late"],
                validation_labels={"apple": "early"},
            ),
            TopKSpec(items=WORDS, criterion=CRITERION, k=3),
            JoinSpec(left=WORDS[:3], right=WORDS[3:]),
            ClusterSpec(items=WORDS),
        ],
    )
    def test_specs_roundtrip_exactly(self, spec):
        assert roundtrip(spec) == spec

    def test_impute_spec_roundtrips_with_dataset(self):
        data = generate_restaurant_dataset(12, seed=23)
        spec = ImputeSpec(data=data, n_examples=2, validation_size=3)
        restored = roundtrip(spec)
        assert restored.n_examples == 2
        assert restored.data.target_attribute == data.target_attribute
        assert restored.data.ground_truth == data.ground_truth
        assert [r.record_id for r in restored.data.queries.records] == [
            r.record_id for r in data.queries.records
        ]
        assert [r.attributes for r in restored.data.reference.records] == [
            r.attributes for r in data.reference.records
        ]

    def test_unknown_type_and_fields_are_refused(self):
        with pytest.raises(SpecError, match="unknown spec type"):
            spec_from_dict({"type": "EvalSpec", "version": 1, "fields": {}})
        payload = spec_to_dict(TopKSpec(items=WORDS, criterion=CRITERION, k=2))
        payload["fields"]["surprise"] = 1
        with pytest.raises(SpecError, match="unknown fields"):
            spec_from_dict(payload)

    def test_newer_versions_are_refused(self):
        payload = spec_to_dict(ClusterSpec(items=WORDS))
        payload["version"] = 99
        with pytest.raises(SpecError, match="newer"):
            spec_from_dict(payload)

    def test_non_json_strategy_options_are_refused(self):
        spec = SortSpec(
            items=WORDS, criterion=CRITERION, strategy_options={"hook": object()}
        )
        with pytest.raises(SpecError, match="not JSON-serialisable"):
            spec_to_dict(spec)


class TestPipelineCodec:
    def test_pipeline_roundtrips_through_json(self):
        pipeline = demo_pipeline(budget_dollars=2.5)
        restored = pipeline_from_json(pipeline_to_json(pipeline))
        assert restored.name == pipeline.name
        assert restored.budget_dollars == 2.5
        assert [s.name for s in restored.steps] == ["filter", "sort"]
        assert restored.steps[1].depends_on == ("filter",)
        assert restored.steps[0].task == pipeline.steps[0].task
        restored.validate()

    def test_callable_steps_refuse_to_encode(self):
        step = PipelineStep(name="hook", run=lambda session, inputs: 1)
        with pytest.raises(SpecError, match="run= callable"):
            step_to_dict(step)

    def test_factory_steps_refuse_to_encode(self):
        step = PipelineStep(
            name="built",
            task=lambda inputs: SortSpec(items=WORDS, criterion=CRITERION),
        )
        with pytest.raises(SpecError, match="factory"):
            step_to_dict(step)

    def test_malformed_json_is_a_spec_error(self):
        with pytest.raises(SpecError, match="malformed pipeline JSON"):
            pipeline_from_json("{nope")


class TestQuoteAndReportCodecs:
    def _engine(self):
        return DeclarativeEngine(
            session=PromptSession(make_client()), default_model=MODEL
        )

    def test_quote_roundtrips_with_totals(self):
        engine = self._engine()
        quote = engine.quote_pipeline(demo_pipeline())
        data = json.loads(json.dumps(quote.to_dict()))
        assert data["total_calls"] == quote.total_calls
        assert data["total_dollars"] == pytest.approx(quote.total_dollars)
        restored = type(quote).from_dict(data)
        assert restored.total_calls == quote.total_calls
        assert restored.total_dollars == pytest.approx(quote.total_dollars)
        assert set(restored.steps) == set(quote.steps)

    def test_step_report_roundtrip(self):
        report = StepReport(
            name="sort", status="completed", cost=0.25, calls=7, allocation=1.0,
            description="sorts", restored=True,
        )
        assert StepReport.from_dict(json.loads(json.dumps(report.to_dict()))) == report

    def test_workflow_report_roundtrips_results(self):
        engine = self._engine()
        report = engine.run_pipeline(demo_pipeline())
        data = json.loads(json.dumps(report.to_dict()))
        assert data["unserialized_results"] == []
        restored = WorkflowReport.from_dict(data)
        assert restored.step_order == report.step_order
        assert restored.total_calls == report.total_calls
        assert restored.results["sort"].order == report.results["sort"].order
        assert restored.results["filter"].kept == report.results["filter"].kept
        assert restored.step_reports["sort"].cost == pytest.approx(
            report.step_reports["sort"].cost
        )
        assert restored.quote is not None
