"""Durable job rows and store-level tenant namespacing.

The jobs table is the service's ledger: anything the admission controller
accepts must survive a process kill as a row an operator can read with
``sqlite3`` and a restart can re-enqueue.  The namespace view is the other
half of tenancy — two tenants sharing one SQLite file must never see each
other's cached responses, profiles, checkpoints, or traces.
"""

from __future__ import annotations

import pytest

from repro.exceptions import StoreError
from repro.store import JobRecord, Store, StoreNamespace, fingerprint_spec
from repro.store.jobs import validate_status
from repro.trace.tracer import Tracer

from _service_helpers import CRITERION, WORDS, demo_pipeline


@pytest.fixture()
def store(tmp_path):
    with Store(tmp_path / "svc.db") as s:
        yield s


class TestJobRows:
    def test_save_load_roundtrip(self, store):
        from repro.core.spec_codec import pipeline_to_json

        job = JobRecord(
            job_id="j1",
            tenant="acme",
            status="queued",
            pipeline_json=pipeline_to_json(demo_pipeline()),
            quote={"total_dollars": 0.5},
        )
        store.save_job(job)
        loaded = store.load_job("j1")
        assert loaded is not None
        assert loaded.tenant == "acme"
        assert loaded.status == "queued"
        assert loaded.quote == {"total_dollars": 0.5}
        assert loaded.pipeline_json == job.pipeline_json
        assert loaded.submitted_seq > 0
        assert not loaded.terminal

    def test_missing_job_is_none(self, store):
        assert store.load_job("nope") is None

    def test_upsert_preserves_submitted_seq_and_advances_updated_seq(self, store):
        job = JobRecord(job_id="j1", tenant="acme")
        store.save_job(job)
        first = store.load_job("j1")
        first.status = "running"
        store.save_job(first)
        first.status = "succeeded"
        first.report = {"total_cost": 0.25}
        first.steps = {"sort": {"status": "completed"}}
        store.save_job(first)
        final = store.load_job("j1")
        assert final.submitted_seq == first.submitted_seq
        assert final.updated_seq > final.submitted_seq
        assert final.status == "succeeded"
        assert final.terminal
        assert final.report == {"total_cost": 0.25}
        assert final.steps == {"sort": {"status": "completed"}}

    def test_list_jobs_filters_by_tenant_and_status(self, store):
        for job_id, tenant, status in [
            ("a1", "acme", "succeeded"),
            ("a2", "acme", "queued"),
            ("b1", "beta", "queued"),
        ]:
            store.save_job(JobRecord(job_id=job_id, tenant=tenant, status=status))
        assert [j.job_id for j in store.list_jobs()] == ["a1", "a2", "b1"]
        assert [j.job_id for j in store.list_jobs(tenant="acme")] == ["a1", "a2"]
        assert [j.job_id for j in store.list_jobs(status="queued")] == ["a2", "b1"]
        assert [j.job_id for j in store.list_jobs(tenant="acme", status="queued")] == ["a2"]
        assert store.job_count() == 3

    def test_rows_survive_reopen(self, store, tmp_path):
        store.save_job(JobRecord(job_id="j1", tenant="acme", status="stopped", resumable=True))
        with Store(tmp_path / "svc.db") as reopened:
            row = reopened.load_job("j1")
            assert row.status == "stopped"
            assert row.resumable

    def test_unknown_status_is_refused(self):
        with pytest.raises(ValueError, match="unknown job status"):
            validate_status("paused")


class TestStoreNamespace:
    def test_prefix_is_validated(self, store):
        with pytest.raises(StoreError):
            store.namespace("")
        with pytest.raises(StoreError):
            store.namespace("a::b")
        assert isinstance(store.namespace("acme"), StoreNamespace)

    def test_response_caches_do_not_share_entries(self, store):
        from repro.llm.base import LLMResponse

        def reply(text):
            return LLMResponse(text=text, model="m")

        acme = store.namespace("acme").response_cache()
        beta = store.namespace("beta").response_cache()
        plain = store.response_cache()
        acme.put("m", "prompt", reply("acme-answer"))
        assert acme.get("m", "prompt").text == "acme-answer"
        assert beta.get("m", "prompt") is None
        assert plain.get("m", "prompt") is None
        beta.put("m", "prompt", reply("beta-answer"))
        assert acme.get("m", "prompt").text == "acme-answer"
        assert beta.get("m", "prompt").text == "beta-answer"

    def test_profiles_are_scoped(self, store):
        from repro.core.physical import RuntimeStats

        acme = store.namespace("acme")
        beta = store.namespace("beta")
        stats = RuntimeStats()
        stats.record_filter("p", evaluated=10, kept=4)
        acme.save_profile(stats)
        assert acme.load_profile() is not None
        assert beta.load_profile() is None
        assert store.load_profile() is None

    def test_checkpoints_are_scoped(self, store):
        from repro.core.spec import SortSpec
        from repro.operators.sort import SortResult

        spec = SortSpec(items=WORDS, criterion=CRITERION, strategy="pairwise")
        fingerprint = fingerprint_spec(spec)
        result = SortResult(strategy="pairwise", order=sorted(WORDS))
        store.namespace("acme").save_checkpoint(fingerprint, spec, result)
        assert store.namespace("acme").load_checkpoint(fingerprint) is not None
        assert store.namespace("beta").load_checkpoint(fingerprint) is None
        assert store.load_checkpoint(fingerprint) is None

    def test_traces_are_scoped(self, store):
        tracer = Tracer()
        tracer.record(model="m", cost=0.25)
        store.namespace("acme").save_trace_records(tracer.records(), origin="run-1")
        assert len(store.namespace("acme").trace_records(origin="run-1")) == 1
        assert store.namespace("beta").trace_records(origin="run-1") == []
        assert store.trace_records(origin="run-1") == []

    def test_jobs_are_shared_but_tenant_scoped_by_column(self, store):
        # Job rows carry the tenant explicitly, so the namespace forwards
        # them unscoped — the JobManager filters by the tenant column.
        ns = store.namespace("acme")
        ns.save_job(JobRecord(job_id="j1", tenant="acme"))
        assert store.load_job("j1") is not None
        assert [j.job_id for j in ns.list_jobs(tenant="acme")] == ["j1"]
