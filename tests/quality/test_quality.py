"""Tests for quality control: validation, Dawid-Skene, voting, verification, calibration."""

from __future__ import annotations

import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.exceptions import QualityControlError
from repro.llm.parsing import extract_choice
from repro.llm.prompts import pairwise_comparison_prompt
from repro.llm.simulated import SimulatedLLM
from repro.quality.calibration import calibration_report, expected_calibration_error, rescale_confidence
from repro.quality.dawid_skene import dawid_skene
from repro.quality.validation import estimate_accuracy, wilson_interval
from repro.quality.verification import verify_response
from repro.quality.voting import majority_vote, self_consistency_vote, weighted_vote


class TestWilsonInterval:
    def test_interval_contains_point_estimate(self):
        lower, upper = wilson_interval(80, 100)
        assert lower < 0.8 < upper

    def test_small_samples_have_wide_intervals(self):
        small = wilson_interval(4, 5)
        large = wilson_interval(80, 100)
        assert (small[1] - small[0]) > (large[1] - large[0])

    def test_bounds_clamped_to_unit_interval(self):
        lower, upper = wilson_interval(0, 10)
        assert lower == 0.0
        assert 0.0 <= upper <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(QualityControlError):
            wilson_interval(1, 0)
        with pytest.raises(QualityControlError):
            wilson_interval(5, 3)


class TestEstimateAccuracy:
    def test_perfect_answers(self):
        estimate = estimate_accuracy(
            range(20), answer=lambda item: item, ground_truth=lambda item: item
        )
        assert estimate.accuracy == 1.0
        assert estimate.sample_size == 20

    def test_custom_equality(self):
        estimate = estimate_accuracy(
            ["A", "B"],
            answer=lambda item: item.lower(),
            ground_truth=lambda item: item,
            equal=lambda left, right: left.upper() == right.upper(),
        )
        assert estimate.accuracy == 1.0

    def test_empty_validation_set_raises(self):
        with pytest.raises(QualityControlError):
            estimate_accuracy([], answer=lambda item: item, ground_truth=lambda item: item)

    def test_llm_comparison_accuracy_estimate(self):
        llm = SimulatedLLM(flavor_oracle(), seed=3)
        pairs = [(FLAVORS[i], FLAVORS[j]) for i in range(5) for j in range(15, 20)]
        estimate = estimate_accuracy(
            pairs,
            answer=lambda pair: extract_choice(
                llm.complete(pairwise_comparison_prompt(pair[0], pair[1], CHOCOLATEY)).text,
                ["A", "B"],
            ),
            ground_truth=lambda pair: "A",
        )
        assert estimate.accuracy >= 0.75
        assert estimate.lower <= estimate.accuracy <= estimate.upper


class TestDawidSkene:
    def test_recovers_truth_with_one_bad_worker(self):
        # Three workers: two reliable, one adversarial, over 12 binary tasks.
        truth = {f"t{i}": (i % 2 == 0) for i in range(12)}
        answers = {
            task: {
                "good1": label,
                "good2": label if task != "t3" else not label,
                "bad": not label,
            }
            for task, label in truth.items()
        }
        result = dawid_skene(answers)
        assert all(result.predictions[task] == truth[task] for task in truth)
        assert result.worker_accuracy["good1"] > result.worker_accuracy["bad"]

    def test_posteriors_sum_to_one(self):
        answers = {"t1": {"w1": "a", "w2": "b"}, "t2": {"w1": "a", "w2": "a"}}
        result = dawid_skene(answers)
        for posterior in result.label_posteriors.values():
            assert sum(posterior.values()) == pytest.approx(1.0)

    def test_empty_answers_raise(self):
        with pytest.raises(QualityControlError):
            dawid_skene({})


class TestVoting:
    def test_majority_vote(self):
        result = majority_vote(["yes", "yes", "no"])
        assert result.winner == "yes"
        assert result.support == pytest.approx(2 / 3)

    def test_majority_vote_tie_broken_by_first_appearance(self):
        assert majority_vote(["b", "a", "a", "b"]).winner == "b"

    def test_empty_vote_raises(self):
        with pytest.raises(QualityControlError):
            majority_vote([])

    def test_weighted_vote_prefers_accurate_voters(self):
        votes = {"weak1": "no", "weak2": "no", "strong": "yes"}
        weights = {"weak1": 0.3, "weak2": 0.3, "strong": 0.9}
        assert weighted_vote(votes, weights).winner == "yes"

    def test_self_consistency_vote(self):
        llm = SimulatedLLM(flavor_oracle(), seed=9)
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[-1], CHOCOLATEY)
        result = self_consistency_vote(
            llm,
            prompt,
            extract=lambda text: extract_choice(text, ["A", "B"]),
            n_samples=5,
        )
        assert result.winner == "A"
        assert result.support >= 0.6

    def test_self_consistency_requires_samples(self):
        llm = SimulatedLLM(flavor_oracle(), seed=9)
        with pytest.raises(QualityControlError):
            self_consistency_vote(llm, "prompt", extract=lambda text: text, n_samples=0)


class TestVerification:
    def test_verification_returns_bounded_confidence(self):
        llm = SimulatedLLM(flavor_oracle(), seed=4)
        result = verify_response(
            llm,
            question="Which flavor is more chocolatey?",
            answer="triple chocolate fudge brownie",
            answer_confidence=0.9,
        )
        assert isinstance(result.verified, bool)
        assert 0.0 <= result.combined_confidence <= 1.0


class TestCalibration:
    def test_well_calibrated_scores_have_low_ece(self):
        confidences = [0.9] * 9 + [0.1]
        correct = [True] * 9 + [False]
        assert expected_calibration_error(confidences, correct) < 0.15

    def test_overconfident_scores_have_high_ece(self):
        confidences = [0.95] * 10
        correct = [True] * 5 + [False] * 5
        assert expected_calibration_error(confidences, correct) > 0.3

    def test_report_bins_cover_samples(self):
        report = calibration_report([0.2, 0.4, 0.6, 0.8], [False, False, True, True], n_bins=4)
        assert report.sample_size == 4
        assert sum(bin_.count for bin_ in report.bins) == 4

    def test_mismatched_lengths_raise(self):
        with pytest.raises(QualityControlError):
            calibration_report([0.5], [True, False])

    def test_empty_raises(self):
        with pytest.raises(QualityControlError):
            calibration_report([], [])

    def test_rescale_confidence(self):
        assert rescale_confidence(0.9, scale=0.5) == pytest.approx(0.7)
        assert rescale_confidence(0.5, scale=2.0) == 0.5
        with pytest.raises(QualityControlError):
            rescale_confidence(0.5, scale=0.0)
