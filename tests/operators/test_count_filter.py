"""Tests for the count and filter operators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, DatasetError
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM
from repro.operators.count import CountOperator
from repro.operators.filter import FilterOperator

PREDICATE = "mentions an animal"
ANIMAL_ITEMS = [
    "the cat sat on the mat",
    "stock markets rallied today",
    "a dog barked all night",
    "the committee approved the budget",
    "elephants migrate across the savanna",
    "the recipe needs two cups of flour",
    "a flock of geese flew south",
    "the printer is out of toner",
    "wild horses roam the plains",
    "quarterly earnings beat expectations",
]


def animal_oracle() -> Oracle:
    animals = ("cat", "dog", "elephant", "geese", "horse")
    oracle = Oracle()
    oracle.register_predicate(
        PREDICATE, lambda item: any(animal in item for animal in animals)
    )
    return oracle


@pytest.fixture()
def predicate_llm() -> SimulatedLLM:
    return SimulatedLLM(animal_oracle(), seed=61)


class TestCountOperator:
    def test_per_item_count_close_to_truth(self, predicate_llm):
        operator = CountOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        result = operator.run(ANIMAL_ITEMS, strategy="per_item")
        assert abs(result.count - 5) <= 2
        assert result.usage.calls == len(ANIMAL_ITEMS)
        assert result.per_item is not None

    def test_estimate_uses_fewer_calls(self, predicate_llm):
        operator = CountOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        per_item = operator.run(ANIMAL_ITEMS, strategy="per_item")
        estimate = operator.run(ANIMAL_ITEMS, strategy="estimate", chunk_size=5)
        assert estimate.usage.calls < per_item.usage.calls
        assert 0 <= estimate.count <= len(ANIMAL_ITEMS)

    def test_invalid_chunk_size(self, predicate_llm):
        operator = CountOperator(predicate_llm, PREDICATE)
        with pytest.raises(DatasetError):
            operator.run(ANIMAL_ITEMS, strategy="estimate", chunk_size=0)


class TestFilterOperator:
    def test_per_item_filter_keeps_mostly_correct_items(self, predicate_llm):
        operator = FilterOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        result = operator.run(ANIMAL_ITEMS, strategy="per_item")
        expected = {item for item in ANIMAL_ITEMS if animal_oracle().satisfies(item, PREDICATE)}
        overlap = len(set(result.kept) & expected)
        assert overlap >= len(expected) - 2
        assert result.votes_used == len(ANIMAL_ITEMS)

    def test_ensemble_vote_requires_multiple_models(self, predicate_llm):
        operator = FilterOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        with pytest.raises(ConfigurationError):
            operator.run(ANIMAL_ITEMS, strategy="ensemble_vote", models=["sim-gpt-3.5-turbo"])

    def test_ensemble_vote_uses_every_model_per_item(self, predicate_llm):
        operator = FilterOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        models = ["sim-gpt-3.5-turbo", "sim-claude", "sim-small"]
        result = operator.run(ANIMAL_ITEMS, strategy="ensemble_vote", models=models)
        assert result.votes_used == len(ANIMAL_ITEMS) * len(models)

    def test_ensemble_vote_accuracy_not_worse_than_cheapest_model(self, predicate_llm):
        truth_oracle = animal_oracle()
        expected = {item: truth_oracle.satisfies(item, PREDICATE) for item in ANIMAL_ITEMS}
        ensemble_operator = FilterOperator(predicate_llm, PREDICATE, model="sim-small")
        ensemble = ensemble_operator.run(
            ANIMAL_ITEMS,
            strategy="ensemble_vote",
            models=["sim-gpt-3.5-turbo", "sim-claude", "sim-small"],
        )
        small_only = FilterOperator(predicate_llm, PREDICATE, model="sim-small").run(
            ANIMAL_ITEMS, strategy="per_item"
        )
        ensemble_correct = sum(
            1 for item in ANIMAL_ITEMS if ensemble.decisions[item] == expected[item]
        )
        small_correct = sum(
            1 for item in ANIMAL_ITEMS if small_only.decisions[item] == expected[item]
        )
        assert ensemble_correct >= small_correct

    def test_adaptive_uses_no_more_votes_than_full_ensemble(self, predicate_llm):
        operator = FilterOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        models = ["sim-gpt-3.5-turbo", "sim-claude", "sim-small"]
        adaptive = operator.run(
            ANIMAL_ITEMS, strategy="adaptive", models=models, agreement_margin=2
        )
        full = operator.run(ANIMAL_ITEMS, strategy="ensemble_vote", models=models)
        assert adaptive.votes_used <= full.votes_used

    def test_adaptive_parameter_validation(self, predicate_llm):
        operator = FilterOperator(predicate_llm, PREDICATE, model="sim-gpt-3.5-turbo")
        with pytest.raises(ConfigurationError):
            operator.run(ANIMAL_ITEMS, strategy="adaptive", models=["one"])
        with pytest.raises(ConfigurationError):
            operator.run(
                ANIMAL_ITEMS,
                strategy="adaptive",
                models=["sim-claude", "sim-small"],
                agreement_margin=0,
            )
