"""Tests for the categorize and fuzzy-join operators."""

from __future__ import annotations

import pytest

from repro.data.citations import generate_citation_corpus, render_citation
from repro.exceptions import ConfigurationError
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM
from repro.operators.categorize import CategorizeOperator
from repro.operators.join import JoinOperator

CATEGORIES = ("fruit", "vegetable", "dairy")
ITEM_CATEGORIES = {
    "crisp red apple": "fruit",
    "ripe yellow banana": "fruit",
    "juicy orange segment": "fruit",
    "fresh green broccoli": "vegetable",
    "raw sliced carrot": "vegetable",
    "leafy spinach bunch": "vegetable",
    "aged cheddar cheese": "dairy",
    "plain greek yogurt": "dairy",
    "cold whole milk": "dairy",
}


def category_oracle() -> Oracle:
    oracle = Oracle()
    oracle.register_categories(ITEM_CATEGORIES)
    return oracle


@pytest.fixture()
def categorizer() -> CategorizeOperator:
    return CategorizeOperator(
        SimulatedLLM(category_oracle(), seed=201), CATEGORIES, model="sim-gpt-3.5-turbo"
    )


class TestCategorizeOperator:
    def test_needs_at_least_two_distinct_categories(self):
        client = SimulatedLLM(category_oracle(), seed=202)
        with pytest.raises(ConfigurationError):
            CategorizeOperator(client, ["only-one"])
        with pytest.raises(ConfigurationError):
            CategorizeOperator(client, ["a", "a"])

    def test_per_item_assigns_every_item_a_valid_category(self, categorizer):
        items = list(ITEM_CATEGORIES)
        result = categorizer.run(items, strategy="per_item")
        assert set(result.assignments) == set(items)
        assert set(result.assignments.values()).issubset(set(CATEGORIES))
        assert result.votes_used == len(items)

    def test_per_item_is_mostly_correct(self, categorizer):
        items = list(ITEM_CATEGORIES)
        result = categorizer.run(items, strategy="per_item")
        correct = sum(
            1 for item, label in result.assignments.items() if label == ITEM_CATEGORIES[item]
        )
        assert correct >= len(items) - 2

    def test_items_in_helper(self, categorizer):
        result = categorizer.run(list(ITEM_CATEGORIES), strategy="per_item")
        grouped = {category: result.items_in(category) for category in CATEGORIES}
        assert sum(len(group) for group in grouped.values()) == len(ITEM_CATEGORIES)

    def test_self_consistency_uses_n_samples_votes(self, categorizer):
        items = list(ITEM_CATEGORIES)[:4]
        result = categorizer.run(items, strategy="self_consistency", n_samples=3)
        assert result.votes_used == 3 * len(items)
        assert set(result.assignments.values()).issubset(set(CATEGORIES))

    def test_self_consistency_invalid_samples(self, categorizer):
        with pytest.raises(ConfigurationError):
            categorizer.run(list(ITEM_CATEGORIES)[:2], strategy="self_consistency", n_samples=0)

    def test_ensemble_vote_requires_two_models(self, categorizer):
        with pytest.raises(ConfigurationError):
            categorizer.run(list(ITEM_CATEGORIES)[:2], strategy="ensemble_vote", models=["one"])

    def test_ensemble_vote_not_less_accurate_than_cheap_model(self):
        items = list(ITEM_CATEGORIES)
        client = SimulatedLLM(category_oracle(), seed=203)
        small_only = CategorizeOperator(client, CATEGORIES, model="sim-small").run(
            items, strategy="per_item"
        )
        ensemble = CategorizeOperator(client, CATEGORIES, model="sim-small").run(
            items,
            strategy="ensemble_vote",
            models=["sim-small", "sim-gpt-3.5-turbo", "sim-claude"],
        )
        small_correct = sum(
            1 for item in items if small_only.assignments[item] == ITEM_CATEGORIES[item]
        )
        ensemble_correct = sum(
            1 for item in items if ensemble.assignments[item] == ITEM_CATEGORIES[item]
        )
        assert ensemble_correct >= small_correct


class TestJoinOperator:
    @pytest.fixture()
    def corpus_sides(self):
        corpus = generate_citation_corpus(
            n_entities=10, duplicates_per_entity=(2, 2), n_pairs=10, seed=211
        )
        by_entity: dict[str, list[str]] = {}
        for record in corpus.dataset:
            by_entity.setdefault(corpus.entity_of[record.record_id], []).append(
                render_citation(record)
            )
        left = [texts[0] for texts in by_entity.values()]
        right = [texts[1] for texts in by_entity.values()]
        return corpus, left, right

    def test_empty_side_rejected(self, corpus_sides):
        corpus, left, _ = corpus_sides
        operator = JoinOperator(SimulatedLLM(corpus.oracle(), seed=212))
        with pytest.raises(ConfigurationError):
            operator.run(left, [])

    def test_all_pairs_considers_the_cross_product(self, corpus_sides):
        corpus, left, right = corpus_sides
        operator = JoinOperator(SimulatedLLM(corpus.oracle(), seed=213))
        result = operator.run(left, right, strategy="all_pairs")
        assert result.candidate_pairs == len(left) * len(right)
        assert result.llm_pairs == result.candidate_pairs
        # Matches must be valid index pairs.
        assert all(0 <= i < len(left) and 0 <= j < len(right) for i, j in result.matches)

    def test_blocked_join_is_cheaper_and_finds_true_matches(self, corpus_sides):
        corpus, left, right = corpus_sides
        operator = JoinOperator(SimulatedLLM(corpus.oracle(), seed=214))
        all_pairs = operator.run(left, right, strategy="all_pairs")
        blocked = JoinOperator(SimulatedLLM(corpus.oracle(), seed=214)).run(
            left, right, strategy="blocked", block_k=2
        )
        assert blocked.candidate_pairs < all_pairs.candidate_pairs
        # The diagonal (same entity on both sides) should be mostly recovered.
        true_matches = {(index, index) for index in range(len(left))}
        found = set(blocked.matches) & true_matches
        assert len(found) >= len(left) // 3

    def test_proxy_blocked_uses_fewer_llm_calls_than_blocked(self, corpus_sides):
        corpus, left, right = corpus_sides
        blocked = JoinOperator(SimulatedLLM(corpus.oracle(), seed=215)).run(
            left, right, strategy="blocked", block_k=2
        )
        proxy = JoinOperator(SimulatedLLM(corpus.oracle(), seed=215)).run(
            left, right, strategy="proxy_blocked", block_k=2
        )
        assert proxy.llm_pairs <= blocked.llm_pairs
        assert proxy.candidate_pairs == blocked.candidate_pairs

    def test_invalid_block_k(self, corpus_sides):
        corpus, left, right = corpus_sides
        operator = JoinOperator(SimulatedLLM(corpus.oracle(), seed=216))
        with pytest.raises(ConfigurationError):
            operator.run(left, right, strategy="blocked", block_k=0)
