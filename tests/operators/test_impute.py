"""Tests for the imputation operator."""

from __future__ import annotations

import pytest

from repro.data.products import generate_buy_dataset
from repro.exceptions import UnknownStrategyError
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM
from repro.operators.impute import ImputeOperator


@pytest.fixture()
def imputer(restaurant_llm):
    return ImputeOperator(
        restaurant_llm, model="sim-claude", cost_model=default_registry().cost_model()
    )


class TestImputeStrategies:
    def test_knn_makes_no_llm_calls(self, imputer, restaurant_data):
        result = imputer.run(restaurant_data, strategy="knn")
        assert result.usage.calls == 0
        assert result.proxy_queries == len(restaurant_data.queries)
        assert set(result.predictions) == set(restaurant_data.ground_truth)

    def test_llm_only_queries_every_record(self, imputer, restaurant_data):
        result = imputer.run(restaurant_data, strategy="llm_only")
        assert result.llm_queries == len(restaurant_data.queries)
        assert result.usage.calls == len(restaurant_data.queries)
        assert result.cost > 0.0

    def test_hybrid_splits_queries_between_proxy_and_llm(self, imputer, restaurant_data):
        result = imputer.run(restaurant_data, strategy="hybrid")
        assert result.llm_queries + result.proxy_queries == len(restaurant_data.queries)
        assert 0 < result.llm_queries < len(restaurant_data.queries)

    def test_hybrid_is_cheaper_than_llm_only(self, restaurant_data, restaurant_llm):
        # Use a fresh operator per strategy so the response cache of one run
        # does not hide the cost of the other.
        hybrid = ImputeOperator(restaurant_llm, model="sim-claude").run(
            restaurant_data, strategy="hybrid"
        )
        llm_only = ImputeOperator(restaurant_llm, model="sim-claude").run(
            restaurant_data, strategy="llm_only"
        )
        assert hybrid.usage.prompt_tokens < llm_only.usage.prompt_tokens

    def test_hybrid_at_least_as_accurate_as_llm_only(self, imputer, restaurant_data):
        hybrid = imputer.run(restaurant_data, strategy="hybrid")
        llm_only = imputer.run(restaurant_data, strategy="llm_only")
        assert restaurant_data.accuracy(hybrid.predictions) >= restaurant_data.accuracy(
            llm_only.predictions
        ) - 0.05

    def test_examples_increase_cost_and_not_decrease_accuracy(self, imputer, restaurant_data):
        without = imputer.run(restaurant_data, strategy="llm_only", n_examples=0)
        with_examples = imputer.run(restaurant_data, strategy="llm_only", n_examples=3)
        assert with_examples.usage.prompt_tokens > without.usage.prompt_tokens
        assert restaurant_data.accuracy(with_examples.predictions) >= restaurant_data.accuracy(
            without.predictions
        )

    def test_unknown_strategy_raises(self, imputer, restaurant_data):
        with pytest.raises(UnknownStrategyError):
            imputer.run(restaurant_data, strategy="magic")

    def test_buy_dataset_end_to_end(self, buy_data):
        operator = ImputeOperator(SimulatedLLM(buy_data.oracle(), seed=51), model="sim-claude")
        result = operator.run(buy_data, strategy="hybrid")
        assert buy_data.accuracy(result.predictions) > 0.5

    def test_custom_k(self, restaurant_data, restaurant_llm):
        operator = ImputeOperator(restaurant_llm, model="sim-claude", k=5)
        result = operator.run(restaurant_data, strategy="knn")
        assert set(result.predictions) == set(restaurant_data.ground_truth)
