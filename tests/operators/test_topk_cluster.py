"""Tests for the top-k and cluster operators."""

from __future__ import annotations

import pytest

from repro.data.citations import generate_citation_corpus
from repro.data.flavors import CHOCOLATEY, FLAVORS
from repro.exceptions import DatasetError
from repro.llm.simulated import SimulatedLLM
from repro.metrics.clustering import pairwise_cluster_f1
from repro.operators.cluster import ClusterOperator
from repro.operators.top_k import TopKOperator


@pytest.fixture()
def topk(flavor_llm):
    return TopKOperator(flavor_llm, CHOCOLATEY, model="sim-gpt-3.5-turbo")


class TestTopKOperator:
    def test_hybrid_finds_a_top_flavor(self, topk, flavors):
        result = topk.run(flavors, k=1, strategy="hybrid_rating_comparison")
        assert len(result.top_items) == 1
        # The winner should come from the clearly-chocolatey half of the list.
        assert result.top_items[0] in set(FLAVORS[:8])

    def test_hybrid_cheaper_than_full_tournament(self, topk, flavors):
        hybrid = topk.run(flavors, k=1, strategy="hybrid_rating_comparison")
        tournament = topk.run(flavors, k=1, strategy="pairwise_tournament")
        assert hybrid.usage.calls < tournament.usage.calls

    def test_tournament_top3_are_chocolatey(self, topk, flavors):
        result = topk.run(flavors, k=3, strategy="pairwise_tournament")
        assert len(result.top_items) == 3
        assert set(result.top_items).issubset(set(FLAVORS[:8]))

    def test_rating_only_returns_k_items(self, topk, flavors):
        result = topk.run(flavors, k=5, strategy="rating_only")
        assert len(result.top_items) == 5
        assert set(result.ratings) == set(flavors)

    def test_invalid_k(self, topk, flavors):
        with pytest.raises(DatasetError):
            topk.run(flavors, k=0)
        with pytest.raises(DatasetError):
            topk.run(flavors, k=len(flavors) + 1)

    def test_invalid_shortlist_factor(self, topk, flavors):
        with pytest.raises(DatasetError):
            topk.run(flavors, k=1, strategy="hybrid_rating_comparison", shortlist_factor=0)


class TestClusterOperator:
    def _corpus(self):
        return generate_citation_corpus(
            n_entities=6, duplicates_per_entity=(2, 3), n_pairs=10, seed=71
        )

    def test_two_phase_covers_every_item(self):
        corpus = self._corpus()
        operator = ClusterOperator(SimulatedLLM(corpus.oracle(), seed=72))
        texts = corpus.texts()
        result = operator.run(texts, strategy="two_phase", seed_size=8)
        covered = sorted(index for cluster in result.clusters for index in cluster)
        assert covered == list(range(len(texts)))

    def test_two_phase_close_to_ground_truth(self):
        corpus = self._corpus()
        operator = ClusterOperator(SimulatedLLM(corpus.oracle(), seed=73))
        texts = corpus.texts()
        result = operator.run(texts, strategy="two_phase", seed_size=8)
        truth = {
            index: corpus.entity_of[corpus.dataset[index].record_id]
            for index in range(len(texts))
        }
        confusion = pairwise_cluster_f1(result.clusters, truth)
        assert confusion.f1 > 0.4

    def test_labels_helper(self):
        corpus = self._corpus()
        operator = ClusterOperator(SimulatedLLM(corpus.oracle(), seed=74))
        result = operator.run(corpus.texts(), strategy="single_prompt")
        labels = result.labels()
        assert set(labels) == set(range(len(corpus.texts())))

    def test_duplicate_items_rejected(self):
        corpus = self._corpus()
        operator = ClusterOperator(SimulatedLLM(corpus.oracle(), seed=75))
        with pytest.raises(DatasetError):
            operator.run(["same", "same"])

    def test_invalid_seed_size(self):
        corpus = self._corpus()
        operator = ClusterOperator(SimulatedLLM(corpus.oracle(), seed=76))
        with pytest.raises(DatasetError):
            operator.run(corpus.texts(), strategy="two_phase", seed_size=1)
