"""Tests for the sort operator and its strategies."""

from __future__ import annotations

import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS
from repro.data.words import random_words
from repro.exceptions import DatasetError, UnknownStrategyError
from repro.llm.registry import default_registry
from repro.metrics.ranking import kendall_tau_b
from repro.operators.sort import SortOperator
from tests.conftest import ALPHABETICAL


@pytest.fixture()
def flavor_sorter(flavor_llm):
    return SortOperator(
        flavor_llm,
        CHOCOLATEY,
        model="sim-gpt-3.5-turbo",
        cost_model=default_registry().cost_model(),
    )


@pytest.fixture()
def word_sorter(alphabetical_llm):
    return SortOperator(alphabetical_llm, ALPHABETICAL, model="sim-claude-2")


class TestSortOperatorBasics:
    def test_registered_strategies(self, flavor_sorter):
        assert set(flavor_sorter.strategies) == {
            "single_prompt",
            "rating",
            "pairwise",
            "hybrid_sort_insert",
            "pairwise_consistent",
        }
        info = flavor_sorter.strategy_info("hybrid_sort_insert")
        assert info.granularity == "hybrid"

    def test_unknown_strategy_raises(self, flavor_sorter, flavors):
        with pytest.raises(UnknownStrategyError):
            flavor_sorter.run(flavors, strategy="mystery")
        with pytest.raises(UnknownStrategyError):
            flavor_sorter.strategy_info("mystery")

    def test_duplicate_items_rejected(self, flavor_sorter):
        with pytest.raises(DatasetError):
            flavor_sorter.run(["a", "a", "b"])

    def test_fewer_than_two_items_is_a_noop(self, flavor_sorter):
        result = flavor_sorter.run(["only"], strategy="pairwise")
        assert result.order == ["only"]
        assert result.usage.calls == 0


class TestSingleShotStrategies:
    def test_single_prompt_returns_all_items_for_short_lists(self, flavor_sorter, flavors):
        result = flavor_sorter.run(flavors, strategy="single_prompt")
        assert set(result.order) == set(flavors)
        assert result.missing == []
        assert result.usage.calls == 1
        assert result.cost > 0.0

    def test_rating_produces_scores_within_scale(self, flavor_sorter, flavors):
        result = flavor_sorter.run(flavors, strategy="rating")
        assert set(result.order) == set(flavors)
        assert all(1 <= score <= 7 for score in result.scores.values())
        assert result.usage.calls == len(flavors)

    def test_rating_batched_uses_fewer_calls(self, flavor_sorter, flavors):
        batched = flavor_sorter.run(flavors, strategy="rating", batch_size=5)
        assert batched.usage.calls == len(flavors) // 5
        assert set(batched.order) == set(flavors)

    def test_rating_invalid_batch_size(self, flavor_sorter, flavors):
        with pytest.raises(DatasetError):
            flavor_sorter.run(flavors, strategy="rating", batch_size=0)

    def test_pairwise_uses_quadratic_calls(self, flavor_sorter):
        subset = list(FLAVORS[:8])
        result = flavor_sorter.run(subset, strategy="pairwise")
        assert result.usage.calls == len(subset) * (len(subset) - 1) // 2
        assert set(result.order) == set(subset)

    def test_pairwise_beats_single_prompt_on_accuracy(self, flavor_sorter, flavors):
        single = flavor_sorter.run(flavors, strategy="single_prompt")
        pairwise = flavor_sorter.run(flavors, strategy="pairwise")
        truth = list(FLAVORS)
        tau_single = kendall_tau_b(single.order + single.missing, truth)
        tau_pairwise = kendall_tau_b(pairwise.order, truth)
        assert tau_pairwise > tau_single

    def test_pairwise_costs_more_than_single_prompt(self, flavor_sorter, flavors):
        single = flavor_sorter.run(flavors, strategy="single_prompt")
        pairwise = flavor_sorter.run(flavors, strategy="pairwise")
        assert pairwise.usage.total_tokens > single.usage.total_tokens


class TestHybridSortInsert:
    def test_long_list_baseline_drops_items_hybrid_recovers_them(self, word_sorter):
        words = random_words(80, seed=21)
        baseline = word_sorter.run(words, strategy="single_prompt")
        hybrid = word_sorter.run(words, strategy="hybrid_sort_insert")
        assert len(baseline.missing) >= 1
        assert set(hybrid.order) == set(words)

    def test_hybrid_order_is_nearly_alphabetical(self, word_sorter):
        words = random_words(80, seed=22)
        hybrid = word_sorter.run(words, strategy="hybrid_sort_insert")
        truth = sorted(words, key=str.lower)
        assert kendall_tau_b(hybrid.order, truth) > 0.95

    def test_pairwise_consistent_close_to_pairwise(self, flavor_sorter):
        # The consistency repair optimises agreement with the *comparisons*,
        # which tracks (but does not dominate) agreement with the ground truth;
        # it must stay in the same accuracy band as the plain pairwise sort.
        subset = list(FLAVORS[:10])
        plain = flavor_sorter.run(subset, strategy="pairwise")
        repaired = flavor_sorter.run(subset, strategy="pairwise_consistent")
        truth = [flavor for flavor in FLAVORS if flavor in set(subset)]
        assert kendall_tau_b(repaired.order, truth) >= kendall_tau_b(plain.order, truth) - 0.2
        assert set(repaired.order) == set(subset)
