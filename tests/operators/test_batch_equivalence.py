"""Batch/sequential equivalence suite for every converted operator.

Every LLM-bound operator now submits its independent unit tasks through
``BaseOperator._complete_requests``.  This suite re-runs each converted
strategy against a *reference sequential path* — a monkeypatched
``_complete_requests`` that issues one blocking ``complete()`` per request,
exactly like the pre-batching code did — and asserts the results are
element-wise identical at temperature 0, for workload sizes {1, 2, 7, 64}
(the number of independent unit tasks in a batch, capped where a strategy's
unit-task count grows quadratically) and ``max_concurrency`` {1, 4}.
"""

from __future__ import annotations

import pytest

from repro.data.products import ImputationDataset
from repro.data.record import Dataset
from repro.data.words import random_words
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM
from repro.operators.base import BaseOperator
from repro.operators.categorize import CategorizeOperator
from repro.operators.filter import FilterOperator
from repro.operators.impute import ImputeOperator
from repro.operators.resolve import ResolveOperator
from repro.operators.sort import SortOperator

SIZES = (1, 2, 7, 64)
CONCURRENCIES = (1, 4)
MODEL = "sim-gpt-3.5-turbo"
ALPHABETICAL = "alphabetical order"


def _sequential_requests(self, requests):
    """The pre-batching behaviour: one blocking complete() per unit task."""
    return [
        self._client.complete(
            request.prompt,
            model=request.model,
            temperature=request.temperature,
            max_tokens=request.max_tokens,
        )
        for request in requests
    ]


@pytest.fixture()
def sequential_reference(monkeypatch):
    """Context manager-style helper: run a callable on the sequential path."""

    def run(build_and_run):
        with monkeypatch.context() as patch:
            patch.setattr(BaseOperator, "_complete_requests", _sequential_requests)
            return build_and_run()

    return run


def _assert_equivalent(reference, result):
    """Batch results must be element-wise identical to the sequential path."""
    assert result == reference  # dataclass equality: payload, usage, cost, metadata


# -- sort -------------------------------------------------------------------------


def _sort_operator(alphabetical_oracle, concurrency: int) -> SortOperator:
    return SortOperator(
        SimulatedLLM(alphabetical_oracle, seed=11),
        ALPHABETICAL,
        model=MODEL,
        max_concurrency=concurrency,
    )


class TestSortEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    @pytest.mark.parametrize("options", [{"batch_size": 1}, {"batch_size": 3}])
    def test_rating(self, alphabetical_oracle, sequential_reference, size, concurrency, options):
        words = random_words(size, seed=31)
        reference = sequential_reference(
            lambda: _sort_operator(alphabetical_oracle, 1).run(words, strategy="rating", **options)
        )
        result = _sort_operator(alphabetical_oracle, concurrency).run(
            words, strategy="rating", **options
        )
        _assert_equivalent(reference, result)

    # 12 items → 66 pairwise unit tasks per batch: the quadratic strategies hit
    # the target batch sizes with far fewer items.
    @pytest.mark.parametrize("size", (1, 2, 7, 12))
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    @pytest.mark.parametrize("strategy", ["pairwise", "pairwise_consistent"])
    def test_pairwise_family(
        self, alphabetical_oracle, sequential_reference, size, concurrency, strategy
    ):
        words = random_words(size, seed=37)
        reference = sequential_reference(
            lambda: _sort_operator(alphabetical_oracle, 1).run(words, strategy=strategy)
        )
        result = _sort_operator(alphabetical_oracle, concurrency).run(words, strategy=strategy)
        _assert_equivalent(reference, result)

    @pytest.mark.parametrize("size", (7, 64))
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_hybrid_sort_insert(self, alphabetical_oracle, sequential_reference, size, concurrency):
        # Long lists make the coarse pass drop items, exercising the batched
        # pairwise re-insertion loop.
        words = random_words(size, seed=41)
        reference = sequential_reference(
            lambda: _sort_operator(alphabetical_oracle, 1).run(
                words, strategy="hybrid_sort_insert"
            )
        )
        result = _sort_operator(alphabetical_oracle, concurrency).run(
            words, strategy="hybrid_sort_insert"
        )
        _assert_equivalent(reference, result)


# -- resolve ----------------------------------------------------------------------


def _resolver(citation_llm_oracle, concurrency: int) -> ResolveOperator:
    return ResolveOperator(
        SimulatedLLM(citation_llm_oracle, seed=19), model=MODEL, max_concurrency=concurrency
    )


class TestResolveEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    @pytest.mark.parametrize("strategy", ["pairwise", "transitive", "proxy_hybrid"])
    def test_judge_pairs(self, citation_corpus, sequential_reference, size, concurrency, strategy):
        pairs = [(pair.left_text, pair.right_text) for pair in citation_corpus.pairs][:size]
        corpus = citation_corpus.texts()
        kwargs = {"corpus": corpus, "neighbors_k": 1} if strategy == "transitive" else {}
        oracle = citation_corpus.oracle()
        reference = sequential_reference(
            lambda: _resolver(oracle, 1).judge_pairs(pairs, strategy=strategy, **kwargs)
        )
        result = _resolver(oracle, concurrency).judge_pairs(pairs, strategy=strategy, **kwargs)
        _assert_equivalent(reference, result)

    @pytest.mark.parametrize("size", (2, 7, 12))
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    @pytest.mark.parametrize("strategy", ["pairwise", "blocked_pairwise"])
    def test_resolve_clustering(
        self, citation_corpus, sequential_reference, size, concurrency, strategy
    ):
        records = citation_corpus.texts()[:size]
        oracle = citation_corpus.oracle()
        reference = sequential_reference(
            lambda: _resolver(oracle, 1).resolve(records, strategy=strategy)
        )
        result = _resolver(oracle, concurrency).resolve(records, strategy=strategy)
        _assert_equivalent(reference, result)


# -- impute -----------------------------------------------------------------------


def _subset(data: ImputationDataset, size: int) -> ImputationDataset:
    records = data.queries.records[:size]
    return ImputationDataset(
        name=f"{data.name}-subset-{size}",
        target_attribute=data.target_attribute,
        queries=Dataset(records, name=f"{data.name}-subset-queries"),
        reference=data.reference,
        ground_truth={record.record_id: data.ground_truth[record.record_id] for record in records},
    )


class TestImputeEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    @pytest.mark.parametrize("strategy", ["llm_only", "hybrid"])
    @pytest.mark.parametrize("n_examples", [0, 3])
    def test_impute(
        self, restaurant_data, sequential_reference, size, concurrency, strategy, n_examples
    ):
        data = _subset(restaurant_data, size)

        def build(conc):
            return ImputeOperator(
                SimulatedLLM(restaurant_data.oracle(), seed=23), model=MODEL, max_concurrency=conc
            )

        reference = sequential_reference(
            lambda: build(1).run(data, strategy=strategy, n_examples=n_examples)
        )
        result = build(concurrency).run(data, strategy=strategy, n_examples=n_examples)
        _assert_equivalent(reference, result)


# -- filter -----------------------------------------------------------------------

PREDICATE = "mentions a color"
COLORS = ("red", "green", "blue", "amber")


def _filter_items(size: int) -> list[str]:
    words = random_words(size, seed=43)
    return [
        f"{word} {COLORS[index % len(COLORS)]}" if index % 2 == 0 else f"{word} item"
        for index, word in enumerate(words)
    ]


def _predicate_oracle() -> Oracle:
    oracle = Oracle()
    oracle.register_predicate(PREDICATE, lambda item: any(color in item for color in COLORS))
    return oracle


class TestFilterEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_per_item(self, sequential_reference, size, concurrency):
        items = _filter_items(size)

        def build(conc):
            return FilterOperator(
                SimulatedLLM(_predicate_oracle(), seed=61),
                PREDICATE,
                model=MODEL,
                max_concurrency=conc,
            )

        reference = sequential_reference(lambda: build(1).run(items, strategy="per_item"))
        result = build(concurrency).run(items, strategy="per_item")
        _assert_equivalent(reference, result)

    @pytest.mark.parametrize("size", (1, 2, 7, 64))
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_ensemble_vote(self, sequential_reference, size, concurrency):
        items = _filter_items(size)
        models = [MODEL, "sim-claude", "sim-claude-2"]

        def build(conc):
            return FilterOperator(
                SimulatedLLM(_predicate_oracle(), seed=67),
                PREDICATE,
                model=MODEL,
                max_concurrency=conc,
            )

        reference = sequential_reference(
            lambda: build(1).run(items, strategy="ensemble_vote", models=models)
        )
        result = build(concurrency).run(items, strategy="ensemble_vote", models=models)
        _assert_equivalent(reference, result)


# -- categorize -------------------------------------------------------------------

CATEGORIES = ("fruit", "vegetable", "dairy")


def _category_oracle(items: dict[str, str]) -> Oracle:
    oracle = Oracle()
    oracle.register_categories(items)
    return oracle


def _categorize_items(size: int) -> dict[str, str]:
    words = random_words(size, seed=71)
    return {
        f"{word} sample": CATEGORIES[index % len(CATEGORIES)]
        for index, word in enumerate(words)
    }


class TestCategorizeEquivalence:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_per_item(self, sequential_reference, size, concurrency):
        item_map = _categorize_items(size)
        items = list(item_map)

        def build(conc):
            return CategorizeOperator(
                SimulatedLLM(_category_oracle(item_map), seed=73),
                CATEGORIES,
                model=MODEL,
                max_concurrency=conc,
            )

        reference = sequential_reference(lambda: build(1).run(items, strategy="per_item"))
        result = build(concurrency).run(items, strategy="per_item")
        _assert_equivalent(reference, result)

    @pytest.mark.parametrize("size", (2, 7, 64))
    @pytest.mark.parametrize("concurrency", CONCURRENCIES)
    def test_ensemble_vote(self, sequential_reference, size, concurrency):
        item_map = _categorize_items(size)
        items = list(item_map)
        models = [MODEL, "sim-claude", "sim-claude-2"]

        def build(conc):
            return CategorizeOperator(
                SimulatedLLM(_category_oracle(item_map), seed=79),
                CATEGORIES,
                model=MODEL,
                max_concurrency=conc,
            )

        reference = sequential_reference(
            lambda: build(1).run(items, strategy="ensemble_vote", models=models)
        )
        result = build(concurrency).run(items, strategy="ensemble_vote", models=models)
        _assert_equivalent(reference, result)
