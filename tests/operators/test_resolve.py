"""Tests for the entity-resolution operator."""

from __future__ import annotations

import pytest

from repro.data.citations import generate_citation_corpus
from repro.exceptions import UnknownStrategyError
from repro.llm.simulated import SimulatedLLM
from repro.metrics.classification import confusion_from_pairs
from repro.metrics.clustering import pairwise_cluster_f1
from repro.operators.resolve import ResolveOperator
from repro.proxies.classifier import SimilarityMatchProxy


@pytest.fixture()
def resolver(citation_llm):
    return ResolveOperator(citation_llm, model="sim-gpt-3.5-turbo")


def _pairs(citation_corpus):
    return [(pair.left_text, pair.right_text) for pair in citation_corpus.pairs]


def _labels(citation_corpus):
    return [pair.is_duplicate for pair in citation_corpus.pairs]


class TestJudgePairs:
    def test_pairwise_baseline_high_precision_low_recall(self, resolver, citation_corpus):
        result = resolver.judge_pairs(_pairs(citation_corpus), strategy="pairwise")
        confusion = confusion_from_pairs(result.decisions, _labels(citation_corpus))
        assert confusion.precision > 0.85
        assert confusion.recall < 0.9
        assert result.usage.calls == len(citation_corpus.pairs)

    def test_transitive_with_k0_equals_pairwise_decisions(self, resolver, citation_corpus):
        pairs = _pairs(citation_corpus)
        pairwise = resolver.judge_pairs(pairs, strategy="pairwise")
        transitive = resolver.judge_pairs(
            pairs, strategy="transitive", corpus=citation_corpus.texts(), neighbors_k=0
        )
        assert pairwise.decisions == transitive.decisions

    def test_transitive_augmentation_improves_recall(self, resolver, citation_corpus):
        pairs = _pairs(citation_corpus)
        labels = _labels(citation_corpus)
        baseline = resolver.judge_pairs(
            pairs, strategy="transitive", corpus=citation_corpus.texts(), neighbors_k=0
        )
        augmented = resolver.judge_pairs(
            pairs, strategy="transitive", corpus=citation_corpus.texts(), neighbors_k=2
        )
        recall_before = confusion_from_pairs(baseline.decisions, labels).recall
        recall_after = confusion_from_pairs(augmented.decisions, labels).recall
        assert recall_after >= recall_before
        assert augmented.metadata["flipped"] >= 0
        assert augmented.metadata["unique_llm_pairs"] > len(pairs)

    def test_flipped_judgments_are_marked_with_source(self, resolver, citation_corpus):
        result = resolver.judge_pairs(
            _pairs(citation_corpus),
            strategy="transitive",
            corpus=citation_corpus.texts(),
            neighbors_k=2,
        )
        sources = {judgment.source for judgment in result.judgments}
        assert sources.issubset({"llm", "transitivity"})

    def test_proxy_hybrid_uses_fewer_llm_calls(self, resolver, citation_corpus):
        pairs = _pairs(citation_corpus)
        proxy = SimilarityMatchProxy(accept_threshold=0.9, reject_threshold=0.15)
        result = resolver.judge_pairs(pairs, strategy="proxy_hybrid", proxy=proxy)
        assert result.metadata["llm_pairs"] + result.metadata["proxy_pairs"] == len(pairs)
        assert result.usage.calls == result.metadata["llm_pairs"]
        assert result.usage.calls < len(pairs)

    def test_unknown_strategy_raises(self, resolver, citation_corpus):
        with pytest.raises(UnknownStrategyError):
            resolver.judge_pairs(_pairs(citation_corpus), strategy="telepathy")


class TestResolveClustering:
    def test_pairwise_clustering_close_to_truth(self):
        corpus = generate_citation_corpus(n_entities=6, duplicates_per_entity=(2, 3), n_pairs=10, seed=41)
        resolver = ResolveOperator(SimulatedLLM(corpus.oracle(), seed=42))
        texts = corpus.texts()
        result = resolver.resolve(texts, strategy="pairwise")
        truth = {index: corpus.entity_of[corpus.dataset[index].record_id] for index in range(len(texts))}
        confusion = pairwise_cluster_f1(result.clusters, truth)
        assert confusion.f1 > 0.5
        assert sorted(index for cluster in result.clusters for index in cluster) == list(
            range(len(texts))
        )

    def test_single_prompt_clustering_covers_every_record(self):
        corpus = generate_citation_corpus(n_entities=5, duplicates_per_entity=(2, 3), n_pairs=10, seed=43)
        resolver = ResolveOperator(SimulatedLLM(corpus.oracle(), seed=44))
        texts = corpus.texts()
        result = resolver.resolve(texts, strategy="single_prompt")
        covered = sorted(index for cluster in result.clusters for index in cluster)
        assert covered == list(range(len(texts)))
        assert result.usage.calls == 1

    def test_blocked_pairwise_uses_fewer_comparisons(self):
        corpus = generate_citation_corpus(n_entities=8, duplicates_per_entity=(2, 3), n_pairs=10, seed=45)
        resolver = ResolveOperator(SimulatedLLM(corpus.oracle(), seed=46))
        texts = corpus.texts()
        result = resolver.resolve(texts, strategy="blocked_pairwise", block_k=3)
        assert result.metadata["candidate_pairs"] < result.metadata["all_pairs"]
        assert result.usage.calls == result.metadata["candidate_pairs"]
