"""End-to-end integration tests: small-scale versions of the paper's case studies.

Each test runs one of the paper's case studies through the public API at a
reduced scale and asserts the qualitative takeaway of the corresponding table
(who wins, in accuracy and in cost), not exact numbers.
"""

from __future__ import annotations

import random

import pytest

from repro import DeclarativeEngine, SimulatedLLM, SortSpec
from repro.core.workflow import Workflow
from repro.core.session import PromptSession
from repro.data.citations import generate_citation_corpus
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.data.products import generate_restaurant_dataset
from repro.data.words import random_words
from repro.llm.oracle import Oracle, prefix_margin
from repro.metrics.classification import confusion_from_pairs
from repro.metrics.ranking import kendall_tau_b
from repro.operators.impute import ImputeOperator
from repro.operators.resolve import ResolveOperator
from repro.operators.sort import SortOperator


class TestCaseStudySorting:
    """Section 3.1 / Table 1: cost-accuracy tradeoff across sorting strategies."""

    def test_finer_strategies_cost_more_and_score_higher(self):
        operator = SortOperator(
            SimulatedLLM(flavor_oracle(), seed=101), CHOCOLATEY, model="sim-gpt-3.5-turbo"
        )
        truth = list(FLAVORS)
        results = {}
        for strategy in ("single_prompt", "rating", "pairwise"):
            result = operator.run(truth, strategy=strategy)
            order = list(result.order) + [item for item in truth if item not in set(result.order)]
            results[strategy] = (kendall_tau_b(order, truth), result.usage.total_tokens)
        # Accuracy: the fine-grained pairwise strategy beats both coarse ones.
        # (The rating-vs-single-prompt gap is small and noisy at n=20, exactly
        # as in the paper where it was 0.547 vs 0.526; the seed-averaged
        # comparison lives in benchmarks/test_bench_table1_sorting.py.)
        assert results["pairwise"][0] > results["rating"][0]
        assert results["pairwise"][0] > results["single_prompt"][0]
        # Cost ordering: pairwise > rating > single prompt.
        assert results["pairwise"][1] > results["rating"][1] > results["single_prompt"][1]


class TestCaseStudySortInsert:
    """Section 3.2 / Table 2: hybrid sort-then-insert fixes drops on long lists."""

    def test_hybrid_outperforms_baseline_on_long_lists(self):
        words = random_words(100, seed=103)
        oracle = Oracle()
        oracle.register_key("alphabetical order", lambda word: word.lower(), margin=prefix_margin)
        operator = SortOperator(
            SimulatedLLM(oracle, seed=104), "alphabetical order", model="sim-claude-2"
        )
        truth = sorted(words, key=str.lower)

        baseline = operator.run(words, strategy="single_prompt")
        rng = random.Random(0)
        baseline_filled = list(baseline.order)
        for missing in baseline.missing:
            baseline_filled.insert(rng.randrange(len(baseline_filled) + 1), missing)
        hybrid = operator.run(words, strategy="hybrid_sort_insert")

        assert len(baseline.missing) >= 1
        assert set(hybrid.order) == set(words)
        assert kendall_tau_b(hybrid.order, truth) > kendall_tau_b(baseline_filled, truth)
        assert kendall_tau_b(hybrid.order, truth) > 0.95


class TestCaseStudyEntityResolution:
    """Section 3.3 / Table 3: transitivity over k-NN-augmented comparisons lifts F1."""

    def test_f1_improves_with_neighbor_augmentation(self):
        corpus = generate_citation_corpus(n_entities=40, n_pairs=100, seed=105)
        operator = ResolveOperator(
            SimulatedLLM(corpus.oracle(), seed=106), model="sim-gpt-3.5-turbo"
        )
        pairs = [(pair.left_text, pair.right_text) for pair in corpus.pairs]
        labels = [pair.is_duplicate for pair in corpus.pairs]
        texts = corpus.texts()

        scores = {}
        for k in (0, 1, 2):
            result = operator.judge_pairs(
                pairs, strategy="transitive", corpus=texts, neighbors_k=k
            )
            scores[k] = confusion_from_pairs(result.decisions, labels)

        assert scores[0].precision > 0.85  # the baseline is precision-heavy
        assert scores[1].recall >= scores[0].recall
        assert scores[2].recall >= scores[0].recall
        assert max(scores[1].f1, scores[2].f1) > scores[0].f1


class TestCaseStudyImputation:
    """Section 3.4 / Table 4: the hybrid imputer matches LLM-only at lower cost."""

    def test_hybrid_matches_llm_only_at_lower_cost(self):
        data = generate_restaurant_dataset(150, seed=107)
        client = SimulatedLLM(data.oracle(), seed=108)

        # Fresh operators per strategy so each run pays its own token cost
        # (the per-operator response cache would otherwise hide it).
        knn = ImputeOperator(client, model="sim-claude").run(data, strategy="knn")
        hybrid = ImputeOperator(client, model="sim-claude").run(data, strategy="hybrid")
        llm_only = ImputeOperator(client, model="sim-claude").run(data, strategy="llm_only")

        accuracy = {
            "knn": data.accuracy(knn.predictions),
            "hybrid": data.accuracy(hybrid.predictions),
            "llm_only": data.accuracy(llm_only.predictions),
        }
        assert knn.usage.total_tokens == 0
        assert hybrid.usage.total_tokens < llm_only.usage.total_tokens
        assert accuracy["hybrid"] >= accuracy["knn"] - 0.02
        assert accuracy["hybrid"] >= accuracy["llm_only"] - 0.05


class TestDeclarativeWorkflow:
    """The engine + workflow layers compose operators under one budget."""

    def test_sort_then_top_k_workflow(self):
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=109))

        def sort_step(session_, results):
            operator = SortOperator(session_.client(), CHOCOLATEY)
            return operator.run(list(FLAVORS[:10]), strategy="rating").order

        def head_step(session_, results):
            return results["sort"][:3]

        workflow = Workflow("sort-then-head")
        workflow.add_step("sort", sort_step)
        workflow.add_step("head", head_step)
        report = workflow.execute(session)
        assert len(report.results["head"]) == 3
        assert report.total_cost > 0.0

    def test_engine_budgeted_auto_sort(self):
        engine = DeclarativeEngine(SimulatedLLM(flavor_oracle(), seed=110))
        spec = SortSpec(
            items=list(FLAVORS),
            criterion=CHOCOLATEY,
            strategy="auto",
            validation_order=list(FLAVORS[:6]),
            budget_dollars=0.05,
        )
        result = engine.sort(spec)
        assert set(result.order).issubset(set(FLAVORS))
        assert engine.spent_dollars <= 0.05
