"""Shared fixtures for the test suite.

All fixtures are deterministic: the simulated LLM and every data generator are
seeded, so test outcomes are stable across runs.
"""

from __future__ import annotations

import pytest

from repro.data.citations import CitationCorpus, generate_citation_corpus
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.data.products import ImputationDataset, generate_buy_dataset, generate_restaurant_dataset
from repro.data.words import random_words
from repro.llm.oracle import Oracle, prefix_margin
from repro.llm.registry import default_registry
from repro.llm.simulated import SimulatedLLM

ALPHABETICAL = "alphabetical order"


@pytest.fixture()
def flavor_llm() -> SimulatedLLM:
    """Simulated LLM grounded in the chocolateyness scores."""
    return SimulatedLLM(flavor_oracle(), seed=7)


@pytest.fixture()
def flavors() -> list[str]:
    """The 20 flavors in ground-truth order (most chocolatey first)."""
    return list(FLAVORS)


@pytest.fixture()
def chocolatey_criterion() -> str:
    return CHOCOLATEY


@pytest.fixture()
def alphabetical_oracle() -> Oracle:
    """Oracle that orders words alphabetically (case-insensitive)."""
    oracle = Oracle()
    oracle.register_key(ALPHABETICAL, lambda word: word.lower(), margin=prefix_margin)
    return oracle


@pytest.fixture()
def alphabetical_llm(alphabetical_oracle: Oracle) -> SimulatedLLM:
    return SimulatedLLM(alphabetical_oracle, seed=11)


@pytest.fixture()
def word_sample() -> list[str]:
    """A reproducible 40-word sample (long enough to trigger drops)."""
    return random_words(40, seed=13)


@pytest.fixture(scope="session")
def citation_corpus() -> CitationCorpus:
    """A small synthetic citation corpus shared across ER tests."""
    return generate_citation_corpus(n_entities=25, n_pairs=60, seed=17)


@pytest.fixture()
def citation_llm(citation_corpus: CitationCorpus) -> SimulatedLLM:
    return SimulatedLLM(citation_corpus.oracle(), seed=19)


@pytest.fixture(scope="session")
def restaurant_data() -> ImputationDataset:
    return generate_restaurant_dataset(120, seed=23)


@pytest.fixture(scope="session")
def buy_data() -> ImputationDataset:
    return generate_buy_dataset(120, seed=29)


@pytest.fixture()
def restaurant_llm(restaurant_data: ImputationDataset) -> SimulatedLLM:
    return SimulatedLLM(restaurant_data.oracle(), seed=31)


@pytest.fixture()
def registry():
    return default_registry()
