"""Tests for ranking, classification, and clustering metrics."""

from __future__ import annotations

import pytest

from repro.exceptions import DatasetError
from repro.metrics.classification import (
    BinaryConfusion,
    accuracy,
    confusion_from_pairs,
    f1_score,
    precision,
    recall,
)
from repro.metrics.clustering import adjusted_rand_index, pairwise_cluster_f1
from repro.metrics.ranking import (
    kendall_tau_b,
    kendall_tau_b_from_scores,
    ranking_alignment,
    spearman_rho,
)


class TestKendallTau:
    def test_identical_orders_score_one(self):
        items = ["a", "b", "c", "d"]
        assert kendall_tau_b(items, items) == pytest.approx(1.0)

    def test_reversed_order_scores_minus_one(self):
        items = ["a", "b", "c", "d"]
        assert kendall_tau_b(list(reversed(items)), items) == pytest.approx(-1.0)

    def test_partial_overlap_ignores_unshared_items(self):
        predicted = ["a", "x", "b", "c"]
        truth = ["a", "b", "c", "d"]
        assert kendall_tau_b(predicted, truth) == pytest.approx(1.0)

    def test_single_shared_item_raises(self):
        with pytest.raises(DatasetError):
            kendall_tau_b(["a"], ["a", "b"])

    def test_scores_with_ties_use_tau_b(self):
        scores = {"a": 3.0, "b": 3.0, "c": 1.0}
        value = kendall_tau_b_from_scores(scores, ["a", "b", "c"])
        assert 0.0 < value < 1.0  # ties prevent a perfect score

    def test_spearman_identical(self):
        assert spearman_rho(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(1.0)

    def test_ranking_alignment_bounds(self):
        items = ["a", "b", "c", "d"]
        assert ranking_alignment(items, items) == 1.0
        assert ranking_alignment(list(reversed(items)), items) == 0.0

    def test_alignment_relates_to_tau(self):
        predicted = ["b", "a", "c", "d"]
        truth = ["a", "b", "c", "d"]
        tau = kendall_tau_b(predicted, truth)
        assert ranking_alignment(predicted, truth) == pytest.approx((tau + 1) / 2)


class TestClassification:
    def test_confusion_counts(self):
        confusion = confusion_from_pairs([True, True, False, False], [True, False, True, False])
        assert confusion.true_positives == 1
        assert confusion.false_positives == 1
        assert confusion.false_negatives == 1
        assert confusion.true_negatives == 1
        assert confusion.accuracy == 0.5

    def test_precision_recall_f1(self):
        predictions = [True, True, True, False, False]
        labels = [True, True, False, True, False]
        assert precision(predictions, labels) == pytest.approx(2 / 3)
        assert recall(predictions, labels) == pytest.approx(2 / 3)
        assert f1_score(predictions, labels) == pytest.approx(2 / 3)

    def test_degenerate_cases_return_zero(self):
        empty = BinaryConfusion()
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0
        assert empty.accuracy == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_from_pairs([True], [True, False])

    def test_exact_match_accuracy(self):
        truth = {"a": "Austin", "b": "Chicago"}
        assert accuracy({"a": "austin ", "b": "Chicago"}, truth) == 1.0
        assert accuracy({"a": "Dallas", "b": "Chicago"}, truth) == 0.5
        assert accuracy({}, truth) == 0.0
        assert accuracy({"a": "x"}, {}) == 0.0


class TestClustering:
    def test_perfect_clustering(self):
        clusters = [["a", "b"], ["c"]]
        labels = {"a": 1, "b": 1, "c": 2}
        confusion = pairwise_cluster_f1(clusters, labels)
        assert confusion.f1 == pytest.approx(1.0)

    def test_over_merged_clustering_loses_precision(self):
        clusters = [["a", "b", "c"]]
        labels = {"a": 1, "b": 1, "c": 2}
        confusion = pairwise_cluster_f1(clusters, labels)
        assert confusion.recall == pytest.approx(1.0)
        assert confusion.precision < 1.0

    def test_adjusted_rand_identical_partitions(self):
        labels = {"a": 1, "b": 1, "c": 2, "d": 3}
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_adjusted_rand_disjoint_items_returns_zero(self):
        assert adjusted_rand_index({"a": 1}, {"b": 1}) == 0.0

    def test_adjusted_rand_single_cluster_vs_split(self):
        predicted = {"a": 1, "b": 1, "c": 1, "d": 1}
        truth = {"a": 1, "b": 1, "c": 2, "d": 2}
        value = adjusted_rand_index(predicted, truth)
        assert value < 0.5
