"""Tests for Record and Dataset."""

from __future__ import annotations

import pytest

from repro.data.record import Dataset, Record
from repro.exceptions import DatasetError


def make_dataset() -> Dataset:
    return Dataset(
        [
            Record("r1", {"name": "Garden Table", "city": "Austin", "price": 10}),
            Record("r2", {"name": "Corner House", "city": "Chicago", "price": 20}),
            Record("r3", {"name": "Palace Grill", "city": "Austin", "price": None}),
        ],
        name="test",
    )


class TestRecord:
    def test_get_and_contains(self):
        record = Record("r1", {"name": "X"})
        assert record.get("name") == "X"
        assert record.get("missing", "default") == "default"
        assert "name" in record
        assert record["name"] == "X"

    def test_with_value_returns_copy(self):
        record = Record("r1", {"a": 1})
        updated = record.with_value("b", 2)
        assert "b" not in record
        assert updated["b"] == 2
        assert updated.record_id == "r1"

    def test_without_removes_attribute(self):
        record = Record("r1", {"a": 1, "b": 2})
        assert "a" not in record.without("a")
        assert "a" in record  # original unchanged

    def test_serialize_matches_paper_format(self):
        record = Record("r1", {"name": "Garden Table", "city": "Austin"})
        assert record.serialize() == "name is Garden Table; city is Austin"

    def test_serialize_excludes_and_skips_none(self):
        record = Record("r1", {"name": "X", "city": None, "price": 3})
        assert record.serialize(exclude=("price",)) == "name is X"


class TestDataset:
    def test_len_iter_getitem(self):
        dataset = make_dataset()
        assert len(dataset) == 3
        assert [record.record_id for record in dataset] == ["r1", "r2", "r3"]
        assert dataset[1].record_id == "r2"

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatasetError):
            Dataset([Record("a", {}), Record("a", {})])

    def test_get_by_id(self):
        dataset = make_dataset()
        assert dataset.get("r2")["city"] == "Chicago"
        with pytest.raises(DatasetError):
            dataset.get("missing")

    def test_attributes_union_in_order(self):
        dataset = make_dataset()
        assert dataset.attributes == ["name", "city", "price"]

    def test_values_skips_missing_and_none(self):
        dataset = make_dataset()
        assert dataset.values("price") == [10, 20]

    def test_filter(self):
        dataset = make_dataset()
        austin = dataset.filter(lambda record: record["city"] == "Austin")
        assert len(austin) == 2

    def test_sample_is_reproducible(self):
        dataset = make_dataset()
        first = [record.record_id for record in dataset.sample(2, seed=1)]
        second = [record.record_id for record in dataset.sample(2, seed=1)]
        assert first == second

    def test_sample_too_large_raises(self):
        with pytest.raises(DatasetError):
            make_dataset().sample(10)

    def test_shuffled_keeps_records(self):
        dataset = make_dataset()
        shuffled = dataset.shuffled(seed=3)
        assert {record.record_id for record in shuffled} == {"r1", "r2", "r3"}

    def test_map_records(self):
        dataset = make_dataset()
        upper = dataset.map_records(
            lambda record: record.with_value("name", str(record["name"]).upper())
        )
        assert upper[0]["name"] == "GARDEN TABLE"

    def test_rows_round_trip(self):
        dataset = make_dataset()
        rebuilt = Dataset.from_rows(dataset.to_rows(), name="rebuilt")
        assert len(rebuilt) == 3
        assert rebuilt.get("r1")["city"] == "Austin"
