"""Tests for the word list, flavors, citation corpus, and imputation datasets."""

from __future__ import annotations

import pytest

from repro.data.citations import generate_citation_corpus, render_citation
from repro.data.flavors import CHOCOLATEY, FLAVORS, chocolateyness_scores, flavor_oracle
from repro.data.products import generate_buy_dataset, generate_restaurant_dataset
from repro.data.splits import train_validation_test_split
from repro.data.words import WORDS, random_words
from repro.exceptions import DatasetError


class TestWords:
    def test_dictionary_is_large_and_sorted(self):
        assert len(WORDS) >= 500
        assert list(WORDS) == sorted(WORDS)
        assert len(set(WORDS)) == len(WORDS)

    def test_random_words_reproducible_and_distinct(self):
        first = random_words(100, seed=1)
        second = random_words(100, seed=1)
        assert first == second
        assert len(set(first)) == 100

    def test_random_words_not_sorted(self):
        words = random_words(100, seed=2)
        assert words != sorted(words)

    def test_oversampling_raises(self):
        with pytest.raises(DatasetError):
            random_words(len(WORDS) + 1)


class TestFlavors:
    def test_twenty_flavors(self):
        assert len(FLAVORS) == 20
        assert len(set(FLAVORS)) == 20

    def test_ground_truth_order_matches_scores(self):
        scores = chocolateyness_scores()
        assert list(FLAVORS) == sorted(FLAVORS, key=lambda flavor: -scores[flavor])

    def test_chocolate_flavors_at_top_fruit_at_bottom(self):
        assert "chocolate" in FLAVORS[0]
        assert FLAVORS[-1] == "lemon sorbet"

    def test_oracle_knows_criterion(self):
        oracle = flavor_oracle()
        assert oracle.knows_criterion(CHOCOLATEY)
        assert oracle.compare(FLAVORS[0], FLAVORS[-1], CHOCOLATEY) == 1


class TestCitationCorpus:
    def test_corpus_structure(self):
        corpus = generate_citation_corpus(n_entities=10, n_pairs=30, seed=1)
        assert len(corpus.dataset) >= 20  # at least two records per entity
        assert len(corpus.pairs) == 30
        assert set(corpus.entity_of) == {record.record_id for record in corpus.dataset}

    def test_reproducibility(self):
        first = generate_citation_corpus(n_entities=8, n_pairs=20, seed=4)
        second = generate_citation_corpus(n_entities=8, n_pairs=20, seed=4)
        assert first.texts() == second.texts()
        assert [pair.is_duplicate for pair in first.pairs] == [
            pair.is_duplicate for pair in second.pairs
        ]

    def test_positive_fraction_respected(self):
        corpus = generate_citation_corpus(
            n_entities=30, n_pairs=100, positive_fraction=0.3, seed=2
        )
        assert corpus.duplicate_rate() == pytest.approx(0.3, abs=0.05)

    def test_pair_labels_consistent_with_entities(self):
        corpus = generate_citation_corpus(n_entities=15, n_pairs=40, seed=3)
        for pair in corpus.pairs:
            same = corpus.entity_of[pair.left_id] == corpus.entity_of[pair.right_id]
            assert same == pair.is_duplicate

    def test_oracle_grounds_citation_texts(self):
        corpus = generate_citation_corpus(n_entities=10, n_pairs=20, seed=5)
        oracle = corpus.oracle()
        record = corpus.dataset[0]
        assert oracle.knows_entity(render_citation(record))

    def test_duplicates_are_textually_varied(self):
        corpus = generate_citation_corpus(n_entities=10, n_pairs=20, seed=6)
        by_entity: dict[str, list[str]] = {}
        for record in corpus.dataset:
            by_entity.setdefault(corpus.entity_of[record.record_id], []).append(
                render_citation(record)
            )
        varied_clusters = [
            texts for texts in by_entity.values() if len(texts) > 1 and len(set(texts)) > 1
        ]
        assert varied_clusters  # corruption produced distinct variants

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            generate_citation_corpus(n_entities=1)
        with pytest.raises(DatasetError):
            generate_citation_corpus(duplicates_per_entity=(0, 2))


class TestImputationDatasets:
    @pytest.mark.parametrize("generator", [generate_restaurant_dataset, generate_buy_dataset])
    def test_structure(self, generator):
        data = generator(80, seed=7)
        assert len(data.queries) + len(data.reference) == 80
        assert set(data.ground_truth) == {record.record_id for record in data.queries}
        for record in data.queries:
            assert data.target_attribute not in record

    def test_restaurant_target_is_city(self):
        assert generate_restaurant_dataset(50, seed=1).target_attribute == "city"

    def test_buy_target_is_manufacturer(self):
        assert generate_buy_dataset(50, seed=1).target_attribute == "manufacturer"

    def test_oracle_knows_every_query(self):
        data = generate_restaurant_dataset(60, seed=8)
        oracle = data.oracle()
        for record in data.queries:
            serialized = data.serialized_query(record)
            assert oracle.true_value(serialized, "city") == data.ground_truth[record.record_id]

    def test_accuracy_scoring(self):
        data = generate_restaurant_dataset(60, seed=9)
        perfect = dict(data.ground_truth)
        assert data.accuracy(perfect) == 1.0
        assert data.accuracy({}) == 0.0
        # Case-insensitive comparison.
        lowered = {key: value.lower() for key, value in data.ground_truth.items()}
        assert data.accuracy(lowered) == 1.0

    def test_too_small_dataset_rejected(self):
        with pytest.raises(DatasetError):
            generate_restaurant_dataset(5)

    def test_reproducibility(self):
        first = generate_buy_dataset(60, seed=10)
        second = generate_buy_dataset(60, seed=10)
        assert first.ground_truth == second.ground_truth


class TestSplits:
    def test_three_way_split_sizes(self):
        data = generate_restaurant_dataset(100, seed=11)
        split = train_validation_test_split(
            data.reference, validation_fraction=0.1, test_fraction=0.2, seed=1
        )
        total = len(split.train) + len(split.validation) + len(split.test)
        assert total == len(data.reference)
        assert len(split.validation) == pytest.approx(len(data.reference) * 0.1, abs=1)

    def test_split_is_reproducible(self):
        data = generate_restaurant_dataset(100, seed=11)
        first = train_validation_test_split(data.reference, seed=2)
        second = train_validation_test_split(data.reference, seed=2)
        assert [r.record_id for r in first.test] == [r.record_id for r in second.test]

    def test_invalid_fractions(self):
        data = generate_restaurant_dataset(50, seed=12)
        with pytest.raises(DatasetError):
            train_validation_test_split(data.reference, validation_fraction=0.6, test_fraction=0.5)
        with pytest.raises(DatasetError):
            train_validation_test_split(data.reference, validation_fraction=-0.1)
