"""Tests for transitivity, graph repair, and ranking repair."""

from __future__ import annotations

import pytest

from repro.consistency.graph_repair import repair_with_evidence
from repro.consistency.ranking_repair import (
    alignment_insert_position,
    best_consistent_order,
    count_inversions,
    minimum_feedback_edges,
)
from repro.consistency.transitivity import MatchGraph, connected_components, transitive_closure_pairs


class TestMatchGraph:
    def test_transitive_connection(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_match("b", "c")
        graph.add_non_match("a", "c")
        assert graph.connected("a", "c") is True
        assert graph.has_match_edge("a", "c") is False
        assert graph.has_non_match("a", "c") is True

    def test_conflicts_are_the_flippable_pairs(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_match("b", "c")
        graph.add_non_match("a", "c")
        graph.add_non_match("a", "d")
        conflicts = graph.conflicts()
        assert frozenset(("a", "c")) in conflicts
        assert frozenset(("a", "d")) not in conflicts

    def test_components(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_node("z")
        components = graph.components()
        assert {"a", "b"} in components
        assert {"z"} in components

    def test_unknown_nodes_not_connected(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        assert graph.connected("a", "zzz") is False

    def test_self_connection(self):
        graph = MatchGraph()
        graph.add_node("a")
        assert graph.connected("a", "a") is True

    def test_transitive_matches_cover_whole_component(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_match("b", "c")
        graph.add_match("c", "d")
        closure = graph.transitive_matches()
        assert frozenset(("a", "d")) in closure
        assert len(closure) == 6  # C(4, 2)


class TestModuleHelpers:
    def test_connected_components(self):
        components = connected_components([("a", "b"), ("c", "d"), ("b", "e")])
        assert {"a", "b", "e"} in components
        assert {"c", "d"} in components

    def test_transitive_closure_pairs(self):
        closure = transitive_closure_pairs([("a", "b"), ("b", "c")])
        assert frozenset(("a", "c")) in closure


class TestEvidenceRepair:
    def _graph(self) -> MatchGraph:
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_match("b", "c")
        graph.add_non_match("a", "c")  # contradicted by transitivity
        graph.add_non_match("a", "d")  # genuinely different
        graph.add_node("d")
        return graph

    def test_no_edges_flipped_to_match(self):
        result = repair_with_evidence(self._graph())
        assert frozenset(("a", "c")) in result.flipped_to_match
        assert frozenset(("a", "c")) in result.matches
        assert frozenset(("a", "d")) not in result.matches

    def test_yes_flip_disabled_by_default(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_non_match("a", "b")
        result = repair_with_evidence(graph)
        assert frozenset(("a", "b")) in result.matches
        assert not result.flipped_to_non_match

    def test_yes_flip_demotes_unsupported_edges(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_non_match("a", "b")  # conflicting evidence, no common neighbors
        result = repair_with_evidence(graph, flip_yes=True)
        assert frozenset(("a", "b")) not in result.matches
        assert frozenset(("a", "b")) in result.flipped_to_non_match

    def test_supported_yes_edge_survives_yes_flip(self):
        graph = MatchGraph()
        graph.add_match("a", "b")
        graph.add_match("a", "c")
        graph.add_match("b", "c")
        graph.add_non_match("a", "b")
        result = repair_with_evidence(graph, flip_yes=True, flip_yes_threshold=1)
        assert frozenset(("a", "b")) in result.matches


class TestAlignmentInsertion:
    def test_perfect_comparisons_give_correct_position(self):
        sorted_items = ["apple", "banana", "cherry", "date"]
        # "coconut" belongs between "cherry" and "date" alphabetically? No:
        # apple < banana < cherry < coconut < date.
        comparisons = {item: "coconut" < item for item in sorted_items}
        assert alignment_insert_position(sorted_items, comparisons) == 3

    def test_single_early_mistake_does_not_derail(self):
        sorted_items = ["apple", "banana", "cherry", "date", "elder"]
        comparisons = {item: "dew" < item for item in sorted_items}
        comparisons["apple"] = True  # wrong answer at the very first index
        assert alignment_insert_position(sorted_items, comparisons) == 4

    def test_insert_at_front_and_back(self):
        sorted_items = ["b", "c", "d"]
        assert alignment_insert_position(sorted_items, {item: True for item in sorted_items}) == 0
        assert alignment_insert_position(sorted_items, {item: False for item in sorted_items}) == 3

    def test_empty_list_inserts_at_zero(self):
        assert alignment_insert_position([], {}) == 0


class TestRankingRepair:
    def test_count_inversions(self):
        comparisons = {("a", "b"): True, ("b", "c"): True, ("a", "c"): False}
        assert count_inversions(["a", "b", "c"], comparisons) == 1
        assert count_inversions(["c", "b", "a"], comparisons) == 2

    def test_minimum_feedback_edges_exact_small(self):
        # One contradictory edge in an otherwise consistent triangle.
        comparisons = {("a", "b"): True, ("b", "c"): True, ("a", "c"): False}
        assert minimum_feedback_edges(["a", "b", "c"], comparisons) == 1

    def test_consistent_comparisons_need_no_flips(self):
        comparisons = {("a", "b"): True, ("b", "c"): True, ("a", "c"): True}
        assert minimum_feedback_edges(["a", "b", "c"], comparisons) == 0

    def test_best_consistent_order_recovers_truth_with_few_errors(self):
        items = list("abcdefgh")
        comparisons = {}
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                comparisons[(items[i], items[j])] = True  # a before b before c ...
        # Inject two wrong comparisons.
        comparisons[("a", "b")] = False
        comparisons[("c", "f")] = False
        order = best_consistent_order(items, comparisons)
        assert count_inversions(order, comparisons) <= 2
        # The order should still be close to the truth: 'a' near the front.
        assert order.index("a") <= 1
