"""Tests for prompt templates and the structured prompt round-trip."""

from __future__ import annotations

import pytest

from repro.exceptions import ResponseParseError
from repro.llm.prompts import (
    PromptTemplate,
    build_structured_prompt,
    duplicate_check_prompt,
    estimate_count_prompt,
    group_records_prompt,
    impute_prompt,
    pairwise_comparison_prompt,
    parse_structured_prompt,
    predicate_check_prompt,
    rating_batch_prompt,
    rating_prompt,
    sort_list_prompt,
    verify_answer_prompt,
)


class TestPromptTemplate:
    def test_render_substitutes_fields(self):
        template = PromptTemplate("Sort by {criterion}: {items}")
        assert template.fields == {"criterion", "items"}
        rendered = template.render(criterion="size", items="a, b")
        assert "Sort by size" in rendered

    def test_missing_field_raises(self):
        template = PromptTemplate("Value: {value}")
        with pytest.raises(KeyError):
            template.render()

    def test_examples_are_prepended(self):
        template = PromptTemplate("Task: {task}")
        rendered = template.render(
            task="impute", examples=[{"input": "a", "output": "b"}]
        )
        assert rendered.index("Input: a") < rendered.index("Task: impute")
        assert "Output: b" in rendered


class TestStructuredPromptRoundTrip:
    def test_round_trip_preserves_task_fields_items(self):
        prompt = build_structured_prompt(
            "pairwise_comparison",
            fields={"criterion": "chocolatey"},
            items=["dark chocolate", "lemon sorbet"],
            instructions="Answer A or B.",
        )
        parsed = parse_structured_prompt(prompt)
        assert parsed.task == "pairwise_comparison"
        assert parsed.fields["criterion"] == "chocolatey"
        assert parsed.items == ["dark chocolate", "lemon sorbet"]
        assert "Answer A or B." in parsed.instructions
        assert parsed.has_examples is False

    def test_examples_flag_round_trips(self):
        prompt = build_structured_prompt(
            "impute",
            fields={"attribute": "city"},
            items=["name is X"],
            instructions="Answer.",
            examples=[{"input": "name is Y", "output": "Austin"}],
        )
        parsed = parse_structured_prompt(prompt)
        assert parsed.has_examples is True

    def test_unstructured_prompt_raises(self):
        with pytest.raises(ResponseParseError):
            parse_structured_prompt("please sort these words for me")

    def test_items_keep_order(self):
        items = [f"item {index}" for index in range(10)]
        parsed = parse_structured_prompt(build_structured_prompt("sort_list", items=items))
        assert parsed.items == items


class TestCanonicalPrompts:
    @pytest.mark.parametrize(
        ("builder", "args", "expected_task"),
        [
            (sort_list_prompt, (["a", "b"], "size"), "sort_list"),
            (pairwise_comparison_prompt, ("a", "b", "size"), "pairwise_comparison"),
            (rating_prompt, ("a", "size"), "rating"),
            (rating_batch_prompt, (["a", "b"], "size"), "rating"),
            (duplicate_check_prompt, ("cite a", "cite b"), "duplicate_check"),
            (group_records_prompt, (["r1", "r2"],), "group_records"),
            (impute_prompt, ("name is X", "city"), "impute"),
            (predicate_check_prompt, ("item", "is positive"), "predicate_check"),
            (estimate_count_prompt, (["a", "b"], "is positive"), "estimate_count"),
            (verify_answer_prompt, ("what is 2+2", "4"), "verify_answer"),
        ],
    )
    def test_builders_produce_parsable_prompts(self, builder, args, expected_task):
        parsed = parse_structured_prompt(builder(*args))
        assert parsed.task == expected_task

    def test_rating_prompt_carries_scale(self):
        parsed = parse_structured_prompt(rating_prompt("item", "size", 1, 5))
        assert parsed.fields["scale"] == "1-5"

    def test_impute_prompt_with_examples(self):
        prompt = impute_prompt("name is X", "city", [{"input": "name is Y", "output": "Austin"}])
        parsed = parse_structured_prompt(prompt)
        assert parsed.has_examples is True
        assert parsed.fields["attribute"] == "city"
