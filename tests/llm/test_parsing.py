"""Tests for answer extraction from free-text responses."""

from __future__ import annotations

import pytest

from repro.exceptions import ResponseParseError, SpecError
from repro.llm.parsing import (
    extract_choice,
    extract_groups,
    extract_integer,
    extract_json,
    extract_list,
    extract_ratings,
    extract_value,
    extract_yes_no,
)


class TestExtractYesNo:
    def test_plain_yes(self):
        assert extract_yes_no("Yes, they are the same.") is True

    def test_plain_no(self):
        assert extract_yes_no("No, these differ.") is False

    def test_first_occurrence_wins(self):
        # The chain-of-thought trap from the paper: starts No, ends Yes.
        assert extract_yes_no("No... although on reflection, yes they match.") is False

    def test_case_insensitive(self):
        assert extract_yes_no("YES definitely") is True

    def test_no_answer_raises(self):
        with pytest.raises(ResponseParseError):
            extract_yes_no("I cannot tell.")

    def test_word_boundaries_respected(self):
        # "Nothing" contains "no" but not as a standalone word... actually
        # "no" in "nothing" is not a word boundary match, so this must raise.
        with pytest.raises(ResponseParseError):
            extract_yes_no("Nothing conclusive here")


class TestExtractChoice:
    def test_choice_a(self):
        assert extract_choice("A. The first item is more chocolatey", ["A", "B"]) == "A"

    def test_choice_b_with_preamble(self):
        assert extract_choice("I would say B is ranked higher", ["A", "B"]) == "B"

    def test_missing_choice_raises(self):
        with pytest.raises(ResponseParseError):
            extract_choice("neither seems right", ["A", "B"])

    def test_empty_options_raise(self):
        with pytest.raises(SpecError):
            extract_choice("anything", [])


class TestExtractInteger:
    def test_simple_integer(self):
        assert extract_integer("5") == 5

    def test_integer_with_text(self):
        assert extract_integer("I would rate this a 6 out of 7") == 6

    def test_clamped_to_range(self):
        assert extract_integer("42", minimum=1, maximum=7) == 7
        assert extract_integer("-3", minimum=1, maximum=7) == 1

    def test_missing_integer_raises(self):
        with pytest.raises(ResponseParseError):
            extract_integer("no number here")


class TestExtractRatings:
    def test_one_rating_per_line(self):
        assert extract_ratings("1. 5\n2. 3\n3. 7", expected=3) == [5, 3, 7]

    def test_bare_ratings(self):
        assert extract_ratings("4 6", expected=2) == [4, 6]

    def test_too_few_ratings_raises(self):
        with pytest.raises(ResponseParseError):
            extract_ratings("only 1", expected=3)


class TestExtractList:
    def test_numbered_list(self):
        text = "Here is the sorted list:\n1. alpha\n2. beta\n3. gamma"
        assert extract_list(text) == ["alpha", "beta", "gamma"]

    def test_bulleted_list(self):
        assert extract_list("- one\n- two") == ["one", "two"]

    def test_parenthesis_numbering(self):
        assert extract_list("1) first\n2) second") == ["first", "second"]

    def test_preamble_lines_skipped(self):
        text = "Sure! Sorted by size:\n1. big\n2. small\nHope that helps."
        assert extract_list(text) == ["big", "small"]

    def test_no_items_raises(self):
        with pytest.raises(ResponseParseError):
            extract_list("I refuse to provide a list.")


class TestExtractGroups:
    def test_groups_per_line(self):
        assert extract_groups("0, 3\n1\n2, 4, 5") == [[0, 3], [1], [2, 4, 5]]

    def test_no_groups_raises(self):
        with pytest.raises(ResponseParseError):
            extract_groups("no indices at all")


class TestExtractValue:
    def test_last_line_wins(self):
        assert extract_value("Let me think.\nThe answer is clear.\nSan Francisco") == "San Francisco"

    def test_answer_prefix_stripped(self):
        assert extract_value("Answer: TomTom") == "TomTom"

    def test_quotes_stripped(self):
        assert extract_value('"Elgato"') == "Elgato"

    def test_empty_raises(self):
        with pytest.raises(ResponseParseError):
            extract_value("   \n  ")


class TestExtractJson:
    def test_object_extraction(self):
        assert extract_json('Here you go: {"a": 1, "b": [2, 3]}') == {"a": 1, "b": [2, 3]}

    def test_array_extraction(self):
        assert extract_json("result [1, 2, 3] done") == [1, 2, 3]

    def test_invalid_json_raises(self):
        with pytest.raises(ResponseParseError):
            extract_json("{not valid json")
