"""Tests for the retry wrapper."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ResponseParseError
from repro.llm.base import LLMResponse
from repro.llm.retry import RetryingClient
from repro.tokenizer.cost import Usage


class FlakyClient:
    """Stub client that fails validation for the first ``bad_attempts`` calls."""

    def __init__(self, bad_attempts: int) -> None:
        self.bad_attempts = bad_attempts
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        self.calls += 1
        text = "garbled ???" if self.calls <= self.bad_attempts else "Yes."
        return LLMResponse(
            text=text,
            model=model or "stub",
            usage=Usage(prompt_tokens=10, completion_tokens=5, calls=1),
            metadata={"temperature": temperature},
        )


def yes_no_validator(text: str) -> bool:
    if "yes" not in text.lower() and "no" not in text.lower():
        raise ResponseParseError("no yes/no answer", text)
    return True


class TestRetryingClient:
    def test_passthrough_without_validator(self):
        client = RetryingClient(FlakyClient(bad_attempts=5))
        response = client.complete("prompt")
        assert response.metadata["attempts"] == 1
        assert client.stats.retries == 0

    def test_retries_until_valid(self):
        flaky = FlakyClient(bad_attempts=2)
        client = RetryingClient(flaky, validator=yes_no_validator, max_retries=3)
        response = client.complete("prompt")
        assert response.text == "Yes."
        assert response.metadata["attempts"] == 3
        assert flaky.calls == 3
        assert client.stats.retries == 2
        assert client.stats.failures == 0

    def test_usage_accumulates_across_attempts(self):
        client = RetryingClient(FlakyClient(bad_attempts=1), validator=yes_no_validator)
        response = client.complete("prompt")
        assert response.usage.prompt_tokens == 20
        assert response.usage.calls == 2

    def test_gives_up_after_max_retries(self):
        flaky = FlakyClient(bad_attempts=10)
        client = RetryingClient(flaky, validator=yes_no_validator, max_retries=2)
        response = client.complete("prompt")
        assert response.metadata["attempts"] == 3
        assert client.stats.failures == 1
        assert "garbled" in response.text

    def test_retry_uses_higher_temperature(self):
        flaky = FlakyClient(bad_attempts=1)
        client = RetryingClient(
            flaky, validator=yes_no_validator, max_retries=1, retry_temperature=0.9
        )
        response = client.complete("prompt", temperature=0.0)
        assert response.metadata["temperature"] == 0.9

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            RetryingClient(FlakyClient(0), max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryingClient(FlakyClient(0), retry_temperature=-0.5)

    def test_validator_returning_false_triggers_retry(self):
        flaky = FlakyClient(bad_attempts=1)
        client = RetryingClient(
            flaky, validator=lambda text: "yes" in text.lower(), max_retries=2
        )
        response = client.complete("prompt")
        assert response.text == "Yes."
        assert response.metadata["attempts"] == 2
