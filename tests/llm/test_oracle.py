"""Tests for the ground-truth oracle."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.llm.oracle import Oracle, prefix_margin


class TestPrefixMargin:
    def test_identical_strings_have_zero_margin(self):
        assert prefix_margin("apple", "Apple") == 0.0

    def test_different_first_letter_is_easy(self):
        assert prefix_margin("apple", "zebra") > 0.8

    def test_long_shared_prefix_is_hard(self):
        assert prefix_margin("abandonment", "abandonments") < 0.2

    def test_empty_string_is_easy(self):
        assert prefix_margin("", "anything") == 1.0

    def test_margin_has_floor(self):
        assert prefix_margin("aaaa", "aaab") >= 0.05


class TestScoreCriteria:
    def test_register_and_score(self):
        oracle = Oracle()
        oracle.register_scores("size", {"ant": 1.0, "elephant": 10.0})
        assert oracle.score("elephant", "size") == 10.0
        assert oracle.has_scores("size")
        assert oracle.knows_criterion("size")

    def test_empty_scores_rejected(self):
        with pytest.raises(ConfigurationError):
            Oracle().register_scores("size", {})

    def test_compare_follows_scores(self):
        oracle = Oracle()
        oracle.register_scores("size", {"ant": 1.0, "elephant": 10.0, "cat": 1.0})
        assert oracle.compare("elephant", "ant", "size") == 1
        assert oracle.compare("ant", "elephant", "size") == -1
        assert oracle.compare("ant", "cat", "size") == 0

    def test_margin_normalised_to_unit_interval(self):
        oracle = Oracle()
        oracle.register_scores("size", {"a": 0.0, "b": 5.0, "c": 10.0})
        assert oracle.margin("a", "c", "size") == pytest.approx(1.0)
        assert oracle.margin("a", "b", "size") == pytest.approx(0.5)

    def test_normalized_score(self):
        oracle = Oracle()
        oracle.register_scores("size", {"a": 0.0, "b": 10.0})
        assert oracle.normalized_score("a", "size") == 0.0
        assert oracle.normalized_score("b", "size") == 1.0

    def test_true_order_descending_scores(self):
        oracle = Oracle()
        oracle.register_scores("size", {"a": 1.0, "b": 3.0, "c": 2.0})
        assert oracle.true_order(["a", "b", "c"], "size") == ["b", "c", "a"]

    def test_unknown_criterion_raises(self):
        with pytest.raises(KeyError):
            Oracle().compare("a", "b", "nope")


class TestKeyCriteria:
    def test_key_based_compare(self):
        oracle = Oracle()
        oracle.register_key("alpha", lambda word: word.lower())
        assert oracle.compare("apple", "zebra", "alpha") == 1
        assert oracle.compare("zebra", "apple", "alpha") == -1

    def test_reverse_key(self):
        oracle = Oracle()
        oracle.register_key("reverse-alpha", lambda word: word.lower(), reverse=True)
        assert oracle.compare("apple", "zebra", "reverse-alpha") == -1

    def test_key_based_score_raises(self):
        oracle = Oracle()
        oracle.register_key("alpha", lambda word: word.lower())
        with pytest.raises(KeyError):
            oracle.score("apple", "alpha")

    def test_true_order_with_key(self):
        oracle = Oracle()
        oracle.register_key("alpha", lambda word: word.lower())
        assert oracle.true_order(["cherry", "Apple", "banana"], "alpha") == [
            "Apple",
            "banana",
            "cherry",
        ]

    def test_margin_defaults_to_prefix_margin(self):
        oracle = Oracle()
        oracle.register_key("alpha", lambda word: word.lower())
        assert oracle.margin("aardvark", "aardwolf", "alpha") < oracle.margin(
            "aardvark", "zebra", "alpha"
        )


class TestEntitiesValuesPredicates:
    def test_entities(self):
        oracle = Oracle()
        oracle.register_entities({"rec a": "e1", "rec b": "e1", "rec c": "e2"})
        assert oracle.same_entity("rec a", "rec b") is True
        assert oracle.same_entity("rec a", "rec c") is False
        assert oracle.knows_entity("rec a")
        assert not oracle.knows_entity("rec z")

    def test_values(self):
        oracle = Oracle()
        oracle.register_value("name is X", "city", "Austin")
        assert oracle.true_value("name is X", "city") == "Austin"
        assert oracle.knows_value("name is X", "city")
        assert not oracle.knows_value("name is X", "state")

    def test_predicates(self):
        oracle = Oracle()
        oracle.register_predicate("is long", lambda item: len(item) > 5)
        assert oracle.satisfies("elephant", "is long") is True
        assert oracle.satisfies("ant", "is long") is False
        assert oracle.knows_predicate("is long")
        assert not oracle.knows_predicate("other")
