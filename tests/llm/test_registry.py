"""Tests for the model registry."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownModelError
from repro.llm.registry import ModelRegistry, ModelSpec, default_registry
from repro.tokenizer.cost import PriceTable
from repro.exceptions import ConfigurationError


class TestModelSpec:
    def test_invalid_context_length(self):
        with pytest.raises(ConfigurationError):
            ModelSpec(name="x", context_length=0, prices=PriceTable(1, 1))

    def test_invalid_quality(self):
        with pytest.raises(ConfigurationError):
            ModelSpec(name="x", context_length=10, prices=PriceTable(1, 1), quality=1.5)

    def test_invalid_kind(self):
        with pytest.raises(ConfigurationError):
            ModelSpec(name="x", context_length=10, prices=PriceTable(1, 1), kind="image")


class TestModelRegistry:
    def test_register_and_get(self):
        registry = ModelRegistry()
        spec = ModelSpec(name="m", context_length=100, prices=PriceTable(1, 2))
        registry.register(spec)
        assert registry.get("m") is spec
        assert "m" in registry

    def test_unknown_model_raises_with_known_names(self):
        registry = default_registry()
        with pytest.raises(UnknownModelError) as excinfo:
            registry.get("gpt-99")
        assert "sim-gpt-3.5-turbo" in str(excinfo.value)

    def test_names_filtered_by_kind(self):
        registry = default_registry()
        assert "sim-embedding-ada-002" in registry.names(kind="embedding")
        assert "sim-embedding-ada-002" not in registry.names(kind="chat")

    def test_chat_models_sorted_by_cost(self):
        ordered = default_registry().chat_models_by_cost()
        prices = [spec.prices.prompt_price_per_million for spec in ordered]
        assert prices == sorted(prices)
        assert ordered[0].name == "sim-small"

    def test_cost_model_covers_every_model(self):
        registry = default_registry()
        cost_model = registry.cost_model()
        for name in registry.names():
            assert cost_model.has_model(name)

    def test_default_registry_claude2_has_long_context(self):
        assert default_registry().get("sim-claude-2").context_length >= 100_000
