"""Tests for the hashing embedder and the cascade / ensemble routers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.exceptions import ConfigurationError
from repro.llm.embeddings import HashingEmbedder
from repro.llm.prompts import pairwise_comparison_prompt
from repro.llm.router import CascadeRouter, CascadeTier, EnsembleClient
from repro.llm.simulated import SimulatedLLM


class TestHashingEmbedder:
    def test_embedding_is_unit_norm(self):
        vector = HashingEmbedder().embed("indexing the positions of continuous queries")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_embedding_is_deterministic(self):
        embedder = HashingEmbedder()
        first = embedder.embed("declarative crowdsourcing")
        second = embedder.embed("declarative crowdsourcing")
        assert np.allclose(first, second)

    def test_similar_strings_are_closer_than_dissimilar(self):
        embedder = HashingEmbedder()
        base = embedder.embed("Indexing the Positions of Continuously Moving Objects. SIGMOD")
        near = embedder.embed("indexing the positions of continuously moving objects. sigmod 2000")
        far = embedder.embed("A Completely Different Paper About Neural Networks. NeurIPS")
        assert HashingEmbedder.l2_distance(base, near) < HashingEmbedder.l2_distance(base, far)

    def test_batch_shape(self):
        matrix = HashingEmbedder(dimensions=64).embed_batch(["a b c", "d e f"])
        assert matrix.shape == (2, 64)

    def test_empty_batch(self):
        assert HashingEmbedder().embed_batch([]).shape[0] == 0

    def test_nearest_neighbors_exclude_self_and_respect_k(self):
        texts = ["alpha beta", "alpha beta gamma", "zeta omega", "zeta omega psi"]
        neighbors = HashingEmbedder().nearest_neighbors(texts, k=1)
        assert neighbors[0] == [1]
        assert neighbors[2] == [3]
        assert all(len(v) == 1 for v in neighbors.values())

    def test_nearest_neighbors_k_zero(self):
        neighbors = HashingEmbedder().nearest_neighbors(["a", "b"], k=0)
        assert neighbors == {0: [], 1: []}

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            HashingEmbedder(dimensions=0)
        with pytest.raises(ConfigurationError):
            HashingEmbedder(ngram_sizes=())
        with pytest.raises(ConfigurationError):
            HashingEmbedder().nearest_neighbors(["a"], k=-1)

    def test_usage_is_tracked(self):
        embedder = HashingEmbedder()
        embedder.embed("some text to embed")
        assert embedder.usage.calls == 1
        assert embedder.usage.prompt_tokens > 0


class TestCascadeRouter:
    def _tiers(self):
        oracle = flavor_oracle()
        client = SimulatedLLM(oracle, seed=5)
        return [
            CascadeTier(model="sim-small", client=client),
            CascadeTier(model="sim-gpt-4", client=client),
        ]

    def test_empty_cascade_rejected(self):
        with pytest.raises(ConfigurationError):
            CascadeRouter([])

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            CascadeRouter(self._tiers(), confidence_threshold=1.5)

    def test_high_threshold_escalates(self):
        router = CascadeRouter(self._tiers(), confidence_threshold=0.999)
        prompt = pairwise_comparison_prompt(FLAVORS[9], FLAVORS[10], CHOCOLATEY)
        response = router.complete(prompt)
        assert response.metadata["cascade_tiers"] == ["sim-small", "sim-gpt-4"]
        assert router.escalations >= 1

    def test_low_threshold_stays_on_cheap_tier(self):
        router = CascadeRouter(self._tiers(), confidence_threshold=0.0)
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[-1], CHOCOLATEY)
        response = router.complete(prompt)
        assert response.metadata["cascade_tiers"] == ["sim-small"]

    def test_usage_accumulates_across_tiers(self):
        router = CascadeRouter(self._tiers(), confidence_threshold=0.999)
        prompt = pairwise_comparison_prompt(FLAVORS[9], FLAVORS[10], CHOCOLATEY)
        response = router.complete(prompt)
        assert response.usage.calls == 2


class TestEnsembleClient:
    def test_empty_ensemble_rejected(self):
        with pytest.raises(ConfigurationError):
            EnsembleClient([])

    def test_complete_all_returns_every_member(self):
        oracle = flavor_oracle()
        client = SimulatedLLM(oracle, seed=6)
        ensemble = EnsembleClient(
            [
                CascadeTier(model="sim-gpt-3.5-turbo", client=client),
                CascadeTier(model="sim-claude", client=client),
                CascadeTier(model="sim-small", client=client),
            ]
        )
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[5], CHOCOLATEY)
        result = ensemble.complete_all(prompt)
        assert len(result.responses) == 3
        assert result.usage.calls == 3
        assert len(result.texts) == 3

    def test_llmclient_compatible_complete(self):
        oracle = flavor_oracle()
        client = SimulatedLLM(oracle, seed=6)
        ensemble = EnsembleClient([CascadeTier(model="sim-claude", client=client)])
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[5], CHOCOLATEY)
        assert ensemble.complete(prompt).model == "sim-claude"
