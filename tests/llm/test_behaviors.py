"""Tests for the simulated LLM behaviour (error) models.

These tests exercise the behaviours through the public SimulatedLLM surface by
building structured prompts, so they cover the full prompt → parse → answer
path, and assert *statistical* properties (error rates within expected bands)
rather than exact responses.
"""

from __future__ import annotations

import random

import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.data.words import random_words
from repro.llm.behaviors import BehaviorConfig, quality_multiplier
from repro.llm.oracle import Oracle, prefix_margin
from repro.llm.parsing import (
    extract_choice,
    extract_integer,
    extract_list,
    extract_value,
    extract_yes_no,
)
from repro.llm.prompts import (
    duplicate_check_prompt,
    estimate_count_prompt,
    group_records_prompt,
    impute_prompt,
    pairwise_comparison_prompt,
    predicate_check_prompt,
    rating_prompt,
    sort_list_prompt,
)
from repro.llm.simulated import SimulatedLLM


class TestQualityMultiplier:
    def test_reference_quality_keeps_error_rates(self):
        assert quality_multiplier(0.8) == pytest.approx(1.0)

    def test_lower_quality_is_noisier(self):
        assert quality_multiplier(0.5) > quality_multiplier(0.8)

    def test_higher_quality_is_cleaner(self):
        assert quality_multiplier(0.95) < quality_multiplier(0.8)

    def test_multiplier_is_bounded(self):
        assert 0.25 <= quality_multiplier(0.0) <= 3.0
        assert 0.25 <= quality_multiplier(1.0) <= 3.0


class TestPairwiseComparisonBehavior:
    def test_easy_comparisons_are_mostly_correct(self, flavor_llm):
        top, bottom = FLAVORS[0], FLAVORS[-1]
        correct = 0
        for seed in range(40):
            llm = SimulatedLLM(flavor_oracle(), seed=seed)
            response = llm.complete(pairwise_comparison_prompt(top, bottom, CHOCOLATEY))
            if extract_choice(response.text, ["A", "B"]) == "A":
                correct += 1
        assert correct >= 36  # easy pair: error rate well under 10%

    def test_hard_comparisons_are_noisier_than_easy_ones(self):
        adjacent_errors = 0
        extreme_errors = 0
        for seed in range(60):
            llm = SimulatedLLM(flavor_oracle(), seed=seed)
            hard = llm.complete(pairwise_comparison_prompt(FLAVORS[8], FLAVORS[9], CHOCOLATEY))
            easy = llm.complete(pairwise_comparison_prompt(FLAVORS[0], FLAVORS[19], CHOCOLATEY))
            if extract_choice(hard.text, ["A", "B"]) != "A":
                adjacent_errors += 1
            if extract_choice(easy.text, ["A", "B"]) != "A":
                extreme_errors += 1
        assert adjacent_errors > extreme_errors

    def test_deterministic_at_temperature_zero(self, flavor_llm):
        prompt = pairwise_comparison_prompt(FLAVORS[3], FLAVORS[4], CHOCOLATEY)
        first = flavor_llm.complete(prompt)
        second = flavor_llm.complete(prompt)
        assert first.text == second.text


class TestRatingBehavior:
    def test_rating_within_scale(self, flavor_llm):
        for flavor in FLAVORS[:5]:
            response = flavor_llm.complete(rating_prompt(flavor, CHOCOLATEY))
            assert 1 <= extract_integer(response.text) <= 7

    def test_top_items_rate_higher_on_average(self):
        top_total = 0
        bottom_total = 0
        for seed in range(25):
            llm = SimulatedLLM(flavor_oracle(), seed=seed)
            top_total += extract_integer(
                llm.complete(rating_prompt(FLAVORS[0], CHOCOLATEY)).text
            )
            bottom_total += extract_integer(
                llm.complete(rating_prompt(FLAVORS[-1], CHOCOLATEY)).text
            )
        assert top_total > bottom_total + 25  # at least one point apart on average


class TestSortListBehavior:
    def test_short_subjective_list_keeps_all_items(self, flavor_llm):
        response = flavor_llm.complete(sort_list_prompt(list(FLAVORS), CHOCOLATEY))
        items = extract_list(response.text)
        assert set(items) == set(FLAVORS)

    def test_long_list_drops_some_items(self, alphabetical_llm):
        words = random_words(100, seed=3)
        response = alphabetical_llm.complete(
            sort_list_prompt(words, "alphabetical order"), model="sim-claude-2"
        )
        returned = extract_list(response.text)
        missing = set(words) - set(returned)
        assert 1 <= len(missing) <= 15

    def test_objective_ordering_is_nearly_correct(self, alphabetical_llm):
        words = random_words(60, seed=5)
        response = alphabetical_llm.complete(
            sort_list_prompt(words, "alphabetical order"), model="sim-claude-2"
        )
        returned = [word for word in extract_list(response.text) if word in set(words)]
        truth = sorted(words, key=str.lower)
        positions = {word: index for index, word in enumerate(truth)}
        inversions = sum(
            1
            for i in range(len(returned))
            for j in range(i + 1, len(returned))
            if positions[returned[i]] > positions[returned[j]]
        )
        total_pairs = len(returned) * (len(returned) - 1) / 2
        assert inversions / total_pairs < 0.05


class TestDuplicateCheckBehavior:
    def test_non_duplicates_rarely_marked_yes(self, citation_corpus):
        llm = SimulatedLLM(citation_corpus.oracle(), seed=1)
        false_positives = 0
        negatives = [pair for pair in citation_corpus.pairs if not pair.is_duplicate]
        for pair in negatives:
            response = llm.complete(duplicate_check_prompt(pair.left_text, pair.right_text))
            if extract_yes_no(response.text):
                false_positives += 1
        assert false_positives <= max(1, len(negatives) // 10)

    def test_duplicates_missed_at_a_substantial_rate(self, citation_corpus):
        llm = SimulatedLLM(citation_corpus.oracle(), seed=1)
        hits = 0
        positives = [pair for pair in citation_corpus.pairs if pair.is_duplicate]
        for pair in positives:
            response = llm.complete(duplicate_check_prompt(pair.left_text, pair.right_text))
            if extract_yes_no(response.text):
                hits += 1
        recall = hits / len(positives)
        assert 0.2 <= recall <= 0.9  # low-ish recall, as the paper observed


class TestImputeBehavior:
    def test_examples_improve_accuracy(self, restaurant_data):
        def run(n_examples):
            llm = SimulatedLLM(restaurant_data.oracle(), seed=2)
            correct = 0
            for record in restaurant_data.queries.records[:30]:
                serialized = restaurant_data.serialized_query(record)
                examples = (
                    [{"input": "name is Example", "output": "Austin"}] * n_examples
                    if n_examples
                    else None
                )
                response = llm.complete(impute_prompt(serialized, "city", examples))
                if (
                    extract_value(response.text).lower()
                    == restaurant_data.ground_truth[record.record_id].lower()
                ):
                    correct += 1
            return correct

        assert run(3) >= run(0)


class TestPredicateAndCountBehaviors:
    def _oracle(self):
        oracle = Oracle()
        oracle.register_predicate("is long", lambda item: len(item) > 6)
        return oracle

    def test_predicate_check_mostly_correct(self):
        oracle = self._oracle()
        items = ["cat", "dog", "elephant", "hippopotamus", "ox", "crocodile"] * 5
        correct = 0
        llm = SimulatedLLM(oracle, seed=3)
        for item in items:
            response = llm.complete(predicate_check_prompt(item, "is long"))
            if extract_yes_no(response.text) == (len(item) > 6):
                correct += 1
        assert correct / len(items) > 0.8

    def test_estimate_count_in_plausible_range(self):
        oracle = self._oracle()
        items = ["short", "tiny", "enormousanimal", "gigantenormous", "big", "sizeable"]
        llm = SimulatedLLM(oracle, seed=4)
        response = llm.complete(estimate_count_prompt(items, "is long"))
        estimate = extract_integer(response.text, minimum=0, maximum=len(items))
        assert 0 <= estimate <= len(items)


class TestGroupRecordsBehavior:
    def test_groups_cover_valid_indices(self, citation_corpus):
        llm = SimulatedLLM(citation_corpus.oracle(), seed=5)
        texts = citation_corpus.texts()[:15]
        response = llm.complete(group_records_prompt(texts))
        from repro.llm.parsing import extract_groups

        groups = extract_groups(response.text)
        flattened = [index for group in groups for index in group]
        assert all(0 <= index < len(texts) for index in flattened)


class TestBehaviorConfig:
    def test_config_is_frozen(self):
        config = BehaviorConfig()
        with pytest.raises(AttributeError):
            config.comparison_base_error = 0.5  # type: ignore[misc]

    def test_corrupt_word_changes_word(self):
        from repro.llm.behaviors import _corrupt_word

        rng = random.Random(0)
        assert _corrupt_word("chocolate", rng) != "chocolate"
