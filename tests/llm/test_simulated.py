"""Tests for the SimulatedLLM client surface (context limits, usage, determinism)."""

from __future__ import annotations

import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.exceptions import ContextLengthExceededError, ResponseParseError, UnknownModelError
from repro.llm.prompts import pairwise_comparison_prompt, sort_list_prompt
from repro.llm.registry import ModelRegistry, ModelSpec, default_registry
from repro.llm.simulated import SimulatedLLM, _stable_seed
from repro.tokenizer.cost import PriceTable


class TestStableSeed:
    def test_same_inputs_same_seed(self):
        assert _stable_seed("a", 1, "b") == _stable_seed("a", 1, "b")

    def test_different_inputs_different_seed(self):
        assert _stable_seed("a") != _stable_seed("b")


class TestCompleteBasics:
    def test_usage_reflects_prompt_and_completion(self, flavor_llm):
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[1], CHOCOLATEY)
        response = flavor_llm.complete(prompt)
        assert response.usage.prompt_tokens > 0
        assert response.usage.completion_tokens > 0
        assert response.usage.calls == 1
        assert response.model == "sim-gpt-3.5-turbo"

    def test_unknown_model_raises(self, flavor_llm):
        with pytest.raises(UnknownModelError):
            flavor_llm.complete("### TASK: rating\n[0] x", model="nonexistent-model")

    def test_embedding_model_cannot_complete(self, flavor_llm):
        with pytest.raises(ResponseParseError):
            flavor_llm.complete("### TASK: rating\n[0] x", model="sim-embedding-ada-002")

    def test_confidence_within_unit_interval(self, flavor_llm):
        response = flavor_llm.complete(
            pairwise_comparison_prompt(FLAVORS[0], FLAVORS[-1], CHOCOLATEY)
        )
        assert 0.0 <= response.confidence <= 1.0

    def test_unstructured_prompt_gets_fallback_response(self, flavor_llm):
        response = flavor_llm.complete("please help me sort my sock drawer")
        assert response.text
        assert response.confidence <= 0.2

    def test_unknown_task_gets_fallback_response(self, flavor_llm):
        response = flavor_llm.complete("### TASK: write_poem\n[0] roses")
        assert "write_poem" in response.text


class TestDeterminismAndTemperature:
    def test_temperature_zero_is_deterministic(self, flavor_llm):
        prompt = pairwise_comparison_prompt(FLAVORS[5], FLAVORS[6], CHOCOLATEY)
        assert flavor_llm.complete(prompt).text == flavor_llm.complete(prompt).text

    def test_same_seed_same_behaviour_across_clients(self):
        prompt = pairwise_comparison_prompt(FLAVORS[5], FLAVORS[6], CHOCOLATEY)
        first = SimulatedLLM(flavor_oracle(), seed=99).complete(prompt)
        second = SimulatedLLM(flavor_oracle(), seed=99).complete(prompt)
        assert first.text == second.text

    def test_different_seeds_can_differ(self):
        prompt = sort_list_prompt(list(FLAVORS), CHOCOLATEY)
        texts = {
            SimulatedLLM(flavor_oracle(), seed=seed).complete(prompt).text for seed in range(5)
        }
        assert len(texts) > 1

    def test_nonzero_temperature_varies_across_calls(self):
        llm = SimulatedLLM(flavor_oracle(), seed=1)
        prompt = sort_list_prompt(list(FLAVORS), CHOCOLATEY)
        texts = {llm.complete(prompt, temperature=0.8).text for _ in range(5)}
        assert len(texts) > 1

    def test_reset_restores_sampling_sequence(self):
        llm = SimulatedLLM(flavor_oracle(), seed=1)
        prompt = sort_list_prompt(list(FLAVORS), CHOCOLATEY)
        first_run = [llm.complete(prompt, temperature=0.8).text for _ in range(3)]
        llm.reset()
        second_run = [llm.complete(prompt, temperature=0.8).text for _ in range(3)]
        assert first_run == second_run


class TestContextAndTruncation:
    def _tiny_registry(self) -> ModelRegistry:
        return ModelRegistry(
            [
                ModelSpec(
                    name="tiny",
                    context_length=60,
                    prices=PriceTable(1.0, 1.0),
                    quality=0.8,
                )
            ]
        )

    def test_prompt_exceeding_context_raises(self):
        llm = SimulatedLLM(flavor_oracle(), registry=self._tiny_registry(), default_model="tiny")
        long_prompt = sort_list_prompt(list(FLAVORS), CHOCOLATEY)
        with pytest.raises(ContextLengthExceededError) as excinfo:
            llm.complete(long_prompt)
        assert excinfo.value.context_length == 60

    def test_max_tokens_truncates_completion(self, flavor_llm):
        prompt = sort_list_prompt(list(FLAVORS), CHOCOLATEY)
        response = flavor_llm.complete(prompt, max_tokens=10)
        assert response.usage.completion_tokens <= 10
        assert response.finish_reason == "length"

    def test_default_registry_has_papers_models(self):
        registry = default_registry()
        for name in ("sim-gpt-3.5-turbo", "sim-claude-2", "sim-claude", "sim-embedding-ada-002"):
            assert name in registry
