"""Tests for the response cache and the usage tracker.

Includes the thread-safety hammer tests backing the batched execution layer:
the cache and tracker are pounded from a thread pool and must not lose a
single update (exact call/token totals, consistent hit/miss accounting).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS
from repro.llm.base import LLMResponse
from repro.llm.cache import CachedClient, ResponseCache
from repro.llm.prompts import pairwise_comparison_prompt, rating_prompt
from repro.llm.registry import default_registry
from repro.llm.tracker import TrackedClient, UsageTracker
from repro.tokenizer.cost import Usage
from repro.exceptions import ConfigurationError


class TestResponseCache:
    def test_put_then_get(self):
        cache = ResponseCache()
        response = LLMResponse(text="yes", model="m", usage=Usage(10, 2, 1))
        cache.put("m", "prompt", response)
        assert cache.get("m", "prompt") is response
        assert cache.stats.hits == 1

    def test_miss_recorded(self):
        cache = ResponseCache()
        assert cache.get("m", "prompt") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_lru_eviction(self):
        cache = ResponseCache(max_entries=2)
        for index in range(3):
            cache.put("m", f"prompt-{index}", LLMResponse(text=str(index), model="m"))
        assert cache.get("m", "prompt-0") is None  # evicted
        assert cache.get("m", "prompt-2") is not None

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ResponseCache(max_entries=0)

    def test_clear_resets_stats(self):
        cache = ResponseCache()
        cache.put("m", "p", LLMResponse(text="x", model="m"))
        cache.get("m", "p")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0


class TestCachedClient:
    def test_repeated_prompt_served_from_cache(self, flavor_llm):
        client = CachedClient(flavor_llm)
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[1], CHOCOLATEY)
        first = client.complete(prompt)
        second = client.complete(prompt)
        assert second.metadata.get("cache_hit") is True
        assert second.usage.total_tokens == 0
        assert second.text == first.text

    def test_nonzero_temperature_bypasses_cache(self, flavor_llm):
        client = CachedClient(flavor_llm)
        prompt = rating_prompt(FLAVORS[0], CHOCOLATEY)
        client.complete(prompt, temperature=0.7)
        second = client.complete(prompt, temperature=0.7)
        assert "cache_hit" not in second.metadata


class TestUsageTracker:
    def test_record_accumulates_per_model(self, flavor_llm):
        tracker = UsageTracker(cost_model=default_registry().cost_model())
        client = TrackedClient(flavor_llm, tracker)
        client.complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        client.complete(rating_prompt(FLAVORS[1], CHOCOLATEY), model="sim-claude")
        assert tracker.calls == 2
        assert tracker.prompt_tokens > 0
        summary = tracker.summary()
        assert set(summary.by_model) == {"sim-gpt-3.5-turbo", "sim-claude"}
        assert summary.total_dollars == pytest.approx(tracker.cost())
        assert tracker.cost() > 0.0

    def test_cost_zero_without_cost_model(self, flavor_llm):
        tracker = UsageTracker()
        TrackedClient(flavor_llm, tracker).complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        assert tracker.cost() == 0.0

    def test_record_usage_directly(self):
        tracker = UsageTracker()
        tracker.record_usage("embeddings", Usage(100, 0, 1))
        assert tracker.usage.prompt_tokens == 100

    def test_reset(self, flavor_llm):
        tracker = UsageTracker()
        TrackedClient(flavor_llm, tracker).complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        tracker.reset()
        assert tracker.calls == 0


# Pinned in CI (see .github/workflows/ci.yml) so the hammer tests are
# reproducible across runners; locally defaults to 8 threads.
THREADS = int(os.environ.get("REPRO_TEST_THREADS", "8"))


class TestResponseCacheThreadSafety:
    def test_no_lost_hit_or_miss_updates(self):
        cache = ResponseCache()
        prompts = [f"prompt-{index}" for index in range(50)]
        for prompt in prompts:
            cache.put("m", prompt, LLMResponse(text=prompt, model="m"))
        rounds_per_worker = 40

        def hammer(worker: int) -> int:
            hits = 0
            for round_index in range(rounds_per_worker):
                for prompt in prompts:
                    if cache.get("m", prompt) is not None:
                        hits += 1
                # Sprinkle misses and puts into the mix.
                assert cache.get("m", f"missing-{worker}-{round_index}") is None
                cache.put("m", f"extra-{worker}-{round_index}", LLMResponse(text="x", model="m"))
            return hits

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            hit_counts = list(pool.map(hammer, range(THREADS)))

        expected_hits = THREADS * rounds_per_worker * len(prompts)
        expected_misses = THREADS * rounds_per_worker
        assert sum(hit_counts) == expected_hits
        assert cache.stats.hits == expected_hits
        assert cache.stats.misses == expected_misses
        assert cache.stats.requests == expected_hits + expected_misses

    def test_concurrent_puts_respect_capacity(self):
        cache = ResponseCache(max_entries=64)

        def hammer(worker: int) -> None:
            for index in range(200):
                cache.put("m", f"prompt-{worker}-{index}", LLMResponse(text="x", model="m"))
                assert len(cache) <= 64

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))
        assert len(cache) == 64


class TestUsageTrackerThreadSafety:
    def test_no_lost_usage_updates(self):
        tracker = UsageTracker()
        per_worker = 500

        def hammer(worker: int) -> None:
            model = f"model-{worker % 3}"
            for _ in range(per_worker):
                tracker.record(
                    LLMResponse(text="x", model=model, usage=Usage(3, 2, 1))
                )

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        total_calls = THREADS * per_worker
        assert tracker.calls == total_calls
        assert tracker.prompt_tokens == 3 * total_calls
        assert tracker.completion_tokens == 2 * total_calls
        by_model = tracker.summary().by_model
        assert sum(usage.calls for usage in by_model.values()) == total_calls

    def test_no_lost_batch_updates(self):
        tracker = UsageTracker()
        batches_per_worker = 50
        batch_size = 10

        def hammer(worker: int) -> None:
            responses = [
                LLMResponse(text="x", model="m", usage=Usage(1, 1, 1)) for _ in range(batch_size)
            ]
            for _ in range(batches_per_worker):
                tracker.record_batch(responses)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            list(pool.map(hammer, range(THREADS)))

        assert tracker.calls == THREADS * batches_per_worker * batch_size
