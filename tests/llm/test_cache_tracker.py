"""Tests for the response cache and the usage tracker."""

from __future__ import annotations

import pytest

from repro.data.flavors import CHOCOLATEY, FLAVORS
from repro.llm.base import LLMResponse
from repro.llm.cache import CachedClient, ResponseCache
from repro.llm.prompts import pairwise_comparison_prompt, rating_prompt
from repro.llm.registry import default_registry
from repro.llm.tracker import TrackedClient, UsageTracker
from repro.tokenizer.cost import Usage


class TestResponseCache:
    def test_put_then_get(self):
        cache = ResponseCache()
        response = LLMResponse(text="yes", model="m", usage=Usage(10, 2, 1))
        cache.put("m", "prompt", response)
        assert cache.get("m", "prompt") is response
        assert cache.stats.hits == 1

    def test_miss_recorded(self):
        cache = ResponseCache()
        assert cache.get("m", "prompt") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_lru_eviction(self):
        cache = ResponseCache(max_entries=2)
        for index in range(3):
            cache.put("m", f"prompt-{index}", LLMResponse(text=str(index), model="m"))
        assert cache.get("m", "prompt-0") is None  # evicted
        assert cache.get("m", "prompt-2") is not None

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)

    def test_clear_resets_stats(self):
        cache = ResponseCache()
        cache.put("m", "p", LLMResponse(text="x", model="m"))
        cache.get("m", "p")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.requests == 0


class TestCachedClient:
    def test_repeated_prompt_served_from_cache(self, flavor_llm):
        client = CachedClient(flavor_llm)
        prompt = pairwise_comparison_prompt(FLAVORS[0], FLAVORS[1], CHOCOLATEY)
        first = client.complete(prompt)
        second = client.complete(prompt)
        assert second.metadata.get("cache_hit") is True
        assert second.usage.total_tokens == 0
        assert second.text == first.text

    def test_nonzero_temperature_bypasses_cache(self, flavor_llm):
        client = CachedClient(flavor_llm)
        prompt = rating_prompt(FLAVORS[0], CHOCOLATEY)
        client.complete(prompt, temperature=0.7)
        second = client.complete(prompt, temperature=0.7)
        assert "cache_hit" not in second.metadata


class TestUsageTracker:
    def test_record_accumulates_per_model(self, flavor_llm):
        tracker = UsageTracker(cost_model=default_registry().cost_model())
        client = TrackedClient(flavor_llm, tracker)
        client.complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        client.complete(rating_prompt(FLAVORS[1], CHOCOLATEY), model="sim-claude")
        assert tracker.calls == 2
        assert tracker.prompt_tokens > 0
        summary = tracker.summary()
        assert set(summary.by_model) == {"sim-gpt-3.5-turbo", "sim-claude"}
        assert summary.total_dollars == pytest.approx(tracker.cost())
        assert tracker.cost() > 0.0

    def test_cost_zero_without_cost_model(self, flavor_llm):
        tracker = UsageTracker()
        TrackedClient(flavor_llm, tracker).complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        assert tracker.cost() == 0.0

    def test_record_usage_directly(self):
        tracker = UsageTracker()
        tracker.record_usage("embeddings", Usage(100, 0, 1))
        assert tracker.usage.prompt_tokens == 100

    def test_reset(self, flavor_llm):
        tracker = UsageTracker()
        TrackedClient(flavor_llm, tracker).complete(rating_prompt(FLAVORS[0], CHOCOLATEY))
        tracker.reset()
        assert tracker.calls == 0
