"""Async-vs-sync equivalence for every client wrapper (`repro.llm.*`).

Each wrapper in the stack — :class:`SimulatedLLM`, :class:`CachedClient`,
:class:`TrackedClient`, :class:`RetryingClient`, :class:`CascadeRouter`,
:class:`EnsembleClient` — gained native ``acomplete`` / ``acomplete_batch``
methods.  At temperature 0 those must be element-wise identical to the sync
path (text, usage, metadata, and side effects such as cache stats and
tracker totals), for single calls and batches alike; sync-only clients keep
working through the :func:`~repro.llm.base.call_acomplete` bridge.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.data.words import random_words
from repro.llm.base import (
    LLMResponse,
    call_acomplete,
    call_acomplete_batch,
    sequential_acomplete_batch,
    sequential_complete_batch,
)
from repro.llm.cache import CachedClient
from repro.llm.oracle import Oracle
from repro.llm.prompts import rating_prompt
from repro.llm.retry import RetryingClient
from repro.llm.router import CascadeRouter, CascadeTier, EnsembleClient
from repro.llm.simulated import SimulatedLLM
from repro.llm.tracker import TrackedClient, UsageTracker
from repro.tokenizer.cost import Usage

CRITERION = "alphabetical order"
SIZES = (1, 2, 7)


def _simulated_client(seed: int = 3) -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key(CRITERION, lambda word: word.lower())
    return SimulatedLLM(oracle, seed=seed)


def _prompts(count: int) -> list[str]:
    return [rating_prompt(word, CRITERION) for word in random_words(count, seed=5)]


def _assert_equivalent(
    async_responses: list[LLMResponse], sync_responses: list[LLMResponse]
) -> None:
    assert [r.text for r in async_responses] == [r.text for r in sync_responses]
    assert [r.usage for r in async_responses] == [r.usage for r in sync_responses]
    assert [r.model for r in async_responses] == [r.model for r in sync_responses]


class TestSimulatedLLM:
    @pytest.mark.parametrize("size", SIZES)
    def test_batch_equivalence(self, size):
        prompts = _prompts(size)
        sync_responses = _simulated_client().complete_batch(prompts)
        async_responses = asyncio.run(_simulated_client().acomplete_batch(prompts))
        _assert_equivalent(async_responses, sync_responses)

    def test_single_equivalence(self):
        prompt = _prompts(1)[0]
        sync_response = _simulated_client().complete(prompt)
        async_response = asyncio.run(_simulated_client().acomplete(prompt))
        assert async_response.text == sync_response.text
        assert async_response.usage == sync_response.usage


class TestCachedClient:
    @pytest.mark.parametrize("size", SIZES)
    def test_batch_equivalence_with_dedup(self, size):
        prompts = _prompts(size) * 2  # repeats exercise within-batch dedup
        sync_client = CachedClient(_simulated_client())
        async_client = CachedClient(_simulated_client())
        sync_responses = sync_client.complete_batch(prompts)
        async_responses = asyncio.run(async_client.acomplete_batch(prompts))
        _assert_equivalent(async_responses, sync_responses)
        assert [r.metadata.get("cache_hit") for r in async_responses] == [
            r.metadata.get("cache_hit") for r in sync_responses
        ]
        assert async_client.cache.stats.hits == sync_client.cache.stats.hits
        assert async_client.cache.stats.misses == sync_client.cache.stats.misses

    def test_single_call_hits_after_miss(self):
        client = CachedClient(_simulated_client())
        prompt = _prompts(1)[0]

        async def twice():
            first = await client.acomplete(prompt)
            second = await client.acomplete(prompt)
            return first, second

        first, second = asyncio.run(twice())
        assert first.text == second.text
        assert second.metadata.get("cache_hit") is True
        assert second.usage.calls == 0


class TestTrackedClient:
    @pytest.mark.parametrize("size", SIZES)
    def test_batch_equivalence_and_tracking(self, size):
        prompts = _prompts(size)
        sync_tracker, async_tracker = UsageTracker(), UsageTracker()
        sync_responses = TrackedClient(_simulated_client(), sync_tracker).complete_batch(
            prompts
        )
        async_responses = asyncio.run(
            TrackedClient(_simulated_client(), async_tracker).acomplete_batch(prompts)
        )
        _assert_equivalent(async_responses, sync_responses)
        assert async_tracker.usage == sync_tracker.usage
        assert async_tracker.calls == sync_tracker.calls

    def test_single_call_is_recorded(self):
        tracker = UsageTracker()
        client = TrackedClient(_simulated_client(), tracker)
        asyncio.run(client.acomplete(_prompts(1)[0]))
        assert tracker.calls == 1


class FlakyClient:
    """Rejects the first ``rejections`` responses (via text), then succeeds."""

    def __init__(self, rejections: int) -> None:
        self.rejections = rejections
        self.calls = 0
        self._lock = threading.Lock()

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        with self._lock:
            self.calls += 1
            calls = self.calls
        text = "bad" if calls <= self.rejections else f"good:{prompt}"
        return LLMResponse(text=text, model=model or "flaky", usage=Usage(1, 1, 1))


class TestRetryingClient:
    def test_async_retries_match_sync(self):
        sync_client = RetryingClient(
            FlakyClient(rejections=2), validator=lambda text: text != "bad", max_retries=3
        )
        async_client = RetryingClient(
            FlakyClient(rejections=2), validator=lambda text: text != "bad", max_retries=3
        )
        sync_response = sync_client.complete("p")
        async_response = asyncio.run(async_client.acomplete("p"))
        assert async_response.text == sync_response.text == "good:p"
        assert async_response.metadata["attempts"] == sync_response.metadata["attempts"] == 3
        assert async_response.usage == sync_response.usage
        assert async_client.stats.attempts == sync_client.stats.attempts
        assert async_client.stats.retries == sync_client.stats.retries

    @pytest.mark.parametrize("size", SIZES)
    def test_batch_equivalence(self, size):
        prompts = _prompts(size)
        sync_client = RetryingClient(
            _simulated_client(), validator=lambda text: True, max_retries=1
        )
        async_client = RetryingClient(
            _simulated_client(), validator=lambda text: True, max_retries=1
        )
        sync_responses = sync_client.complete_batch(prompts)
        async_responses = asyncio.run(async_client.acomplete_batch(prompts))
        _assert_equivalent(async_responses, sync_responses)

    def test_exhausted_retries_return_last_response(self):
        client = RetryingClient(
            FlakyClient(rejections=10), validator=lambda text: text != "bad", max_retries=2
        )
        response = asyncio.run(client.acomplete("p"))
        assert response.text == "bad"
        assert response.metadata["attempts"] == 3
        assert client.stats.failures == 1


class ConfidenceClient:
    """Returns a fixed confidence so cascade escalation is deterministic."""

    def __init__(self, name: str, confidence: float) -> None:
        self.name = name
        self.confidence = confidence
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        self.calls += 1
        return LLMResponse(
            text=f"{self.name}:{prompt}",
            model=model or self.name,
            usage=Usage(1, 1, 1),
            confidence=self.confidence,
        )


def _cascade(low_confidence: float) -> CascadeRouter:
    return CascadeRouter(
        [
            CascadeTier("cheap", ConfidenceClient("cheap", low_confidence)),
            CascadeTier("expensive", ConfidenceClient("expensive", 0.99)),
        ],
        confidence_threshold=0.8,
    )


class TestCascadeRouter:
    @pytest.mark.parametrize("low_confidence", (0.3, 0.95))
    def test_single_equivalence(self, low_confidence):
        sync_response = _cascade(low_confidence).complete("p")
        async_response = asyncio.run(_cascade(low_confidence).acomplete("p"))
        assert async_response.text == sync_response.text
        assert async_response.usage == sync_response.usage
        assert async_response.metadata.get("cascade_tiers") == sync_response.metadata.get(
            "cascade_tiers"
        )

    @pytest.mark.parametrize("size", SIZES)
    def test_batch_equivalence_with_escalation(self, size):
        prompts = [f"p{i}" for i in range(size)]
        sync_router = _cascade(0.3)
        async_router = _cascade(0.3)
        sync_responses = sync_router.complete_batch(prompts)
        async_responses = asyncio.run(async_router.acomplete_batch(prompts))
        _assert_equivalent(async_responses, sync_responses)
        assert async_router.escalations == sync_router.escalations

    def test_escalation_accumulates_usage(self):
        response = asyncio.run(_cascade(0.3).acomplete("p"))
        assert response.text == "expensive:p"
        assert response.usage.calls == 2  # cheap attempt + escalation


class TestEnsembleClient:
    def _ensemble(self) -> EnsembleClient:
        return EnsembleClient(
            [
                CascadeTier("a", ConfidenceClient("a", 0.9)),
                CascadeTier("b", ConfidenceClient("b", 0.9)),
                CascadeTier("c", ConfidenceClient("c", 0.9)),
            ]
        )

    def test_complete_all_equivalence(self):
        sync_ensemble = self._ensemble().complete_all("p")
        async_ensemble = asyncio.run(self._ensemble().acomplete_all("p"))
        assert [r.text for r in async_ensemble.responses] == [
            r.text for r in sync_ensemble.responses
        ]
        assert async_ensemble.usage == sync_ensemble.usage

    def test_single_returns_first_member(self):
        assert asyncio.run(self._ensemble().acomplete("p")).text == "a:p"

    @pytest.mark.parametrize("size", SIZES)
    def test_batch_equivalence(self, size):
        prompts = [f"p{i}" for i in range(size)]
        sync_responses = self._ensemble().complete_batch(prompts)
        async_responses = asyncio.run(self._ensemble().acomplete_batch(prompts))
        _assert_equivalent(async_responses, sync_responses)


class TestSyncBridge:
    """Clients with no async methods work through the duck-typed dispatchers."""

    def test_call_acomplete_bridges_sync_only_clients(self):
        client = FlakyClient(rejections=0)
        response = asyncio.run(call_acomplete(client, "p"))
        assert response.text == "good:p"

    def test_call_acomplete_batch_uses_native_sync_batch(self):
        prompts = _prompts(4)
        sync_responses = _simulated_client().complete_batch(prompts)

        class SyncOnly:
            def __init__(self):
                self.inner = _simulated_client()

            def complete(self, prompt, **kwargs):
                return self.inner.complete(prompt, **kwargs)

            def complete_batch(self, prompts, **kwargs):
                return self.inner.complete_batch(prompts, **kwargs)

        async_responses = asyncio.run(call_acomplete_batch(SyncOnly(), prompts))
        _assert_equivalent(async_responses, sync_responses)

    def test_sequential_acomplete_batch_matches_sync_loop(self):
        prompts = _prompts(4)
        sync_responses = sequential_complete_batch(_simulated_client(), prompts)
        async_responses = asyncio.run(
            sequential_acomplete_batch(_simulated_client(), prompts)
        )
        _assert_equivalent(async_responses, sync_responses)
