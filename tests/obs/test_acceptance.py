"""Issue acceptance criteria, end to end.

Three claims are pinned here:

1. A two-branch pipeline's :attr:`PipelineQuote.total_seconds` is the
   quoted critical path over the dependency DAG — strictly less than the
   sum of per-step seconds when branches can overlap.
2. A traced run's report renders a nested pipeline→wave→step→call
   waterfall whose call span ids resolve in the persisted ``spans``
   table after the store is reopened.
3. ``GET /metrics`` on the service returns parseable Prometheus text
   exposition with per-tenant governor, cache, and job series — and
   needs no API key, unlike the rest of the surface.
"""

from __future__ import annotations

import asyncio
import re

import pytest

from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import PipelineSpec, PipelineStep, SortSpec
from repro.data.flavors import CHOCOLATEY, FLAVORS, flavor_oracle
from repro.llm.simulated import SimulatedLLM
from repro.obs import critical_path, render_timeline
from repro.store import Store

MODEL = "sim-gpt-3.5-turbo"


def _two_branch_pipeline() -> PipelineSpec:
    """Two independent sort branches of different sizes feeding a merge."""
    return PipelineSpec(
        name="two-branch",
        steps=[
            PipelineStep(
                "left",
                task=SortSpec(items=list(FLAVORS[:8]), criterion=CHOCOLATEY, strategy="rating"),
            ),
            PipelineStep(
                "right",
                task=SortSpec(items=list(FLAVORS[8:12]), criterion=CHOCOLATEY, strategy="rating"),
            ),
            PipelineStep(
                "merge",
                run=lambda session, inputs: list(inputs["left"].order)
                + list(inputs["right"].order),
                depends_on=("left", "right"),
            ),
        ],
    )


def _engine(**kwargs) -> DeclarativeEngine:
    return DeclarativeEngine(
        SimulatedLLM(flavor_oracle(), seed=21), default_model=MODEL, **kwargs
    )


class TestQuoteCriticalPath:
    def test_total_seconds_is_the_dag_critical_path_not_the_sum(self):
        engine = _engine()
        # Seed observed latency so every sort step carries a seconds estimate.
        engine.session.stats.record_latency("sort:rating", 120.0)
        quote = engine.quote_pipeline(_two_branch_pipeline())

        assert quote.dependencies == {
            "left": (),
            "right": (),
            "merge": ("left", "right"),
        }
        seconds = {name: quote.steps[name].seconds for name in ("left", "right")}
        assert all(value is not None and value > 0 for value in seconds.values())
        # The branches overlap, so the quote is the slower branch alone —
        # strictly less than running them back to back.
        assert quote.total_seconds == pytest.approx(max(seconds.values()))
        assert quote.total_seconds < sum(seconds.values())

    def test_chained_steps_still_add_up(self):
        engine = _engine()
        engine.session.stats.record_latency("sort:rating", 120.0)
        chain = PipelineSpec(
            name="chain",
            steps=[
                PipelineStep(
                    "first",
                    task=SortSpec(
                        items=list(FLAVORS[:4]), criterion=CHOCOLATEY, strategy="rating"
                    ),
                ),
                PipelineStep(
                    "second",
                    task=SortSpec(
                        items=list(FLAVORS[4:8]), criterion=CHOCOLATEY, strategy="rating"
                    ),
                    depends_on=("first",),
                ),
            ],
        )
        quote = engine.quote_pipeline(chain)
        assert quote.total_seconds == pytest.approx(
            quote.steps["first"].seconds + quote.steps["second"].seconds
        )


class TestTracedRunPersistence:
    def test_waterfall_nests_and_call_spans_survive_store_reopen(self, tmp_path):
        path = tmp_path / "run.db"
        store = Store(path)
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=21), store=store)
        engine = DeclarativeEngine(session=session, default_model=MODEL)

        report = engine.run_pipeline(_two_branch_pipeline(), max_concurrency=4)
        assert report.results["merge"]
        assert report.span_id is not None
        assert report.spans, "engine should attach the run's span subtree"

        kinds = {sp.kind for sp in report.spans}
        assert {"pipeline", "wave", "step", "call"} <= kinds

        # The rendered waterfall nests pipeline -> wave -> step -> call.
        text = render_timeline(report)
        lines = text.splitlines()
        assert lines[0].startswith("pipeline:two-branch")
        assert any(line.startswith("  wave:") for line in lines)
        assert any(line.startswith("    step:left") for line in lines)
        assert any(line.startswith("      operator:sort:rating") for line in lines)
        assert any(line.startswith("        call:") for line in lines)

        # The observed critical path runs through a sort branch to merge.
        observed = critical_path(report.spans)
        assert observed.steps[-1] == "merge"
        assert 0 < observed.seconds <= observed.sum_seconds
        assert session.stats.critical_path_seconds("two-branch") == pytest.approx(
            observed.seconds
        )

        # Call spans resolve in the spans table after a cold reopen.
        call_ids = {sp.span_id for sp in report.spans if sp.kind == "call"}
        assert call_ids
        origin = session.spans.origin
        store.close()
        with Store(path) as reopened:
            persisted = {sp.span_id: sp for sp in reopened.load_spans(origin=origin)}
        assert call_ids <= set(persisted)
        assert all(persisted[sid].kind == "call" for sid in call_ids)
        assert persisted[report.span_id].kind == "pipeline"

    def test_thread_and_async_schedulers_produce_one_tree(self):
        for scheduler in ("threads", "async"):
            engine = _engine()
            report = engine.run_pipeline(
                _two_branch_pipeline(), max_concurrency=4, scheduler=scheduler
            )
            tracker = engine.session.spans
            roots = [sp for sp in report.spans if sp.parent_id is None]
            assert [sp.span_id for sp in roots] == [report.span_id], scheduler
            for sp in report.spans:
                if sp.parent_id is not None:
                    assert tracker.get(sp.parent_id) is not None, scheduler


_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
)


class TestMetricsEndpoint:
    def _build_app(self, tmp_path):
        from repro.service import ServiceApp, TenantConfig, TenantRegistry

        oracle = flavor_oracle()
        registry = TenantRegistry(
            SimulatedLLM(oracle, seed=21),
            [
                TenantConfig(
                    tenant_id="acme",
                    api_key="key-acme",
                    budget_dollars=10.0,
                    default_model=MODEL,
                    max_in_flight=2,
                ),
                TenantConfig(
                    tenant_id="beta",
                    api_key="key-beta",
                    budget_dollars=10.0,
                    default_model=MODEL,
                ),
            ],
            store=Store(tmp_path / "svc.db"),
        )
        return ServiceApp(registry)

    def test_exposition_carries_per_tenant_series(self, tmp_path):
        from repro.core.spec_codec import pipeline_to_dict
        from repro.service import ServiceClient

        app = self._build_app(tmp_path)
        client = ServiceClient(app, api_key="key-acme")
        # run= callables are code, not data, so the wire pipeline uses
        # task steps only — two independent sort branches.
        wire = pipeline_to_dict(
            PipelineSpec(
                name="branches",
                steps=[
                    PipelineStep(
                        "left",
                        task=SortSpec(
                            items=list(FLAVORS[:6]),
                            criterion=CHOCOLATEY,
                            strategy="rating",
                        ),
                    ),
                    PipelineStep(
                        "right",
                        task=SortSpec(
                            items=list(FLAVORS[6:12]),
                            criterion=CHOCOLATEY,
                            strategy="rating",
                        ),
                    ),
                ],
            )
        )

        async def scenario():
            submitted = await client.post("/v1/pipelines", json_body=wire)
            assert submitted.status == 202
            job_id = submitted.json()["job_id"]
            deadline = asyncio.get_running_loop().time() + 30.0
            while True:
                record = (await client.get(f"/v1/jobs/{job_id}")).json()
                if record["status"] in ("succeeded", "failed", "stopped"):
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert record["status"] == "succeeded"
            # span_id correlation: the job's report carries the root span id.
            assert record["report"]["span_id"] is not None

            # The scrape endpoint needs no credential.
            return await client.request("GET", "/metrics", api_key=None)

        response = asyncio.run(scenario())
        assert response.status == 200
        assert response.headers.get("content-type", "").startswith(
            "text/plain; version=0.0.4"
        )

        body = response.text
        for line in body.splitlines():
            assert line.startswith("# ") or _SAMPLE_RE.match(line), line

        # Per-tenant job lifecycle series.
        assert 'repro_jobs_total{tenant="acme",status="queued"} 1' in body
        assert 'repro_jobs_total{tenant="acme",status="running"} 1' in body
        assert 'repro_jobs_total{tenant="acme",status="succeeded"} 1' in body
        assert 'repro_jobs_active{tenant="acme"} 0' in body
        # Cache-outcome call series and the governor envelope, acme only.
        assert 'repro_llm_calls_total{tenant="acme",cache="miss"}' in body
        assert 'repro_governor_admitted_total{tenant="acme"}' in body
        assert 'repro_governor_in_flight{tenant="acme"} 0' in body
        # The idle tenant emits no job series.
        assert 'repro_jobs_total{tenant="beta"' not in body

    def test_other_routes_still_require_a_key(self, tmp_path):
        from repro.service import ServiceClient

        app = self._build_app(tmp_path)
        client = ServiceClient(app, api_key=None)

        async def scenario():
            metrics = await client.request("GET", "/metrics")
            jobs = await client.request("GET", "/v1/jobs/unknown")
            return metrics, jobs

        metrics, jobs = asyncio.run(scenario())
        assert metrics.status == 200
        assert jobs.status == 401
