"""Critical-path extraction and waterfall rendering over span trees."""

from __future__ import annotations

import pytest

from repro.obs import Span, SpanTracker, critical_path, render_timeline
from repro.obs.timeline import summarize_path


def _step(span_id, label, seconds, *, depends_on=(), start=0.0):
    return Span(
        span_id=span_id,
        parent_id=None,
        kind="step",
        label=label,
        start=start,
        end=start + seconds,
        status="ok",
        attributes={"depends_on": list(depends_on)},
    )


class TestCriticalPath:
    def test_longest_branch_dominates(self):
        # left (3s) and right (1s) feed merge (0.5s): the path is left->merge.
        spans = [
            _step(1, "left", 3.0),
            _step(2, "right", 1.0),
            _step(3, "merge", 0.5, depends_on=("left", "right")),
        ]
        path = critical_path(spans)
        assert path.steps == ("left", "merge")
        assert path.seconds == pytest.approx(3.5)
        assert path.sum_seconds == pytest.approx(4.5)
        assert path.seconds < path.sum_seconds

    def test_chain_path_is_the_whole_chain(self):
        spans = [
            _step(1, "a", 1.0),
            _step(2, "b", 2.0, depends_on=("a",)),
            _step(3, "c", 1.0, depends_on=("b",)),
        ]
        path = critical_path(spans)
        assert path.steps == ("a", "b", "c")
        assert path.seconds == pytest.approx(4.0)
        assert path.seconds == pytest.approx(path.sum_seconds)

    def test_non_step_spans_and_unknown_deps_are_ignored(self):
        spans = [
            Span(span_id=1, parent_id=None, kind="pipeline", label="p", start=0.0, end=9.0),
            _step(2, "a", 1.0, depends_on=("ghost",)),
        ]
        path = critical_path(spans)
        assert path.steps == ("a",)
        assert path.seconds == pytest.approx(1.0)

    def test_empty_input(self):
        path = critical_path([])
        assert path.steps == ()
        assert path.seconds == 0.0
        assert summarize_path(path) == "critical path: (none)"

    def test_accepts_a_tracker(self):
        tracker = SpanTracker()
        with tracker.span("step", "solo"):
            pass
        assert critical_path(tracker).steps == ("solo",)

    def test_summarize_mentions_chain_and_serial_sum(self):
        path = critical_path([_step(1, "a", 1.0), _step(2, "b", 2.0, depends_on=("a",))])
        text = summarize_path(path)
        assert "a -> b" in text
        assert "3.000s" in text


class TestRenderTimeline:
    def test_nesting_and_ordering(self):
        tracker = SpanTracker()
        with tracker.span("pipeline", "demo"):
            with tracker.span("wave", "wave 0"):
                with tracker.span("step", "sort"):
                    tracker.record_span("call", "gpt", duration_seconds=0.01)
        text = render_timeline(tracker)
        lines = text.splitlines()
        assert lines[0].startswith("pipeline:demo")
        assert lines[1].startswith("  wave:wave 0")
        assert lines[2].startswith("    step:sort")
        assert lines[3].startswith("      call:gpt")
        assert all("|" in line and "ok" in line for line in lines)

    def test_open_spans_render_as_open(self):
        spans = [Span(span_id=1, parent_id=None, kind="step", label="hung", start=0.0)]
        assert "open" in render_timeline(spans)

    def test_empty_is_placeholder(self):
        assert render_timeline([]) == "(no spans)"
        assert render_timeline(SpanTracker(enabled=False)) == "(no spans)"

    def test_accepts_report_like_objects(self):
        class FakeReport:
            spans = [Span(span_id=1, parent_id=None, kind="step", label="s", start=0.0, end=1.0)]

        assert "step:s" in render_timeline(FakeReport())
