"""MetricsRegistry unit tests: semantics, concurrency, and golden exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry


class TestRegistration:
    def test_get_or_create_returns_the_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "help", ("tenant",))
        second = registry.counter("repro_x_total", "ignored on re-register", ("tenant",))
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="different"):
            registry.gauge("repro_x_total")

    def test_label_set_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labelnames=("tenant",))
        with pytest.raises(ValueError, match="different"):
            registry.counter("repro_x_total", labelnames=("tenant", "status"))

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("repro_lat_seconds", buckets=(0.5, 1.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError):
            registry.counter("ok_name", labelnames=("__reserved",))
        with pytest.raises(ValueError):
            registry.counter("ok_name", labelnames=("bad-dash",))
        with pytest.raises(ValueError):
            registry.histogram("repro_h", buckets=())

    def test_labels_must_match_declared_set(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", labelnames=("tenant",))
        with pytest.raises(ValueError, match="expects labels"):
            family.labels(other="x")
        with pytest.raises(ValueError, match="call .labels"):
            family.inc()  # labelled family has no default child


class TestInstrumentSemantics:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        child = registry.counter("repro_x_total", labelnames=("t",)).labels(t="a")
        child.inc()
        child.inc(2.5)
        with pytest.raises(ValueError):
            child.inc(-1)
        assert child.value == 3.5

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert registry.snapshot()["repro_depth"][""] == 13.0

    def test_histogram_buckets_are_cumulative_in_samples(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 99.0):
            hist.observe(value)
        snap = registry.snapshot()["repro_lat_seconds"]
        assert snap['_bucket{le="1"}'] == 2.0
        assert snap['_bucket{le="5"}'] == 3.0
        assert snap['_bucket{le="+Inf"}'] == 4.0
        assert snap["_count"] == 4.0
        assert snap["_sum"] == pytest.approx(103.2)

    def test_same_labels_share_one_child(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", labelnames=("t",))
        family.labels(t="a").inc()
        family.labels(t="a").inc()
        family.labels(t="b").inc()
        snap = registry.snapshot()["repro_x_total"]
        assert snap['{t="a"}'] == 2.0
        assert snap['{t="b"}'] == 1.0


class TestConcurrency:
    def test_parallel_writers_lose_no_updates(self):
        """The hammer: many threads on shared children, exact totals survive."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", labelnames=("t",))
        gauge = registry.gauge("repro_level")
        hist = registry.histogram("repro_lat_seconds", buckets=(0.5,))
        threads_n, rounds = 8, 500
        start = threading.Barrier(threads_n)

        def worker(tenant):
            start.wait()
            child = counter.labels(t=tenant)
            for _ in range(rounds):
                child.inc()
                gauge.inc()
                hist.observe(0.1)
                registry.render()  # scrapes interleave with writes

        threads = [
            threading.Thread(target=worker, args=(f"t{i % 2}",)) for i in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        snap = registry.snapshot()
        total = threads_n * rounds
        assert snap["repro_hits_total"]['{t="t0"}'] + snap["repro_hits_total"]['{t="t1"}'] == total
        assert snap["repro_level"][""] == float(total)
        assert snap["repro_lat_seconds"]["_count"] == float(total)
        assert snap["repro_lat_seconds"]['_bucket{le="0.5"}'] == float(total)

    def test_scrape_sees_consistent_histograms(self):
        """_sum and _count never disagree mid-observe under the shared lock."""
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(1.0,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hist.observe(2.0)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = registry.snapshot()["repro_lat_seconds"]
                assert snap["_sum"] == pytest.approx(2.0 * snap["_count"])
        finally:
            stop.set()
            thread.join()


class TestExposition:
    def test_golden_render(self):
        """Pinned Prometheus text exposition 0.0.4 output, byte for byte."""
        registry = MetricsRegistry()
        jobs = registry.counter(
            "repro_jobs_total", "Job lifecycle transitions.", ("tenant", "status")
        )
        jobs.labels(tenant="acme", status="succeeded").inc(3)
        jobs.labels(tenant="acme", status="failed").inc()
        registry.gauge("repro_jobs_active", "Jobs currently running.", ("tenant",)).labels(
            tenant="acme"
        ).set(1)
        hist = registry.histogram(
            "repro_call_duration_seconds",
            "Call wall-clock.",
            ("tenant",),
            buckets=(0.1, 1.0),
        ).labels(tenant="acme")
        hist.observe(0.0625)
        hist.observe(0.25)  # dyadic values keep the rendered _sum exact

        assert registry.render() == (
            "# HELP repro_call_duration_seconds Call wall-clock.\n"
            "# TYPE repro_call_duration_seconds histogram\n"
            'repro_call_duration_seconds_bucket{tenant="acme",le="0.1"} 1\n'
            'repro_call_duration_seconds_bucket{tenant="acme",le="1"} 2\n'
            'repro_call_duration_seconds_bucket{tenant="acme",le="+Inf"} 2\n'
            'repro_call_duration_seconds_sum{tenant="acme"} 0.3125\n'
            'repro_call_duration_seconds_count{tenant="acme"} 2\n'
            "# HELP repro_jobs_active Jobs currently running.\n"
            "# TYPE repro_jobs_active gauge\n"
            'repro_jobs_active{tenant="acme"} 1\n'
            "# HELP repro_jobs_total Job lifecycle transitions.\n"
            "# TYPE repro_jobs_total counter\n"
            'repro_jobs_total{tenant="acme",status="failed"} 1\n'
            'repro_jobs_total{tenant="acme",status="succeeded"} 3\n'
        )

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labelnames=("path",)).labels(
            path='a\\b"c\nd'
        ).inc()
        rendered = registry.render()
        assert 'path="a\\\\b\\"c\\nd"' in rendered

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render() == ""

    def test_render_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        assert registry.render().endswith("\n")
