"""SpanTracker unit tests: parentage, status, propagation, persistence."""

from __future__ import annotations

import contextvars
import threading

import pytest

from repro.exceptions import BudgetExceededError
from repro.obs import Span, SpanTracker
from repro.obs.spans import current_span_id
from repro.store import Store


class TestSpanTree:
    def test_nested_spans_record_parentage(self):
        tracker = SpanTracker()
        with tracker.span("pipeline", "demo") as root:
            with tracker.span("step", "sort") as step:
                with tracker.span("call", "gpt") as call:
                    assert call.parent_id == step.span_id
            assert step.parent_id == root.span_id
        assert root.parent_id is None
        assert [sp.kind for sp in tracker.spans()] == ["pipeline", "step", "call"]

    def test_siblings_share_a_parent(self):
        tracker = SpanTracker()
        with tracker.span("pipeline") as root:
            with tracker.span("step", "a") as a:
                pass
            with tracker.span("step", "b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_ambient_span_restored_on_exit(self):
        tracker = SpanTracker()
        assert current_span_id() is None
        with tracker.span("pipeline") as root:
            assert current_span_id() == root.span_id
            with tracker.span("step"):
                pass
            assert current_span_id() == root.span_id
        assert current_span_id() is None

    def test_current_span_id_is_tracker_scoped(self):
        ours = SpanTracker()
        theirs = SpanTracker()
        with ours.span("pipeline") as root:
            assert current_span_id(ours) == root.span_id
            assert current_span_id(theirs) is None

    def test_subtree_collects_transitive_children_only(self):
        tracker = SpanTracker()
        with tracker.span("pipeline") as root:
            with tracker.span("step", "inside") as step:
                tracker.record_span("call", "leaf")
        with tracker.span("pipeline", "other"):
            pass
        subtree = tracker.subtree(root.span_id)
        assert [sp.kind for sp in subtree] == ["pipeline", "step", "call"]
        assert all(sp.label != "other" for sp in subtree)
        assert tracker.subtree(step.span_id)[0].label == "inside"


class TestStatusMapping:
    def test_clean_exit_is_ok(self):
        tracker = SpanTracker()
        with tracker.span("step") as sp:
            pass
        assert sp.status == "ok"
        assert sp.end is not None
        assert sp.duration_seconds >= 0.0

    def test_budget_exhaustion_is_stopped_not_error(self):
        tracker = SpanTracker()
        with pytest.raises(BudgetExceededError):
            with tracker.span("step") as sp:
                raise BudgetExceededError(1.0, 0.5)
        assert sp.status == "stopped"
        assert "error" not in sp.attributes

    def test_other_exceptions_are_error_with_class_name(self):
        tracker = SpanTracker()
        with pytest.raises(ValueError):
            with tracker.span("step") as sp:
                raise ValueError("boom")
        assert sp.status == "error"
        assert sp.attributes["error"] == "ValueError"


class TestRecordSpan:
    def test_backdated_leaf_parented_to_ambient(self):
        tracker = SpanTracker()
        with tracker.span("step") as step:
            leaf = tracker.record_span("call", "gpt", duration_seconds=0.25)
        assert leaf.parent_id == step.span_id
        assert leaf.status == "ok"
        assert leaf.duration_seconds == pytest.approx(0.25, abs=0.01)

    def test_explicit_parent_wins_over_ambient(self):
        tracker = SpanTracker()
        with tracker.span("step") as step:
            pass
        leaf = tracker.record_span("call", parent_id=step.span_id)
        assert leaf.parent_id == step.span_id

    def test_non_json_attributes_are_coerced(self):
        tracker = SpanTracker()
        leaf = tracker.record_span("call", payload=object())
        assert isinstance(leaf.attributes["payload"], str)

    def test_annotate_merges_and_ignores_unknown_ids(self):
        tracker = SpanTracker()
        with tracker.span("step") as sp:
            pass
        tracker.annotate(sp.span_id, retries=2)
        tracker.annotate(10_000, retries=9)  # silently ignored
        tracker.annotate(None, retries=9)  # silently ignored
        assert tracker.get(sp.span_id).attributes["retries"] == 2


class TestCapacityAndDisable:
    def test_fifo_eviction_counts_dropped(self):
        tracker = SpanTracker(capacity=3)
        for index in range(5):
            tracker.record_span("call", f"c{index}")
        assert len(tracker) == 3
        assert tracker.dropped == 2
        assert [sp.label for sp in tracker.spans()] == ["c2", "c3", "c4"]

    def test_disabled_tracker_is_a_no_op(self):
        tracker = SpanTracker(enabled=False)
        with tracker.span("pipeline") as sp:
            assert sp is None
            assert current_span_id() is None
        assert tracker.record_span("call") is None
        assert tracker.spans() == []
        assert tracker.dropped == 0

    def test_clear_resets_everything(self):
        tracker = SpanTracker(capacity=1)
        tracker.record_span("call", "a")
        tracker.record_span("call", "b")
        assert tracker.dropped == 1
        tracker.clear()
        assert len(tracker) == 0
        assert tracker.dropped == 0


class TestThreadPropagation:
    def test_parentage_survives_worker_threads(self):
        """The executor dispatches via copy_context; children keep the parent."""
        tracker = SpanTracker()
        results = []

        def worker(label):
            with tracker.span("step", label) as sp:
                results.append((label, sp.parent_id))

        with tracker.span("pipeline") as root:
            threads = [
                threading.Thread(target=contextvars.copy_context().run, args=(worker, f"t{i}"))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert sorted(results) == [(f"t{i}", root.span_id) for i in range(4)]

    def test_plain_thread_without_copied_context_has_no_parent(self):
        tracker = SpanTracker()
        seen = []

        def worker():
            seen.append(current_span_id(tracker))

        with tracker.span("pipeline"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]


class TestPersistence:
    def test_flush_roundtrips_through_the_store(self, tmp_path):
        store = Store(tmp_path / "spans.db")
        tracker = SpanTracker(store=store)
        with tracker.span("pipeline", "demo"):
            tracker.record_span("call", "gpt", duration_seconds=0.1, tokens=42)
        written = tracker.flush()
        assert written == 2
        loaded = store.load_spans(origin=tracker.origin)
        assert [sp.kind for sp in loaded] == ["pipeline", "call"]
        assert loaded[1].attributes["tokens"] == 42
        assert loaded[1].parent_id == loaded[0].span_id

    def test_flush_is_incremental(self, tmp_path):
        store = Store(tmp_path / "spans.db")
        tracker = SpanTracker(store=store)
        tracker.record_span("call", "a")
        assert tracker.flush() == 1
        assert tracker.flush() == 0  # nothing newly dirty
        tracker.record_span("call", "b")
        assert tracker.flush() == 1
        assert store.span_count() == 2

    def test_reflushing_a_mutated_span_replaces_the_row(self, tmp_path):
        store = Store(tmp_path / "spans.db")
        tracker = SpanTracker(store=store)
        with tracker.span("step") as sp:
            tracker.flush()  # flushed while still open
        tracker.flush()  # re-flushed after close
        loaded = store.load_spans(origin=tracker.origin)
        assert len(loaded) == 1
        assert loaded[0].status == "ok"
        assert loaded[0].end is not None

    def test_auto_flush_past_threshold(self, tmp_path):
        store = Store(tmp_path / "spans.db")
        tracker = SpanTracker(store=store, flush_every=4)
        for index in range(4):
            with tracker.span("step", f"s{index}"):
                pass
        assert store.span_count() >= 4

    def test_failing_store_never_raises(self, tmp_path):
        class BrokenStore:
            def save_spans(self, spans, *, origin):
                raise OSError("disk gone")

        tracker = SpanTracker(store=BrokenStore(), flush_every=1)
        with tracker.span("step"):
            pass
        assert tracker.flush() == 0  # swallowed, pipeline unharmed

    def test_span_dict_roundtrip(self):
        sp = Span(
            span_id=3,
            parent_id=1,
            kind="call",
            label="gpt",
            start=10.0,
            end=10.5,
            status="ok",
            attributes={"tokens": 7},
        )
        assert Span.from_dict(sp.to_dict()) == sp
