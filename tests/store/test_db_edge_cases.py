"""Robustness tests for the store's SQLite substrate.

Covers the edge cases a long-lived on-disk artifact actually meets in
production: files that are empty, corrupt, or belong to someone else;
schema drift between library versions; many threads hammering one cache;
and fingerprints that must agree across independent processes.
"""

from __future__ import annotations

import os
import sqlite3
import subprocess
import sys
import threading

import pytest

from repro.exceptions import StoreError
from repro.llm.base import LLMResponse
from repro.store import SCHEMA_VERSION, Store, StoreDB, fingerprint_spec
from repro.store.db import APPLICATION_ID
from repro.core.spec import FilterSpec, SortSpec
from repro.tokenizer.cost import Usage

SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


class TestFileStates:
    def test_empty_file_is_initialised_in_place(self, tmp_path):
        path = tmp_path / "store.db"
        path.touch()  # zero bytes: what a crashed first open leaves behind
        with Store(path) as store:
            store.response_cache().put("m", "p", LLMResponse(text="x", model="m"))
            assert len(store.response_cache()) == 1

    def test_corrupt_file_is_moved_aside_not_deleted(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"this is not a sqlite database at all" * 10)
        with Store(path) as store:
            assert len(store.response_cache()) == 0
        moved = tmp_path / "store.db.corrupt-0"
        assert moved.exists()
        assert moved.read_bytes().startswith(b"this is not")

    def test_second_corruption_gets_a_fresh_suffix(self, tmp_path):
        path = tmp_path / "store.db"
        for expected in ("store.db.corrupt-0", "store.db.corrupt-1"):
            path.write_bytes(b"garbage garbage garbage garbage garbage!")
            Store(path).close()
            assert (tmp_path / expected).exists()
            os.remove(path)

    def test_foreign_sqlite_database_is_refused(self, tmp_path):
        path = tmp_path / "app.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE users (id INTEGER PRIMARY KEY, email TEXT)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="unrecognised schema"):
            Store(path)
        # The foreign data is untouched.
        conn = sqlite3.connect(path)
        assert conn.execute(
            "SELECT name FROM sqlite_master WHERE name = 'users'"
        ).fetchone()
        conn.close()

    def test_foreign_application_id_is_refused(self, tmp_path):
        path = tmp_path / "other.db"
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA application_id = 12345")
        conn.execute("CREATE TABLE t (x)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="another"):
            Store(path)


class TestSchemaVersions:
    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "store.db"
        Store(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            Store(path)

    def test_older_schema_is_rebuilt_empty(self, tmp_path):
        path = tmp_path / "store.db"
        with Store(path) as store:
            store.response_cache().put("m", "p", LLMResponse(text="x", model="m"))
        conn = sqlite3.connect(path)
        conn.execute("UPDATE meta SET value = '0' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        with Store(path) as rebuilt:
            # Derived data from the old layout is dropped, not migrated.
            assert len(rebuilt.response_cache()) == 0
            row = rebuilt.db.execute("SELECT value FROM meta WHERE key = 'schema_version'")
            assert int(row[0][0]) == SCHEMA_VERSION

    def test_application_id_is_stamped(self, tmp_path):
        path = tmp_path / "store.db"
        Store(path).close()
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA application_id").fetchone()[0] == APPLICATION_ID
        conn.close()


class TestConcurrentWriters:
    def test_threads_hammering_one_cache(self, tmp_path):
        threads_n = int(os.environ.get("REPRO_TEST_THREADS", "8"))
        with Store(tmp_path / "store.db", max_cache_entries=50) as store:
            cache = store.response_cache()
            errors: list[BaseException] = []

            def worker(worker_id: int) -> None:
                try:
                    for i in range(40):
                        key = f"w{worker_id}-p{i % 10}"
                        cache.put(
                            "m",
                            key,
                            LLMResponse(
                                text=f"r{worker_id}-{i}",
                                model="m",
                                usage=Usage(prompt_tokens=i, calls=1),
                            ),
                        )
                        restored = cache.get("m", key)
                        assert restored is None or restored.text.startswith("r")
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            workers = [
                threading.Thread(target=worker, args=(n,)) for n in range(threads_n)
            ]
            for thread in workers:
                thread.start()
            for thread in workers:
                thread.join()
            assert not errors
            assert len(cache) <= 50

    def test_two_store_handles_on_one_file(self, tmp_path):
        path = tmp_path / "store.db"
        with Store(path) as first, Store(path) as second:
            first.response_cache().put("m", "shared", LLMResponse(text="one", model="m"))
            restored = second.response_cache().get("m", "shared")
            assert restored is not None and restored.text == "one"


class TestFingerprintStability:
    def test_fingerprint_identical_in_a_fresh_process(self):
        spec = FilterSpec(
            items=("alpha", "beta", "gamma"),
            predicates=("is greek", "is short"),
            expected_selectivities=(0.5, 0.25),
            strategy="per_item",
        )
        local = fingerprint_spec(spec)
        script = (
            "from repro.core.spec import FilterSpec\n"
            "from repro.store import fingerprint_spec\n"
            "spec = FilterSpec(items=('alpha', 'beta', 'gamma'),\n"
            "                  predicates=('is greek', 'is short'),\n"
            "                  expected_selectivities=(0.5, 0.25),\n"
            "                  strategy='per_item')\n"
            "print(fingerprint_spec(spec))\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="99")
        remote = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert remote.returncode == 0, remote.stderr
        assert remote.stdout.strip() == local

    def test_fingerprint_ignores_budget_but_not_semantics(self):
        base = SortSpec(items=("a", "b"), criterion="size")
        assert fingerprint_spec(base) == fingerprint_spec(
            SortSpec(items=("a", "b"), criterion="size", budget_dollars=1.5)
        )
        assert fingerprint_spec(base) != fingerprint_spec(
            SortSpec(items=("a", "b"), criterion="weight")
        )
        assert fingerprint_spec(base) != fingerprint_spec(
            SortSpec(items=("a", "c"), criterion="size")
        )
        assert fingerprint_spec(base) != fingerprint_spec(
            SortSpec(items=("a", "b"), criterion="size", strategy="rating")
        )

    def test_dict_key_order_does_not_matter(self):
        left = FilterSpec(
            items=("a", "b", "c", "d", "e"),
            predicate="keep",
            validation_labels={"a": True, "b": False, "c": True, "d": False, "e": True},
        )
        right = FilterSpec(
            items=("a", "b", "c", "d", "e"),
            predicate="keep",
            validation_labels={"e": True, "d": False, "c": True, "b": False, "a": True},
        )
        assert fingerprint_spec(left) == fingerprint_spec(right)


class TestStoreDBLifecycle:
    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "store.db"
        with StoreDB(path) as db:
            db.execute("SELECT 1")
        with pytest.raises(sqlite3.ProgrammingError):
            db.execute("SELECT 1")

    def test_next_seq_is_monotonic_across_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        with StoreDB(path) as db:
            first = db.next_seq()
            second = db.next_seq()
        with StoreDB(path) as db:
            third = db.next_seq()
        assert first < second < third
