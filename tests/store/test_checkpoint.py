"""Tests for content-addressed pipeline checkpointing and crash resume."""

from __future__ import annotations

import pytest

from repro.core.engine import DeclarativeEngine
from repro.core.session import PromptSession
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    JoinSpec,
    PipelineSpec,
    PipelineStep,
    ResolveSpec,
    SortSpec,
    TopKSpec,
)
from repro.llm.base import LLMResponse
from repro.llm.oracle import Oracle, prefix_margin
from repro.llm.simulated import SimulatedLLM
from repro.operators.filter import FilterResult
from repro.operators.join import JoinResult
from repro.operators.resolve import PairJudgment, PairJudgmentResult, ResolveResult
from repro.operators.sort import SortResult
from repro.store import Store, decode_result, encode_result, fingerprint_spec
from repro.tokenizer.cost import Usage

MODEL = "sim-gpt-3.5-turbo"
WORDS = ["apple", "banana", "cherry", "damson", "elder", "fig"]
PREDICATE = "starts early in the alphabet"


def corpus_llm(seed: int = 11) -> SimulatedLLM:
    oracle = Oracle()
    oracle.register_key("alphabetical order", key=lambda item: item)
    oracle.register_predicate(PREDICATE, lambda item: item[0] in "abc")
    oracle.register_entities({word: word[0] for word in WORDS})
    return SimulatedLLM(oracle, seed=seed)


def pipeline() -> PipelineSpec:
    return PipelineSpec(
        name="checkpointed",
        steps=[
            PipelineStep(
                name="filter",
                task=FilterSpec(items=WORDS, predicate=PREDICATE, strategy="per_item"),
            ),
            PipelineStep(
                name="sort",
                task=lambda inputs: SortSpec(
                    items=list(inputs["filter"].kept),
                    criterion="alphabetical order",
                    strategy="pairwise",
                ),
                depends_on=("filter",),
            ),
        ],
    )


def fresh_engine(store: Store | None = None) -> DeclarativeEngine:
    session = PromptSession(corpus_llm(), store=store)
    return DeclarativeEngine(session=session)


class FlakyClient:
    """A client that dies after ``fail_after`` completions (simulated crash)."""

    def __init__(self, inner: SimulatedLLM, fail_after: int) -> None:
        self._inner = inner
        self.fail_after = fail_after
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        if self.calls >= self.fail_after:
            raise RuntimeError("simulated crash: process killed")
        self.calls += 1
        return self._inner.complete(
            prompt, model=model, temperature=temperature, max_tokens=max_tokens
        )


class TestResultCodecs:
    @pytest.mark.parametrize(
        "result",
        [
            SortResult(
                strategy="pairwise",
                order=["a", "b"],
                missing=["c"],
                hallucinated=["x"],
                scores={"a": 2.0, "b": 1.0},
            ),
            FilterResult(
                strategy="per_item",
                kept=["a"],
                decisions={"a": True, "b": False},
                votes_used=2,
            ),
            PairJudgmentResult(
                strategy="transitive",
                judgments=[
                    PairJudgment(left="a", right="b", is_duplicate=True, source="llm"),
                    PairJudgment(
                        left="b", right="c", is_duplicate=False, source="transitivity"
                    ),
                ],
            ),
            ResolveResult(strategy="pairwise", clusters=[[0, 1], [2]]),
            JoinResult(strategy="blocked", matches=[(0, 1), (2, 0)], candidate_pairs=6, llm_pairs=4),
        ],
        ids=lambda result: type(result).__name__,
    )
    def test_round_trip_preserves_fields(self, result):
        result.usage = Usage(prompt_tokens=100, completion_tokens=20, calls=7)
        result.cost = 0.0123
        result.metadata = {"note": "original"}
        restored = decode_result(encode_result(result))
        assert type(restored) is type(result)
        assert restored.strategy == result.strategy
        assert restored.usage.calls == 7
        assert restored.cost == pytest.approx(result.cost)
        assert restored.metadata == {"note": "original"}
        for attribute in ("order", "kept", "decisions", "clusters", "matches", "judgments"):
            if hasattr(result, attribute):
                assert getattr(restored, attribute) == getattr(result, attribute)

    def test_unknown_payload_type_decodes_to_none(self):
        assert decode_result('{"type": "Mystery", "version": 1, "fields": {}}') is None

    def test_newer_payload_version_decodes_to_none(self):
        payload = encode_result(SortResult(strategy="pairwise", order=["a"]))
        bumped = payload.replace('"version": 1', '"version": 99')
        assert decode_result(bumped) is None


class TestCheckpointStore:
    def test_save_load_and_metadata_marker(self, tmp_path):
        spec = SortSpec(items=("a", "b"), criterion="size", strategy="pairwise")
        result = SortResult(strategy="pairwise", order=["a", "b"])
        result.usage = Usage(calls=1)
        with Store(tmp_path / "store.db") as store:
            fingerprint = fingerprint_spec(spec)
            store.save_checkpoint(fingerprint, spec, result)
            restored = store.load_checkpoint(fingerprint)
            assert restored is not None
            assert restored.order == ["a", "b"]
            assert restored.metadata.get("checkpoint_hit") is True
            assert store.load_checkpoint("no-such-fingerprint") is None

    def test_checkpoint_lru_cap(self, tmp_path):
        with Store(tmp_path / "store.db", max_checkpoints=2) as store:
            fingerprints = []
            for index in range(3):
                spec = SortSpec(items=("a", "b"), criterion=f"c{index}", strategy="pairwise")
                fingerprint = fingerprint_spec(spec)
                fingerprints.append(fingerprint)
                store.save_checkpoint(
                    fingerprint, spec, SortResult(strategy="pairwise", order=["a", "b"])
                )
            assert store.checkpoint_count() == 2
            assert store.load_checkpoint(fingerprints[0]) is None
            assert store.load_checkpoint(fingerprints[2]) is not None


class TestPipelineResume:
    def test_second_run_restores_every_step_with_zero_calls(self, tmp_path):
        path = tmp_path / "store.db"
        with Store(path) as store:
            cold = fresh_engine(store).run_pipeline(pipeline(), store=store)
        assert cold.total_calls > 0
        assert cold.restored_steps == []
        with Store(path) as store:
            warm = fresh_engine(store).run_pipeline(pipeline(), store=store)
        assert warm.total_calls == 0
        assert sorted(warm.restored_steps) == ["filter", "sort"]
        assert warm.results["sort"].order == cold.results["sort"].order
        assert warm.results["filter"].kept == cold.results["filter"].kept

    def test_changed_step_reruns_only_its_subtree(self, tmp_path):
        path = tmp_path / "store.db"
        with Store(path) as store:
            fresh_engine(store).run_pipeline(pipeline(), store=store)
        changed = pipeline()
        changed.steps[1].task = lambda inputs: SortSpec(
            items=list(inputs["filter"].kept),
            criterion="alphabetical order",
            strategy="rating",  # new strategy -> new fingerprint downstream
        )
        with Store(path) as store:
            engine = fresh_engine(store)
            report = engine.run_pipeline(changed, store=store)
        assert report.restored_steps == ["filter"]
        assert report.step_reports["sort"].restored is False
        # Only the changed sort step spent calls (one rating per item).
        assert report.total_calls == len(report.results["filter"].kept)

    def test_killed_run_resumes_with_identical_results(self, tmp_path):
        """The acceptance criterion: kill after step k, resume for free."""
        reference_store = Store(tmp_path / "reference.db")
        uninterrupted = fresh_engine(reference_store).run_pipeline(
            pipeline(), store=reference_store
        )
        filter_calls = uninterrupted.step_reports["filter"].calls
        assert filter_calls > 0

        path = tmp_path / "store.db"
        with Store(path) as store:
            flaky = FlakyClient(corpus_llm(), fail_after=filter_calls)
            session = PromptSession(flaky, store=store)
            engine = DeclarativeEngine(session=session)
            with pytest.raises(RuntimeError, match="simulated crash"):
                engine.run_pipeline(pipeline(), store=store)

        # The killed process checkpointed its completed filter step; a new
        # process resumes, restores it with zero calls, and finishes.
        with Store(path) as store:
            session = PromptSession(corpus_llm(), store=store)
            engine = DeclarativeEngine(session=session)
            resumed = engine.run_pipeline(pipeline(), store=store)
        assert resumed.restored_steps == ["filter"]
        assert resumed.step_reports["filter"].calls == filter_calls  # original run's
        assert resumed.total_calls == uninterrupted.total_calls - filter_calls
        assert resumed.results["sort"].order == uninterrupted.results["sort"].order
        assert resumed.results["filter"].kept == uninterrupted.results["filter"].kept
        reference_store.close()

    def test_budget_stopped_run_checkpoints_completed_steps(self, tmp_path):
        from repro.core.budget import Budget

        # A cheap filter (8 per-item checks) feeding an expensive pairwise
        # sort (15 comparisons over the 6 survivors): a budget of ~2.4x the
        # filter quote lets the filter finish on its lease and cuts the
        # sort off mid-way.
        words = WORDS + ["grape", "honeydew"]
        oracle = Oracle()
        oracle.register_key("alphabetical order", key=lambda item: item)
        oracle.register_predicate(PREDICATE, lambda item: item[0] in "abcdef")

        def stop_pipeline() -> PipelineSpec:
            return PipelineSpec(
                name="stoppable",
                steps=[
                    PipelineStep(
                        name="filter",
                        task=FilterSpec(items=words, predicate=PREDICATE, strategy="per_item"),
                    ),
                    PipelineStep(
                        name="sort",
                        task=lambda inputs: SortSpec(
                            items=list(inputs["filter"].kept),
                            criterion="alphabetical order",
                            strategy="pairwise",
                        ),
                        depends_on=("filter",),
                    ),
                ],
            )

        path = tmp_path / "store.db"
        probe = DeclarativeEngine(SimulatedLLM(oracle, seed=11))
        filter_dollars = probe.quote_pipeline(stop_pipeline()).steps["filter"].dollars
        with Store(path) as store:
            session = PromptSession(
                SimulatedLLM(oracle, seed=11),
                store=store,
                budget=Budget(filter_dollars * 2.4),
            )
            engine = DeclarativeEngine(session=session)
            stopped = engine.run_pipeline(stop_pipeline(), store=store)
        assert stopped.stopped_early
        assert "filter" in stopped.completed_steps
        assert "sort" not in stopped.completed_steps
        with Store(path) as store:
            session = PromptSession(SimulatedLLM(oracle, seed=11), store=store)
            resumed = DeclarativeEngine(session=session).run_pipeline(
                stop_pipeline(), store=store
            )
        assert not resumed.stopped_early
        assert "filter" in resumed.restored_steps
        assert resumed.step_reports["filter"].calls == len(words)

    def test_crashed_run_still_saves_its_workload_profile(self, tmp_path):
        # Observations made before the crash are real; the resumed process
        # must warm-start its quotes from them.
        path = tmp_path / "store.db"
        with Store(path) as store:
            flaky = FlakyClient(corpus_llm(), fail_after=len(WORDS))
            session = PromptSession(flaky, store=store)
            engine = DeclarativeEngine(session=session)
            with pytest.raises(RuntimeError):
                engine.run_pipeline(pipeline(), store=store)
            observed = session.stats.filter_selectivity(PREDICATE)
            assert observed is not None
        with Store(path) as store:
            resumed_session = PromptSession(corpus_llm(), store=store)
            assert resumed_session.stats.filter_selectivity(PREDICATE) == pytest.approx(
                observed
            )

    def test_store_attached_to_session_is_used_implicitly(self, tmp_path):
        path = tmp_path / "store.db"
        with Store(path) as store:
            engine = fresh_engine(store)
            engine.run_pipeline(pipeline())  # no store= argument
            assert store.checkpoint_count() == 2
        with Store(path) as store:
            warm = fresh_engine(store).run_pipeline(pipeline())
        assert warm.total_calls == 0

    def test_runs_without_store_are_unaffected(self):
        engine = fresh_engine(None)
        report = engine.run_pipeline(pipeline())
        assert report.restored_steps == []
        assert report.total_calls > 0


class TestQueryLayerResume:
    def test_dataset_with_store_round_trip(self, tmp_path):
        from repro.query.dataset import Dataset

        path = tmp_path / "store.db"
        query = lambda: (  # noqa: E731 - a fresh lazy query per run
            Dataset(WORDS, name="letters")
            .filter(PREDICATE, strategy="per_item")
            .sort("alphabetical order", strategy="pairwise")
        )
        with Store(path) as store:
            cold = query().with_store(store).run(fresh_engine(None))
        assert cold.total_calls > 0
        with Store(path) as store:
            warm = query().with_store(store).run(fresh_engine(None))
        assert warm.total_calls == 0
        assert warm.items == cold.items
        assert sorted(warm.report.restored_steps) == sorted(
            name for name in warm.report.step_reports
        )
