"""Tests for workload profiles: save/load, decay merging, warm-start parity."""

from __future__ import annotations

import pytest

from repro.core.engine import DeclarativeEngine
from repro.core.physical import RuntimeStats
from repro.core.planner import CostPlanner
from repro.core.session import PromptSession
from repro.core.spec import FilterSpec, PipelineSpec, PipelineStep
from repro.exceptions import StoreError
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM
from repro.store import Store, WorkloadProfile

MODEL = "sim-gpt-3.5-turbo"
PREDICATE = "mentions an animal"
ITEMS = [
    "the cat sat on the mat",
    "stock markets rallied today",
    "a dog barked all night",
    "the committee approved the budget",
    "elephants migrate across the savanna",
    "the recipe needs two cups of flour",
    "a flock of geese flew south",
    "the printer is out of toner",
    "wild horses roam the plains",
    "quarterly earnings beat expectations",
]


def animal_llm() -> SimulatedLLM:
    animals = ("cat", "dog", "elephant", "geese", "horse")
    oracle = Oracle()
    oracle.register_predicate(
        PREDICATE, lambda item: any(animal in item for animal in animals)
    )
    return SimulatedLLM(oracle, seed=61)


def observed_stats() -> RuntimeStats:
    stats = RuntimeStats()
    stats.record_filter(PREDICATE, evaluated=100, kept=30)
    stats.record_dedup(inputs=60, survivors=20)
    stats.record_pair_match(judged=50, duplicates=10)
    stats.record_join(left=40, matched=8)
    stats.record_blocked_pairs(candidates=66, upper_bound=100)
    stats.record_calls("sort:pairwise", estimated=10, actual=15)
    return stats


class TestStateRoundTrip:
    def test_ratios_survive_export_and_merge(self):
        stats = observed_stats()
        fresh = RuntimeStats()
        fresh.merge_state(stats.export_state())
        assert fresh.filter_selectivity(PREDICATE) == pytest.approx(0.3)
        assert fresh.dedup_survivor_ratio() == pytest.approx(20 / 60)
        assert fresh.pair_match_rate() == pytest.approx(0.2)
        assert fresh.join_selectivity() == pytest.approx(0.2)
        assert fresh.blocked_pair_rate() == pytest.approx(0.66)
        assert fresh.call_ratio("sort:pairwise") == pytest.approx(1.5)
        assert fresh.call_count("sort:pairwise") == 15
        assert fresh.run_count("sort:pairwise") == 1

    def test_decay_scales_evidence_not_ratios(self):
        stats = observed_stats()
        fresh = RuntimeStats()
        fresh.merge_state(stats.export_state(), weight=0.5)
        # Same ratio as saved (numerator and denominator scaled together)...
        assert fresh.filter_selectivity(PREDICATE) == pytest.approx(0.3)
        # ...but new evidence of equal raw size now outweighs the history
        # two to one instead of meeting it halfway.
        fresh.record_filter(PREDICATE, evaluated=100, kept=90)
        merged = fresh.filter_selectivity(PREDICATE)
        assert merged == pytest.approx((0.5 * 30 + 90) / (0.5 * 100 + 100))
        assert merged > 0.6  # fresh observations dominate

    def test_merge_with_zero_weight_is_a_no_op(self):
        fresh = RuntimeStats()
        fresh.merge_state(observed_stats().export_state(), weight=0.0)
        assert fresh.empty

    def test_profile_json_round_trip(self):
        profile = WorkloadProfile.from_stats(observed_stats())
        restored = WorkloadProfile.from_json(profile.to_json())
        assert restored.state == profile.state

    def test_malformed_payload_raises(self):
        with pytest.raises(StoreError):
            WorkloadProfile.from_json("{not json")

    def test_newer_profile_version_raises(self):
        with pytest.raises(StoreError, match="newer"):
            WorkloadProfile.from_json('{"version": 99, "state": {}}')

    def test_invalid_decay_rejected(self):
        profile = WorkloadProfile.from_stats(observed_stats())
        with pytest.raises(StoreError):
            profile.apply_to(RuntimeStats(), decay=0.0)


class TestStoreIntegration:
    def test_save_and_apply_through_store(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            store.save_profile(observed_stats())
            fresh = RuntimeStats()
            assert store.apply_profile(fresh) is True
            assert fresh.filter_selectivity(PREDICATE) == pytest.approx(0.3)

    def test_apply_without_saved_profile_is_false(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            assert store.apply_profile(RuntimeStats()) is False

    def test_unseeded_session_save_merges_instead_of_clobbering(self, tmp_path):
        # Process A saves a rich profile.  Process B (a session built
        # WITHOUT store=) runs one tiny pipeline against the same store:
        # the accumulated history must survive underneath, not be replaced.
        path = tmp_path / "store.db"
        with Store(path) as store:
            store.save_profile(observed_stats())
        with Store(path) as store:
            unseeded = PromptSession(animal_llm())  # no store=
            engine = DeclarativeEngine(session=unseeded)
            engine.run_pipeline(
                PipelineSpec(
                    name="tiny",
                    steps=[
                        PipelineStep(
                            name="screen",
                            task=FilterSpec(
                                items=ITEMS, predicate=PREDICATE, strategy="per_item"
                            ),
                        )
                    ],
                ),
                store=store,
            )
        with Store(path) as store:
            loaded = RuntimeStats()
            store.apply_profile(loaded)
        # The rich profile's dedup observation (which the tiny run never
        # touched) is still present.
        assert loaded.dedup_survivor_ratio() == pytest.approx(20 / 60)
        # And the tiny run's fresh filter evidence is in there too.
        assert loaded.filter_selectivity(PREDICATE) is not None

    def test_named_profiles_are_independent(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            store.save_profile(observed_stats(), name="workload-a")
            assert store.load_profile(name="workload-b") is None
            assert store.load_profile(name="workload-a") is not None

    def test_session_save_profile_requires_a_store(self):
        session = PromptSession(animal_llm())
        with pytest.raises(StoreError, match="store"):
            session.save_profile()


class TestWarmStartParity:
    """A store-loaded session must quote like the warm session that saved."""

    def test_cold_session_with_profile_quotes_like_warm_session(self, tmp_path):
        spec = FilterSpec(items=ITEMS, predicate=PREDICATE, strategy="per_item")
        path = tmp_path / "store.db"

        # Session one runs the filter and saves its profile.
        with Store(path) as store:
            warm = PromptSession(animal_llm(), store=store)
            engine = DeclarativeEngine(session=warm)
            engine.filter(spec)
            warm_quote = engine.planner().estimate_spec(
                FilterSpec(items=ITEMS, predicate=PREDICATE, strategy="per_item")
            )
            warm_selectivity = warm.stats.filter_selectivity(PREDICATE)
            warm.save_profile()

        # Session two starts cold but loads the profile via the store.
        with Store(path) as store:
            cold = PromptSession(animal_llm(), store=store)
            engine2 = DeclarativeEngine(session=cold)
            cold_quote = engine2.planner().estimate_spec(
                FilterSpec(items=ITEMS, predicate=PREDICATE, strategy="per_item")
            )
            assert cold.stats.filter_selectivity(PREDICATE) == pytest.approx(
                warm_selectivity
            )
            assert cold_quote.calls == warm_quote.calls
            assert cold_quote.dollars == pytest.approx(warm_quote.dollars)

    def test_explain_annotations_match_warm_session(self, tmp_path):
        """Acceptance: the store-loaded session renders the same
        prior -> observed quote annotations as a warm in-process session."""
        from repro.query.dataset import Dataset

        path = tmp_path / "store.db"
        query = Dataset(ITEMS, name="annotated").filter(
            PREDICATE, expected_selectivity=0.5, strategy="per_item"
        )
        with Store(path) as store:
            warm = PromptSession(animal_llm(), store=store)
            engine = DeclarativeEngine(session=warm)
            query.with_store(store).run(engine)
            warm_explain = query.explain(planner=engine.planner())
        assert "-> observed" in warm_explain

        with Store(path) as store:
            cold = PromptSession(animal_llm(), store=store)
            cold_explain = query.explain(
                planner=DeclarativeEngine(session=cold).planner()
            )
        assert cold_explain == warm_explain

    def test_profile_feeds_downstream_estimates_without_stats_sharing(self, tmp_path):
        # The profile is the only channel: a fresh CostPlanner seeded from a
        # profile-loaded stats store prices the observed selectivity, a
        # planner without stats prices the prior.
        stats = observed_stats()
        with Store(tmp_path / "store.db") as store:
            store.save_profile(stats)
            loaded = RuntimeStats()
            store.apply_profile(loaded)
        spec = FilterSpec(items=ITEMS, predicate=PREDICATE, strategy="per_item")
        with_stats = CostPlanner(MODEL, stats=loaded).estimate_spec(spec)
        without = CostPlanner(MODEL).estimate_spec(spec)
        assert with_stats.calls == without.calls  # first predicate pass is fixed
        # A two-predicate chain shrinks by the observed 0.3, not the 0.5 prior.
        chain = FilterSpec(
            items=ITEMS, predicates=(PREDICATE, "second check"), strategy="per_item"
        )
        with_stats_chain = CostPlanner(MODEL, stats=loaded).estimate_spec(chain)
        without_chain = CostPlanner(MODEL).estimate_spec(chain)
        assert with_stats_chain.calls < without_chain.calls
