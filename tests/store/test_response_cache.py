"""Tests for the durable response cache (drop-in + LRU eviction)."""

from __future__ import annotations

import pytest

from repro.llm.base import LLMResponse
from repro.llm.cache import CachedClient, ResponseCacheLike
from repro.store import PersistentResponseCache, Store
from repro.tokenizer.cost import Usage


def response(text: str, *, prompt_tokens: int = 10) -> LLMResponse:
    return LLMResponse(
        text=text,
        model="sim-gpt-3.5-turbo",
        usage=Usage(prompt_tokens=prompt_tokens, completion_tokens=4, calls=1),
        confidence=0.75,
        metadata={"routing": "direct"},
    )


class CountingClient:
    """Minimal client counting its completions (the cache's inner client)."""

    default_model = "sim-gpt-3.5-turbo"

    def __init__(self) -> None:
        self.calls = 0

    def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
        self.calls += 1
        return LLMResponse(
            text=f"echo:{prompt}",
            model=model or self.default_model,
            usage=Usage(prompt_tokens=len(prompt.split()), completion_tokens=2, calls=1),
        )


@pytest.fixture()
def store(tmp_path):
    with Store(tmp_path / "store.db") as handle:
        yield handle


class TestRoundTrip:
    def test_get_returns_put_response_field_for_field(self, store):
        cache = store.response_cache()
        original = response("forty-two")
        cache.put("m", "p", original)
        restored = cache.get("m", "p")
        assert restored is not None
        assert restored.text == original.text
        assert restored.model == original.model
        assert restored.confidence == original.confidence
        assert restored.metadata == original.metadata
        assert restored.usage.prompt_tokens == original.usage.prompt_tokens
        assert restored.usage.calls == original.usage.calls

    def test_miss_returns_none_and_counts(self, store):
        cache = store.response_cache()
        assert cache.get("m", "unknown") is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_hit_miss_accounting_matches_in_memory_semantics(self, store):
        cache = store.response_cache()
        cache.put("m", "p", response("x"))
        cache.get("m", "p")
        cache.get("m", "q")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_len_and_clear(self, store):
        cache = store.response_cache()
        cache.put("m", "a", response("1"))
        cache.put("m", "b", response("2"))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.get("m", "a") is None

    def test_satisfies_cache_protocol(self, store):
        assert isinstance(store.response_cache(), ResponseCacheLike)


class TestPersistence:
    def test_entries_survive_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        with Store(path) as store:
            store.response_cache().put("m", "p", response("durable"))
        with Store(path) as reopened:
            restored = reopened.response_cache().get("m", "p")
            assert restored is not None
            assert restored.text == "durable"

    def test_drop_in_behind_cached_client_across_processes_equivalent(self, tmp_path):
        path = tmp_path / "store.db"
        # First "process": miss, served by the inner client.
        first_inner = CountingClient()
        with Store(path) as store:
            client = CachedClient(first_inner, store.response_cache())
            first = client.complete("what is 2+2")
        assert first_inner.calls == 1
        # Second "process": the disk cache answers; inner client untouched.
        second_inner = CountingClient()
        with Store(path) as store:
            client = CachedClient(second_inner, store.response_cache())
            second = client.complete("what is 2+2")
        assert second_inner.calls == 0
        assert second.text == first.text
        assert second.metadata.get("cache_hit") is True
        assert second.usage.calls == 0  # hits are free, like the in-memory cache

    def test_nonzero_temperature_bypasses_cache(self, tmp_path):
        inner = CountingClient()
        with Store(tmp_path / "store.db") as store:
            client = CachedClient(inner, store.response_cache())
            client.complete("p", temperature=0.7)
            client.complete("p", temperature=0.7)
        assert inner.calls == 2


class TestEviction:
    def test_lru_eviction_by_entry_count(self, tmp_path):
        with Store(tmp_path / "store.db", max_cache_entries=3) as store:
            cache = store.response_cache()
            for key in "abcd":
                cache.put("m", key, response(key))
            assert len(cache) == 3
            assert cache.get("m", "a") is None  # oldest entry evicted
            assert cache.get("m", "d") is not None

    def test_get_refreshes_recency(self, tmp_path):
        with Store(tmp_path / "store.db", max_cache_entries=3) as store:
            cache = store.response_cache()
            for key in "abc":
                cache.put("m", key, response(key))
            cache.get("m", "a")  # touch: "b" is now the LRU victim
            cache.put("m", "d", response("d"))
            assert cache.get("m", "a") is not None
            assert cache.get("m", "b") is None

    def test_put_of_existing_key_replaces_without_evicting(self, tmp_path):
        with Store(tmp_path / "store.db", max_cache_entries=2) as store:
            cache = store.response_cache()
            cache.put("m", "a", response("1"))
            cache.put("m", "b", response("2"))
            cache.put("m", "a", response("updated"))
            assert len(cache) == 2
            assert cache.get("m", "a").text == "updated"
            assert cache.get("m", "b") is not None

    def test_byte_cap_evicts_lru_first(self, tmp_path):
        with Store(tmp_path / "store.db", max_cache_bytes=2_000) as store:
            cache = store.response_cache()
            big = "x" * 600
            for key in ("a", "b", "c", "d", "e"):
                cache.put("m", key, response(big + key))
            assert cache.total_bytes() <= 2_000
            assert cache.get("m", "a") is None
            assert cache.get("m", "e") is not None

    def test_single_oversized_entry_is_kept(self, tmp_path):
        # One response larger than the whole cap must not thrash to empty.
        with Store(tmp_path / "store.db", max_cache_bytes=100) as store:
            cache = store.response_cache()
            cache.put("m", "huge", response("y" * 5_000))
            assert len(cache) == 1

    def test_invalid_limits_rejected(self, store):
        with pytest.raises(ValueError):
            PersistentResponseCache(store.db, max_entries=0)
        with pytest.raises(ValueError):
            PersistentResponseCache(store.db, max_bytes=0)
