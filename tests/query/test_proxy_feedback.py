"""Tests for the proxy-resolve feedback loop (ROADMAP satellite items).

Two gaps closed here:

* proxy-rewritten dedups (embedding blocking + pair judgments) now record
  dedup survivor ratios, which previously only records-path resolves fed;
* the blocker's observed candidate-pair fraction of the k·n upper bound is
  recorded, and the next proxy quote is priced from it.
"""

from __future__ import annotations

import pytest

from repro.query.dataset import Dataset
from tests.query.support import clean_engine, product_corpus

N_ENTITIES = 12
VARIANTS = 3


def dedup_query(items) -> Dataset:
    return Dataset(list(items), name="feedback").resolve()


@pytest.fixture()
def executed_engine():
    """An engine that has run one proxy-rewritten dedup query."""
    items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
    engine = clean_engine(oracle)
    result = dedup_query(items).run(engine)
    return engine, items, result


class TestProxyResolveFeedsStats:
    def test_plan_actually_used_the_proxy(self, executed_engine):
        engine, items, result = executed_engine
        assert any("block" in name for name in result.report.step_reports)

    def test_dedup_survivor_ratio_recorded_from_proxy_path(self, executed_engine):
        engine, items, result = executed_engine
        ratio = engine.session.stats.dedup_survivor_ratio()
        assert ratio is not None
        # Clean oracle: every entity's variants merge, so survivors are the
        # unique entities exactly.
        assert ratio == pytest.approx(N_ENTITIES / len(set(items)))
        assert len(result.items) == N_ENTITIES

    def test_blocked_pair_rate_recorded_and_below_upper_bound(self, executed_engine):
        engine, items, result = executed_engine
        rate = engine.session.stats.blocked_pair_rate()
        assert rate is not None
        assert 0.0 < rate <= 1.0
        # Mutual-neighbor dedup makes the real candidate count strictly
        # smaller than k*n on any non-trivial corpus.
        assert rate < 1.0

    def test_second_quote_matches_observed_calls(self, executed_engine):
        engine, items, result = executed_engine
        requote = dedup_query(items).quote(planner=engine.planner())
        # The re-quote prices the blocked pairs from the observed rate; on
        # this deterministic workload that lands exactly on what ran.
        assert requote.total_calls == result.total_calls

    def test_second_quote_cheaper_than_cold_quote(self, executed_engine):
        engine, items, result = executed_engine
        cold = dedup_query(items).quote()
        warm = dedup_query(items).quote(planner=engine.planner())
        assert warm.total_calls < cold.total_calls

    def test_checkpoint_replays_do_not_double_count_evidence(self, tmp_path):
        from repro.store import Store

        items, oracle = product_corpus(n_entities=N_ENTITIES, variants=VARIANTS)
        with Store(tmp_path / "store.db") as store:
            engine = clean_engine(oracle)
            dedup_query(items).with_store(store).run(engine)
            snapshot = engine.session.stats.snapshot()
            baseline = engine.session.stats.export_state()["dedup"]
            # Two free replays: every judge step restores from checkpoints.
            dedup_query(items).with_store(store).run(engine)
            dedup_query(items).with_store(store).run(engine)
            after = engine.session.stats.export_state()["dedup"]
        assert snapshot["dedup_survivor_ratio"] is not None
        # The evidence mass is unchanged — restored steps record nothing.
        assert after == baseline

    def test_degenerate_single_survivor_does_not_double_count(self):
        # A one-item dedup goes down the records path inside the engine,
        # which already records its ratio; the feedback hook must skip it.
        items, oracle = product_corpus(n_entities=1, variants=1)
        engine = clean_engine(oracle)
        dedup_query(items).run(engine)
        ratio = engine.session.stats.snapshot()["dedup_survivor_ratio"]
        # Either nothing recorded (no dedup ran) or exactly one recording.
        assert ratio is None or ratio == 1.0
