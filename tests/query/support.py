"""Shared helpers for the query-frontend tests and benchmarks.

The equivalence tests compare optimized against naive plans, so the
simulated LLM runs with a *clean* behaviour configuration: zero error rates
and saturated duplicate judgments, making every unit prompt's answer a pure
function of the ground truth.  Structural plan rewrites then cannot hide
behind noise — any result difference is a real semantics bug.
"""

from __future__ import annotations

from repro.core.engine import DeclarativeEngine
from repro.llm.behaviors import BehaviorConfig
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM

MODEL = "sim-gpt-3.5-turbo"

#: Words used to build small product-like corpora with duplicate variants.
PRODUCT_WORDS = [
    "laptop", "monitor", "keyboard", "mouse", "webcam", "router",
    "speaker", "headset", "printer", "scanner", "tablet", "charger",
]


def clean_behavior() -> BehaviorConfig:
    """A noise-free behaviour configuration (see module docstring)."""
    return BehaviorConfig(
        comparison_base_error=0.0,
        comparison_floor_error=0.0,
        comparison_position_bias=0.0,
        rating_noise_sd=0.0,
        list_sort_noise=0.0,
        list_sort_noise_objective=0.0,
        list_drop_rate=0.0,
        list_hallucination_rate=0.0,
        duplicate_yes_threshold=0.0,
        duplicate_sharpness=1000.0,
        duplicate_false_positive_rate=0.0,
        group_merge_error=0.0,
        group_split_error=0.0,
        impute_accuracy=1.0,
        impute_accuracy_with_examples=1.0,
        impute_format_variant_rate=0.0,
        impute_format_variant_rate_with_examples=0.0,
        predicate_error=0.0,
        count_relative_noise=0.0,
        categorize_error=0.0,
    )


def product_corpus(n_entities: int = 6, variants: int = 2) -> tuple[list[str], Oracle]:
    """Items with duplicate variants plus an entity-consistent oracle.

    Each entity appears as ``"<word> device"`` plus ``"<word> device (refurb
    N)"`` variants mapping to the same entity id; predicates and scores are
    registered per *entity*, so duplicates always agree on them — the
    declarative assumption under which filter pushdown across dedup is exact.
    """
    words = PRODUCT_WORDS[:n_entities]
    items: list[str] = []
    entities: dict[str, str] = {}
    scores: dict[str, float] = {}
    categories: dict[str, str] = {}
    for rank, word in enumerate(words):
        texts = [f"{word} device"] + [
            f"{word} device (refurb {variant})" for variant in range(1, variants)
        ]
        for variant, text in enumerate(texts):
            entities[text] = word
            # Distinct per-item scores (no rating ties): entities are ranked
            # by word order, variants just behind their clean listing.
            scores[text] = float((len(words) - rank) * 10 - variant)
            categories[text] = "early" if rank < len(words) // 2 else "late"
            items.append(text)
    oracle = Oracle()
    oracle.register_entities(entities)
    oracle.register_scores("important", scores)
    oracle.register_categories(categories)
    oracle.register_predicate("is a short name", lambda text: len(text.split()[0]) <= 6)
    oracle.register_predicate("keeps everything", lambda text: True)
    return items, oracle


def clean_engine(oracle: Oracle, *, seed: int = 11, **kwargs) -> DeclarativeEngine:
    """An engine over a noise-free simulated LLM."""
    return DeclarativeEngine(
        SimulatedLLM(oracle, seed=seed, behavior=clean_behavior()),
        default_model=MODEL,
        **kwargs,
    )
