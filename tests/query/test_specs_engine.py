"""Tests for the extended spec layer: new spec types, planner arms, engine
methods.  This is the layer the fluent API compiles onto, exercised directly.
"""

from __future__ import annotations

import pytest

from repro.core.planner import CostPlanner
from repro.core.spec import (
    CategorizeSpec,
    ClusterSpec,
    FilterSpec,
    JoinSpec,
    TopKSpec,
)
from repro.exceptions import SpecError
from tests.query.support import MODEL, clean_engine, product_corpus

PLANNER = CostPlanner(MODEL)


class TestSpecValidation:
    def test_filter_spec_requires_predicate_and_items(self):
        with pytest.raises(SpecError, match="predicate"):
            FilterSpec(items=["a"]).validate()
        with pytest.raises(SpecError, match="at least one item"):
            FilterSpec(predicate="p").validate()
        with pytest.raises(SpecError, match="non-empty"):
            FilterSpec(items=["a"], predicate="p", predicates=("",)).validate()
        with pytest.raises(SpecError, match="expected_selectivities"):
            FilterSpec(
                items=["a"], predicate="p", expected_selectivities=(1.5,)
            ).validate()
        FilterSpec(items=["a"], predicates=("p", "q")).validate()
        assert FilterSpec(predicate="p", predicates=("q",)).all_predicates == ("p", "q")

    def test_categorize_spec_requires_two_distinct_categories(self):
        with pytest.raises(SpecError, match="two categories"):
            CategorizeSpec(items=["a"], categories=["x"]).validate()
        with pytest.raises(SpecError, match="distinct"):
            CategorizeSpec(items=["a"], categories=["x", "x"]).validate()
        with pytest.raises(SpecError, match="at least one item"):
            CategorizeSpec(categories=["x", "y"]).validate()

    def test_top_k_spec_bounds_k(self):
        with pytest.raises(SpecError, match="criterion"):
            TopKSpec(items=["a", "b"]).validate()
        with pytest.raises(SpecError, match="at least 1"):
            TopKSpec(items=["a", "b"], criterion="c", k=0).validate()
        with pytest.raises(SpecError, match="exceeds"):
            TopKSpec(items=["a", "b"], criterion="c", k=3).validate()

    def test_join_and_cluster_specs(self):
        with pytest.raises(SpecError, match="each side"):
            JoinSpec(left=["a"]).validate()
        with pytest.raises(SpecError, match="at least one item"):
            ClusterSpec().validate()
        with pytest.raises(SpecError, match="unique"):
            ClusterSpec(items=["a", "a"]).validate()


class TestPlannerArms:
    def test_filter_estimate_scales_with_strategy(self):
        items = [f"item number {index}" for index in range(10)]
        per_item = PLANNER.estimate_spec(FilterSpec(items=items, predicate="p"))
        assert per_item.calls == 10
        assert per_item.strategy == "filter:auto"
        ensemble = PLANNER.estimate_spec(
            FilterSpec(
                items=items,
                predicate="p",
                strategy="ensemble_vote",
                strategy_options={"models": [MODEL, MODEL, MODEL]},
            )
        )
        assert ensemble.calls == 30

    def test_fused_filter_quotes_like_sequential_steps(self):
        items = [f"item number {index}" for index in range(10)]
        fused = PLANNER.estimate_spec(
            FilterSpec(
                items=items,
                predicates=("p", "q"),
                expected_selectivities=(0.5, 0.5),
            )
        )
        first = PLANNER.estimate_spec(
            FilterSpec(items=items, predicate="p", expected_selectivities=(0.5,))
        )
        second = PLANNER.estimate_spec(
            FilterSpec(items=items[:5], predicate="q", expected_selectivities=(0.5,))
        )
        assert fused.calls == first.calls + second.calls
        assert fused.dollars == pytest.approx(first.dollars + second.dollars)

    def test_categorize_estimate_multiplies_samples(self):
        items = [f"item number {index}" for index in range(6)]
        spec = CategorizeSpec(items=items, categories=["x", "y"])
        base = PLANNER.estimate_spec(spec)
        assert base.calls == 6
        sampled = PLANNER.estimate_spec(
            CategorizeSpec(
                items=items,
                categories=["x", "y"],
                strategy="self_consistency",
                strategy_options={"n_samples": 3},
            )
        )
        assert sampled.calls == 18

    def test_top_k_estimates_by_strategy(self):
        items = [f"item number {index}" for index in range(10)]
        rating = PLANNER.estimate_spec(
            TopKSpec(items=items, criterion="c", k=2, strategy="rating_only")
        )
        assert rating.calls == 10
        tournament = PLANNER.estimate_spec(
            TopKSpec(items=items, criterion="c", k=2, strategy="pairwise_tournament")
        )
        assert tournament.calls == 45
        hybrid = PLANNER.estimate_spec(TopKSpec(items=items, criterion="c", k=2))
        assert hybrid.calls == 10 + 15  # ratings + C(6, 2) shortlist tournament

    def test_join_estimates_by_strategy(self):
        left = [f"left item {index}" for index in range(5)]
        right = [f"right item {index}" for index in range(4)]
        all_pairs = PLANNER.estimate_spec(
            JoinSpec(left=left, right=right, strategy="all_pairs")
        )
        assert all_pairs.calls == 20
        blocked = PLANNER.estimate_spec(JoinSpec(left=left, right=right))
        assert blocked.calls == 5 * 3  # default block_k=3

    def test_cluster_estimates_by_strategy(self):
        items = [f"item number {index}" for index in range(20)]
        single = PLANNER.estimate_spec(ClusterSpec(items=items, strategy="single_prompt"))
        assert single.calls == 1
        two_phase = PLANNER.estimate_spec(ClusterSpec(items=items))
        assert two_phase.calls == 1 + 8 * 6  # seed prompt + remaining x seed/2


class TestEngineMethods:
    def test_filter_applies_conjunctive_predicates_over_survivors(self, products):
        items, oracle = products
        oracle.register_predicate("is clean", lambda text: "(refurb" not in text)
        engine = clean_engine(oracle)
        result = engine.filter(
            FilterSpec(items=items, predicates=("is clean", "is a short name"))
        )
        expected = [
            item
            for item in items
            if "(refurb" not in item and len(item.split()[0]) <= 6
        ]
        assert result.kept == expected
        # The second predicate only ran over the first one's survivors.
        clean_count = sum(1 for item in items if "(refurb" not in item)
        assert result.votes_used == len(items) + clean_count
        assert result.metadata["predicates"] == ["is clean", "is a short name"]
        assert result.usage.calls == result.votes_used

    def test_categorize_and_cluster_and_top_k_and_join(self, products):
        items, oracle = products
        engine = clean_engine(oracle)
        categorized = engine.categorize(
            CategorizeSpec(items=items[:4], categories=["early", "late"])
        )
        assert categorized.assignments[items[0]] == "early"
        clustered = engine.cluster(ClusterSpec(items=items[:4], strategy="single_prompt"))
        assert sorted(i for c in clustered.clusters for i in c) == [0, 1, 2, 3]
        top = engine.top_k(
            TopKSpec(items=items[:6], criterion="important", k=2, strategy="rating_only")
        )
        assert len(top.top_items) == 2
        joined = engine.join(
            JoinSpec(left=items[:2], right=items[:2], strategy="all_pairs")
        )
        assert (0, 0) in joined.matches

    def test_engine_budget_threads_through_new_operators(self, products):
        from repro.core.budget import Budget
        from tests.query.support import clean_behavior
        from repro.llm.simulated import SimulatedLLM
        from repro.core.engine import DeclarativeEngine

        items, oracle = products
        engine = DeclarativeEngine(
            SimulatedLLM(oracle, seed=11, behavior=clean_behavior()),
            default_model=MODEL,
            budget=Budget(limit=1e-07),
        )
        from repro.exceptions import BudgetExceededError

        with pytest.raises(BudgetExceededError):
            engine.filter(FilterSpec(items=items, predicate="keeps everything"))
