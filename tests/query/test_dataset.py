"""Tests for the fluent Dataset builder: laziness, execution, results."""

from __future__ import annotations

import pytest

from repro.core.session import PromptSession
from repro.core.spec import FilterSpec, PipelineSpec, PipelineStep
from repro.data.products import generate_buy_dataset
from repro.exceptions import SpecError
from repro.llm.simulated import SimulatedLLM
from repro.query import Dataset
from tests.query.support import clean_behavior, clean_engine


class TestLaziness:
    def test_chaining_builds_a_plan_without_llm_calls(self, products):
        items, oracle = products
        engine = clean_engine(oracle)
        query = (
            Dataset(items, name="products")
            .filter("keeps everything")
            .resolve()
            .sort("important")
            .top_k("important", k=2)
        )
        assert engine.session.tracker.usage.calls == 0
        assert [node.op for node in query.logical_plan().nodes()] == [
            "source", "filter", "resolve", "sort", "top_k",
        ]

    def test_builders_are_immutable_and_branchable(self, products):
        items, _ = products
        base = Dataset(items, name="products")
        filtered = base.filter("keeps everything")
        sorted_ = base.sort("important")
        assert [n.op for n in base.logical_plan().nodes()] == ["source"]
        assert filtered.logical_plan().root.op == "filter"
        assert sorted_.logical_plan().root.op == "sort"
        # Both branches share the same source node object.
        assert filtered.logical_plan().root.inputs[0] is sorted_.logical_plan().root.inputs[0]

    def test_empty_source_rejected(self):
        with pytest.raises(SpecError, match="at least one item"):
            Dataset([])

    def test_invalid_arguments_rejected_eagerly(self, products):
        items, _ = products
        dataset = Dataset(items)
        with pytest.raises(SpecError, match="predicate"):
            dataset.filter("")
        with pytest.raises(SpecError, match="criterion"):
            dataset.sort("")
        with pytest.raises(SpecError, match="at least 1"):
            dataset.top_k("important", k=0)
        with pytest.raises(SpecError, match="expected_selectivity"):
            dataset.filter("x", expected_selectivity=0.0)
        with pytest.raises(SpecError, match="non-negative"):
            dataset.with_budget(-1.0)


class TestExecution:
    def test_filter_resolve_topk_chain(self, products):
        items, oracle = products
        result = (
            Dataset(items, name="products")
            .filter("keeps everything")
            .resolve()
            .top_k("important", k=2, strategy="pairwise_tournament")
            .run(clean_engine(oracle))
        )
        # Dedup keeps one representative per entity; top-2 by the latent
        # importance scores are the first two entity representatives.
        assert result.items == ["laptop device", "monitor device"]
        assert result.total_calls > 0
        assert result.total_cost > 0.0

    def test_annotators_pass_items_through(self, products):
        items, oracle = products
        result = (
            Dataset(items, name="products")
            .categorize(["early", "late"])
            .cluster(strategy="single_prompt")
            .run(clean_engine(oracle))
        )
        assert result.items == items
        assignments = result.step_result("categorize").assignments
        assert set(assignments) == set(items)
        clusters = result.step_result("cluster").clusters
        assert sorted(index for group in clusters for index in group) == list(
            range(len(items))
        )

    def test_sort_orders_by_criterion(self, products):
        items, oracle = products
        result = (
            Dataset(items, name="products")
            .sort("important", strategy="pairwise")
            .run(clean_engine(oracle))
        )
        assert result.items == items  # registered scores are descending in input order

    def test_join_keeps_left_items_with_matches(self, products):
        items, oracle = products
        left = [item for item in items if "(refurb" not in item][:4]
        right = [f"{word} device (refurb 1)" for word in ["laptop", "monitor"]]
        result = (
            Dataset(left, name="left")
            .join(Dataset(right, name="right"), strategy="all_pairs")
            .run(clean_engine(oracle))
        )
        assert result.items == ["laptop device", "monitor device"]
        matches = result.step_result("join").matches
        assert len(matches) == 2

    def test_impute_runs_off_the_item_chain(self, products):
        items, oracle = products
        data = generate_buy_dataset(n_records=20, seed=4)
        for record in data.queries:
            oracle.register_value(
                data.serialized_query(record),
                data.target_attribute,
                data.ground_truth[record.record_id],
            )
        result = (
            Dataset(items[:4], name="products")
            .impute(data, strategy="llm_only")
            .run(clean_engine(oracle))
        )
        assert result.items == items[:4]
        predictions = result.step_result("impute").predictions
        assert data.accuracy(predictions) == 1.0

    def test_run_accepts_session_and_raw_client(self, products):
        items, oracle = products
        query = Dataset(items[:4], name="products").filter("keeps everything")
        session = PromptSession(
            SimulatedLLM(oracle, seed=11, behavior=clean_behavior())
        )
        via_session = query.run(session)
        assert via_session.items == items[:4]
        assert session.tracker.usage.calls > 0
        via_client = query.run(SimulatedLLM(oracle, seed=11, behavior=clean_behavior()))
        assert via_client.items == via_session.items

    def test_budget_cap_stops_cleanly(self, products):
        items, oracle = products
        result = (
            Dataset(items, name="products")
            .resolve()
            .sort("important")
            .with_budget(1e-07)
            .run(clean_engine(oracle))
        )
        assert result.report.stopped_early
        assert result.report.stop_reason
        assert result.items == []  # unknowable mid-pipeline; partials in report

    def test_concurrent_scheduling_matches_sequential(self, products):
        """Lineage-parallel steps give identical results at any pool size."""
        import os

        items, oracle = products
        threads = int(os.environ.get("REPRO_TEST_THREADS", "4"))
        query = (
            Dataset(items, name="products")
            .categorize(["early", "late"])
            .sort("important", strategy="rating")
            .top_k("important", k=3, strategy="rating_only")
        )
        sequential = query.run(clean_engine(oracle), max_concurrency=1)
        concurrent = query.run(clean_engine(oracle), max_concurrency=threads)
        assert concurrent.items == sequential.items
        assert (
            concurrent.step_result("categorize").assignments
            == sequential.step_result("categorize").assignments
        )
        assert concurrent.total_calls == sequential.total_calls

    def test_explain_attached_to_result(self, products):
        items, oracle = products
        result = Dataset(items[:4], name="products").sort("important").run(
            clean_engine(oracle)
        )
        assert "Query plan: products" in result.explain
        assert "s1_sort" in result.explain

    def test_step_result_unknown_name(self, products):
        items, oracle = products
        result = Dataset(items[:4], name="products").sort("important").run(
            clean_engine(oracle)
        )
        with pytest.raises(KeyError):
            result.step_result("join")


class TestCompileValidation:
    def test_empty_items_spec_rejected_at_compile_time_with_step_name(self):
        pipeline = PipelineSpec(
            name="broken",
            steps=[
                PipelineStep(
                    name="empty-filter",
                    task=FilterSpec(items=[], predicate="keeps everything"),
                )
            ],
        )
        with pytest.raises(SpecError, match="'empty-filter'.*at least one item"):
            pipeline.validate()

    def test_runtime_factory_error_names_the_step(self, products):
        items, oracle = products
        oracle.register_predicate("keeps nothing", lambda text: False)
        query = (
            Dataset(items, name="products").filter("keeps nothing").sort("important")
        )
        with pytest.raises(SpecError, match="s2_sort"):
            query.run(clean_engine(oracle))

    def test_compiled_pipeline_validates(self, products):
        items, oracle = products
        spec = (
            Dataset(items, name="products")
            .filter("keeps everything")
            .resolve()
            .to_pipeline()
        )
        assert isinstance(spec, PipelineSpec)
        spec.validate()
        assert [step.name for step in spec.steps][0] == "s1_filter"


class TestTopLevelExports:
    def test_dataset_importable_from_repro_and_core(self):
        import repro
        import repro.core

        assert repro.Dataset is Dataset
        assert repro.core.Dataset is Dataset
        assert repro.optimize is repro.core.optimize
