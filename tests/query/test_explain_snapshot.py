"""Golden snapshot of ``.explain()`` — the optimizer's user-facing contract.

The pinned text asserts, in one place: deterministic step naming, the
filter-pushdown reordering, lineage-inferred ``depends_on`` edges, per-step
planner quotes, totals, the budget cap line, and the optimizer notes.  If an
intentional change to any of those alters this output, re-pin it here.
"""

from __future__ import annotations

import re

from repro.core.planner import CostPlanner
from repro.query import Dataset
from tests.query.support import MODEL, clean_engine, product_corpus

OPTIMIZED_GOLDEN = """\
Query plan: products (optimized)
  s1_filter      16 calls  $0.002076  <- -
              filter: is a short name
  s2_resolve     28 calls  $0.003906  <- s1_filter
              resolve duplicates to one representative per entity
  s3_top_k       28 calls  $0.003906  <- s2_resolve, s1_filter
              top 3 by 'important'
Estimated total: 72 calls, $0.009888
Budget cap: $0.050000
Optimizer notes:
  - pushed filter 'is a short name' ahead of resolve"""

NAIVE_GOLDEN = """\
Query plan: products (naive)
  s1_resolve    120 calls  $0.016740  <- -
              resolve duplicates to one representative per entity
  s2_filter      16 calls  $0.002076  <- s1_resolve
              filter: is a short name
  s3_top_k       28 calls  $0.003906  <- s2_filter
              top 3 by 'important'
Estimated total: 164 calls, $0.022722
Budget cap: $0.050000"""


def _query() -> Dataset:
    items, _ = product_corpus(n_entities=8, variants=2)
    return (
        Dataset(items, name="products")
        .resolve()
        .filter("is a short name", expected_selectivity=0.5)
        .top_k("important", k=3, strategy="pairwise_tournament")
        .with_budget(0.05)
    )


def test_optimized_explain_matches_golden():
    assert _query().explain(planner=CostPlanner(MODEL)) == OPTIMIZED_GOLDEN


def test_naive_explain_matches_golden():
    assert _query().explain(optimized=False, planner=CostPlanner(MODEL)) == NAIVE_GOLDEN


def test_quote_totals_match_the_rendered_totals():
    quote = _query().quote(planner=CostPlanner(MODEL))
    assert quote.total_calls == 72
    assert f"${quote.total_dollars:.6f}" == "$0.009888"


# -- ISSUE 4: shared-prefix and observed-stats annotations -----------------------------

SHARED_PREFIX_GOLDEN = """\
Query plan: products (optimized)
  s1_filter      6 calls  $0.000756  <- -
             filter: is a short name
  s2_join        9 calls  $0.001188  <- s1_filter
             semi-join against a second dataset
Estimated total: 15 calls, $0.001944
Optimizer notes:
  - shared common filter subplan across branches (compiled once, dependents fan out)"""

ADAPTIVE_GOLDEN = """\
Query plan: products (optimized)
  s1_filter      16 calls  $0.002076  ~0.0s  <- -
              filter: is a short name [selectivity prior 0.50 -> observed 0.50]
  s2_resolve     28 calls  $0.003906  ~0.0s  <- s1_filter
              resolve duplicates to one representative per entity [dedup survivors observed 0.50; call ratio observed 1.00]
  s3_top_k        6 calls  $0.000837  ~0.0s  <- s2_resolve, s1_filter
              top 3 by 'important' [call ratio observed 1.00]
Estimated total: 50 calls, $0.006819, ~0.0s
Budget cap: $0.050000
Optimizer notes:
  - pushed filter 'is a short name' ahead of resolve"""


def _mask_seconds(explain: str) -> str:
    """Replace wall-clock estimates with a placeholder.

    The ``~X.Xs`` figures extrapolate from *measured* call durations, so
    their exact values depend on machine speed; the snapshot pins their
    presence and placement, not the timing itself.
    """
    return re.sub(r"~\d+\.\d+s", "~_s", explain)


def _branched_query() -> Dataset:
    """A join whose two branches rebuild the same filter prefix from scratch."""
    items, _ = product_corpus(n_entities=6, variants=1)

    def prefix() -> Dataset:
        return Dataset(items, name="products").filter("is a short name")

    return prefix().join(prefix(), strategy="all_pairs")


def test_shared_prefix_explain_matches_golden():
    """The duplicated prefix compiles once; both consumers fan out from it."""
    assert _branched_query().explain(planner=CostPlanner(MODEL)) == SHARED_PREFIX_GOLDEN


def test_adaptive_explain_matches_golden():
    """After one run, the same session's quotes show prior -> observed stats."""
    items, oracle = product_corpus(n_entities=8, variants=2)
    query = (
        Dataset(items, name="products")
        .resolve()
        .filter("is a short name", expected_selectivity=0.5)
        .top_k("important", k=3, strategy="pairwise_tournament")
        .with_budget(0.05)
    )
    engine = clean_engine(oracle)
    first = query.explain(planner=engine.planner())
    assert first == OPTIMIZED_GOLDEN  # a fresh session quotes from the priors
    query.run(engine)
    assert _mask_seconds(query.explain(planner=engine.planner())) == _mask_seconds(
        ADAPTIVE_GOLDEN
    )
