"""Tests for the logical-plan optimizer rules and the compile lowering."""

from __future__ import annotations

import pytest

from repro.core.planner import CostPlanner
from repro.core.spec import FilterSpec, ResolveSpec, TopKSpec
from repro.core.physical import RuntimeStats
from repro.query import Dataset, compile_plan, optimize
from repro.query.optimizer import (
    fuse_adjacent_filters,
    insert_proxy_prefilters,
    order_semi_joins,
    push_filters_early,
    push_filters_into_joins,
    share_common_subplans,
)
from tests.query.support import MODEL, clean_engine, product_corpus

PLANNER = CostPlanner(MODEL)


def ops_of(plan):
    return [node.op for node in plan.nodes()]


class TestPushdown:
    def test_filter_commutes_ahead_of_pairwise_resolve(self, products):
        items, _ = products
        plan = Dataset(items, name="p").resolve().filter("keeps everything").logical_plan()
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_early,))
        assert ops_of(plan) == ["source", "resolve", "filter"]
        assert ops_of(optimized) == ["source", "filter", "resolve"]
        assert optimized.notes  # the rewrite is reported

    def test_filter_commutes_past_sort_and_annotators(self, products):
        items, _ = products
        plan = (
            Dataset(items, name="p")
            .sort("important", strategy="rating")
            .categorize(["early", "late"])
            .filter("keeps everything")
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_early,))
        assert ops_of(optimized) == ["source", "filter", "sort", "categorize"]

    def test_filter_not_pushed_past_top_k(self, products):
        items, _ = products
        plan = Dataset(items, name="p").top_k("important", k=3).filter(
            "keeps everything"
        ).logical_plan()
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_early,))
        assert ops_of(optimized) == ["source", "top_k", "filter"]

    def test_filter_not_pushed_past_whole_list_sort(self, products):
        items, _ = products
        plan = (
            Dataset(items, name="p")
            .sort("important", strategy="single_prompt")
            .filter("keeps everything")
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_early,))
        assert ops_of(optimized) == ["source", "sort", "filter"]

    def test_pushdown_reduces_the_quote(self, products):
        items, _ = products
        query = Dataset(items, name="p").resolve().filter("keeps everything")
        naive = query.quote(optimized=False, planner=PLANNER)
        optimized = query.quote(planner=PLANNER)
        assert optimized.total_dollars < naive.total_dollars
        assert optimized.total_calls < naive.total_calls


class TestFusion:
    def test_adjacent_filters_fuse_into_one_conjunctive_step(self, products):
        items, oracle = products
        query = Dataset(items, name="p").filter("is a short name").filter(
            "keeps everything"
        )
        optimized = optimize(query.logical_plan(), planner=PLANNER)
        assert ops_of(optimized) == ["source", "filter"]
        assert optimized.root.params["predicates"] == (
            "is a short name",
            "keeps everything",
        )
        spec = query.to_pipeline(planner=PLANNER)
        assert len(spec.steps) == 1
        # The fused step must produce exactly the unfused chain's survivors.
        fused = query.run(clean_engine(oracle))
        unfused = query.run(clean_engine(oracle), optimized=False)
        assert fused.items == unfused.items

    def test_filters_with_different_strategies_do_not_fuse(self, products):
        items, _ = products
        query = (
            Dataset(items, name="p")
            .filter("is a short name", strategy="per_item")
            .filter("keeps everything", strategy="adaptive", models=[MODEL, MODEL])
        )
        optimized = optimize(query.logical_plan(), planner=PLANNER, rules=(fuse_adjacent_filters,))
        assert ops_of(optimized) == ["source", "filter", "filter"]


class TestProxyInsertion:
    def test_proxy_inserted_when_planner_says_it_pays(self):
        items, _ = product_corpus(n_entities=12, variants=3)
        plan = Dataset(items, name="p").resolve().logical_plan()
        optimized = optimize(plan, planner=PLANNER, rules=(insert_proxy_prefilters,))
        assert optimized.root.params.get("proxy") is True
        assert any("proxy" in note for note in optimized.notes)

    def test_proxy_not_inserted_for_small_inputs(self):
        items, _ = product_corpus(n_entities=3, variants=1)
        plan = Dataset(items, name="p").resolve().logical_plan()
        optimized = optimize(plan, planner=PLANNER, rules=(insert_proxy_prefilters,))
        assert not optimized.root.params.get("proxy")

    def test_proxy_resolve_compiles_to_block_plus_judge_steps(self):
        items, _ = product_corpus(n_entities=12, variants=3)
        spec = Dataset(items, name="p").resolve().to_pipeline(planner=PLANNER)
        names = [step.name for step in spec.steps]
        assert names == ["s1_block", "s1_resolve"]
        assert spec.steps[0].run is not None  # LLM-free proxy step
        assert spec.steps[1].depends_on == ("s1_block",)

    def test_proxy_resolve_matches_naive_results_with_fewer_calls(self):
        items, oracle = product_corpus(n_entities=12, variants=3)
        query = Dataset(items, name="p").resolve()
        optimized = query.run(clean_engine(oracle))
        naive = query.run(clean_engine(oracle), optimized=False)
        assert optimized.items == naive.items
        assert optimized.total_calls < naive.total_calls


class TestLineageDependencies:
    def test_annotators_schedule_off_the_critical_path(self, products):
        items, _ = products
        query = Dataset(items, name="p").categorize(["early", "late"]).sort(
            "important", strategy="rating"
        )
        optimized_spec = query.to_pipeline(planner=PLANNER)
        by_name = {step.name: step for step in optimized_spec.steps}
        assert by_name["s2_sort"].depends_on == ()  # not gated on categorize
        naive_spec = query.to_pipeline(optimized=False, planner=PLANNER)
        by_name = {step.name: step for step in naive_spec.steps}
        assert by_name["s2_sort"].depends_on == ("s1_categorize",)

    def test_downstream_of_filter_depends_only_on_the_filter(self, products):
        items, _ = products
        spec = (
            Dataset(items, name="p")
            .filter("keeps everything")
            .sort("important", strategy="rating")
            .top_k("important", k=2, strategy="rating_only")
            .to_pipeline(planner=PLANNER)
        )
        by_name = {step.name: step for step in spec.steps}
        assert by_name["s2_sort"].depends_on == ("s1_filter",)
        # top_k consumes the sort's materialized order (which needs the
        # filter's survivors for dropped-item backfill).
        assert set(by_name["s3_top_k"].depends_on) == {"s2_sort", "s1_filter"}


class TestAcceptanceCriterion:
    """ISSUE 3's acceptance: reorder, quote strictly less, identical results."""

    def test_chained_query_reorders_quotes_less_and_matches_imperative(self):
        items, oracle = product_corpus(n_entities=8, variants=2)
        query = (
            Dataset(items, name="bench")
            .resolve()
            .filter("is a short name")
            .top_k("important", k=3, strategy="pairwise_tournament")
        )

        # (a) the optimized plan runs the cheap filter before the pairwise resolve
        optimized_steps = [step.name for step in query.to_pipeline(planner=PLANNER).steps]
        assert optimized_steps[0].endswith("filter")
        assert any("resolve" in name for name in optimized_steps[1:])

        # (b) strictly fewer quoted dollars than the naive plan
        assert (
            query.quote(planner=PLANNER).total_dollars
            < query.quote(optimized=False, planner=PLANNER).total_dollars
        )

        # (c) results identical to the naive plan and to driving the engine
        # imperatively with the same operators.
        optimized = query.run(clean_engine(oracle))
        naive = query.run(clean_engine(oracle), optimized=False)
        assert optimized.items == naive.items

        engine = clean_engine(oracle)
        resolve_result = engine.resolve(ResolveSpec(records=items, strategy="pairwise"))
        representatives = [
            items[min(cluster)]
            for cluster in sorted(resolve_result.clusters, key=min)
        ]
        filter_result = engine.filter(
            FilterSpec(items=representatives, predicate="is a short name")
        )
        top_result = engine.top_k(
            TopKSpec(
                items=filter_result.kept,
                criterion="important",
                k=3,
                strategy="pairwise_tournament",
            )
        )
        assert naive.items == top_result.top_items


class TestRuleSafety:
    def test_pushdown_opt_out_flag(self, products):
        """pushdown=False pins a filter where the author wrote it."""
        items, _ = products
        plan = (
            Dataset(items, name="p")
            .resolve()
            .filter("keeps everything", pushdown=False)
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_early,))
        assert ops_of(optimized) == ["source", "resolve", "filter"]

    def test_filter_not_pushed_past_sort_with_validation_order(self, products):
        """Labelled validation items could be filtered away; the sort stays put."""
        items, _ = products
        plan = (
            Dataset(items, name="p")
            .sort("important", validation_order=items[:3])
            .filter("is a short name")
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_early,))
        assert ops_of(optimized) == ["source", "sort", "filter"]

    def test_two_resolves_both_get_proxies(self):
        """Rewrites rescan the plan, so later nodes are not stale references."""
        items, _ = product_corpus(n_entities=12, variants=3)
        plan = (
            Dataset(items, name="p")
            .resolve()
            .filter("keeps everything", expected_selectivity=1.0)
            .resolve()
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(insert_proxy_prefilters,))
        resolves = [node for node in optimized.nodes() if node.op == "resolve"]
        assert len(resolves) == 2
        assert all(node.params.get("proxy") for node in resolves)
        assert sum("proxy" in note for note in optimized.notes) == 2

    def test_filters_with_different_budgets_do_not_fuse(self, products):
        """Fusing would silently drop one author-declared per-step cap."""
        items, _ = products
        plan = (
            Dataset(items, name="p")
            .filter("is a short name", budget_dollars=0.01)
            .filter("keeps everything")
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(fuse_adjacent_filters,))
        assert ops_of(optimized) == ["source", "filter", "filter"]

    def test_shared_parent_is_not_rewritten(self, products):
        """A filter is not pushed past a node another branch still reads."""
        items, _ = products
        base = Dataset(items, name="p").resolve()
        left = base.filter("keeps everything")
        right = base.top_k("important", k=2)
        joined = left.join(right)
        optimized = optimize(joined.logical_plan(), planner=PLANNER)
        # resolve feeds both branches, so the filter must stay after it.
        assert ops_of(optimized) == ops_of(joined.logical_plan())


class TestJoinPushdown:
    def test_filter_commutes_into_the_join_left_input(self, products):
        items, _ = products
        left, right = items[:6], items[6:10]
        plan = (
            Dataset(left, name="l")
            .join(Dataset(right, name="r"))
            .filter("is a short name")
            .logical_plan()
        )
        assert ops_of(plan) == ["source", "source", "join", "filter"]
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_into_joins,))
        assert ops_of(optimized) == ["source", "filter", "source", "join"]
        # The filter now reads the join's left source, not the join.
        join_node = optimized.root
        assert join_node.op == "join"
        assert join_node.inputs[0].op == "filter"
        assert join_node.inputs[1].op == "source"
        assert optimized.notes

    def test_filter_keeps_travelling_up_the_left_branch(self, products):
        """The fixpoint lets a filter cross a sort, the join, then the branch."""
        items, _ = products
        plan = (
            Dataset(items[:6], name="l")
            .sort("important", strategy="rating")
            .join(Dataset(items[6:10], name="r"))
            .filter("is a short name")
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER)
        assert ops_of(optimized) == ["source", "filter", "sort", "source", "join"]

    def test_pushdown_opt_out_applies_to_joins_too(self, products):
        items, _ = products
        plan = (
            Dataset(items[:6], name="l")
            .join(Dataset(items[6:10], name="r"))
            .filter("is a short name", pushdown=False)
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(push_filters_into_joins,))
        assert ops_of(optimized) == ops_of(plan)

    def test_join_pushdown_reduces_the_quote(self, products):
        items, _ = products
        query = (
            Dataset(items, name="l")
            .join(Dataset(items[:4], name="r"), strategy="all_pairs")
            .filter("is a short name")
        )
        assert (
            query.quote(planner=PLANNER).total_dollars
            < query.quote(optimized=False, planner=PLANNER).total_dollars
        )


class TestSemiJoinOrdering:
    def _two_joins(self, items):
        """A cheap, sharp join stacked *after* an expensive, loose one."""
        return (
            Dataset(items[:8], name="base")
            .join(
                Dataset(items, name="big"),
                strategy="all_pairs",
                expected_selectivity=1.0,
            )
            .join(
                Dataset(items[:2], name="small"),
                strategy="all_pairs",
                expected_selectivity=0.25,
            )
        )

    def test_cheaper_sharper_join_is_probed_first(self, products):
        items, _ = products
        plan = self._two_joins(items).logical_plan()
        optimized = optimize(plan, planner=PLANNER, rules=(order_semi_joins,))
        assert optimized.notes
        # The small right side is now the inner join.
        outer = optimized.root
        inner = outer.inputs[0]
        assert [node.op for node in (outer, inner)] == ["join", "join"]
        assert len(outer.inputs[1].params["items"]) == len(items)
        assert len(inner.inputs[1].params["items"]) == 2

    def test_ordering_never_fires_without_a_cost_win(self, products):
        items, _ = products
        plan = (
            Dataset(items[:6], name="base")
            .join(Dataset(items[:4], name="a"), strategy="all_pairs")
            .join(Dataset(items[:4], name="b"), strategy="all_pairs")
            .logical_plan()
        )
        optimized = optimize(plan, planner=PLANNER, rules=(order_semi_joins,))
        # Identical sides and conservative selectivity: no strict win.
        assert not optimized.notes

    def test_observed_join_selectivity_gates_the_swap(self, products):
        """Stats can enable a swap the static priors would not justify."""
        items, _ = products
        plan = (
            Dataset(items[:8], name="base")
            .join(Dataset(items, name="big"), strategy="all_pairs")
            .join(Dataset(items[:2], name="small"), strategy="all_pairs")
            .logical_plan()
        )
        assert not optimize(plan, planner=PLANNER, rules=(order_semi_joins,)).notes
        stats = RuntimeStats()
        stats.record_join(left=10, matched=2)  # joins observed highly selective
        adaptive = CostPlanner(MODEL, stats=stats)
        optimized = optimize(plan, planner=adaptive, rules=(order_semi_joins,))
        assert optimized.notes


class TestSubplanSharing:
    def _rebuilt_prefix(self, items):
        return Dataset(items, name="p").filter("is a short name")

    def test_structural_duplicates_merge_into_one_node(self, products):
        items, _ = products
        query = self._rebuilt_prefix(items).join(self._rebuilt_prefix(items))
        plan = query.logical_plan()
        assert ops_of(plan).count("filter") == 2
        shared = share_common_subplans(plan, PLANNER)
        assert ops_of(shared).count("filter") == 1
        assert ops_of(shared).count("source") == 1
        assert any("shared common filter subplan" in note for note in shared.notes)

    def test_sharing_compiles_the_prefix_once_and_fans_out(self, products):
        items, _ = products
        query = (
            self._rebuilt_prefix(items)
            .sort("important", strategy="rating")
            .join(self._rebuilt_prefix(items), strategy="all_pairs")
        )
        naive = compile_plan(query.logical_plan(), planner=PLANNER)
        shared = compile_plan(
            share_common_subplans(query.logical_plan(), PLANNER), planner=PLANNER
        )
        naive_filters = [step for step in naive.steps if step.op == "filter"]
        shared_filters = [step for step in shared.steps if step.op == "filter"]
        assert len(naive_filters) == 2 and len(shared_filters) == 1
        # Both the sort and the join consume the single shared filter step.
        consumers = [
            step.name for step in shared.steps if shared_filters[0].name in step.depends_on
        ]
        assert len(consumers) >= 2
        assert shared.quote.total_calls < naive.quote.total_calls

    def test_different_parameters_do_not_share(self, products):
        items, _ = products
        left = Dataset(items, name="p").filter("is a short name")
        right = Dataset(items, name="p").filter("keeps everything")
        plan = left.join(right).logical_plan()
        shared = share_common_subplans(plan, PLANNER)
        assert ops_of(shared).count("filter") == 2
        # The identical sources still merge even when the filters differ.
        assert ops_of(shared).count("source") == 1
