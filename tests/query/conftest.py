"""Fixtures for the fluent query-frontend suite (helpers in support.py)."""

from __future__ import annotations

import pytest

from repro.llm.oracle import Oracle
from tests.query.support import product_corpus


@pytest.fixture()
def products() -> tuple[list[str], Oracle]:
    return product_corpus()
