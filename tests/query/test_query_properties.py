"""Property-based tests for the query optimizer (hypothesis).

Invariants from ISSUE 3 (filter fusion/pushdown) and ISSUE 4 (join
pushdown, subplan sharing):

* **Result identity** — for randomly generated operator chains over an
  entity-consistent oracle and a noise-free simulator, the optimized plan
  produces exactly the items of the naive plan (and of the authored chain's
  semantics computed directly from the ground truth, for the pure-filter
  cases).  This extends to filters pushed into a semi-join's left input
  and to branched queries whose structurally duplicated prefixes are
  shared.
* **Quote monotonicity** — filter pushdown (plain or into joins) never
  increases the pre-flight ``PipelineQuote.total_dollars`` of a plan, and
  subplan sharing never increases the quoted call count.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import CostPlanner
from repro.query import Dataset, compile_plan
from repro.query.optimizer import (
    fuse_adjacent_filters,
    push_filters_early,
    push_filters_into_joins,
    share_common_subplans,
)
from tests.query.support import MODEL, clean_engine, product_corpus

PLANNER = CostPlanner(MODEL)

#: Operator constructors safe for exact optimized/naive identity: per-item
#: and per-pair unit prompts only (whole-list strategies are excluded from
#: pushdown by the optimizer itself, so they would never reorder anyway).
_OPS = {
    "filter_short": lambda ds: ds.filter("is a short name"),
    "filter_all": lambda ds: ds.filter("keeps everything"),
    "sort": lambda ds: ds.sort("important", strategy="pairwise"),
    "rating_sort": lambda ds: ds.sort("important", strategy="rating"),
    "categorize": lambda ds: ds.categorize(["early", "late"]),
    "top_k": lambda ds: ds.top_k("important", k=2, strategy="rating_only"),
}

_chains = st.lists(
    st.sampled_from(sorted(_OPS)), min_size=1, max_size=4
)


def _build(chain: list[str], items: list[str]) -> Dataset:
    dataset = Dataset(items, name="prop")
    for op in chain:
        dataset = _OPS[op](dataset)
    return dataset


class TestOptimizedNaiveIdentity:
    @given(chain=_chains, n_entities=st.integers(3, 6), seed=st.integers(0, 5))
    @settings(max_examples=25, deadline=None)
    def test_optimized_and_naive_plans_produce_identical_items(
        self, chain, n_entities, seed
    ):
        items, oracle = product_corpus(n_entities=n_entities, variants=1)
        query = _build(chain, items)
        optimized = query.run(clean_engine(oracle, seed=seed))
        naive = query.run(clean_engine(oracle, seed=seed), optimized=False)
        assert optimized.items == naive.items

    @given(
        predicates=st.lists(
            st.sampled_from(["is a short name", "keeps everything"]),
            min_size=1,
            max_size=3,
        ),
        n_entities=st.integers(3, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_fused_filters_keep_exactly_the_ground_truth_survivors(
        self, predicates, n_entities
    ):
        items, oracle = product_corpus(n_entities=n_entities, variants=2)
        query = Dataset(items, name="prop")
        for predicate in predicates:
            query = query.filter(predicate)
        result = query.run(clean_engine(oracle))
        expected = [
            item
            for item in items
            if all(oracle.satisfies(item, predicate) for predicate in predicates)
        ]
        assert result.items == expected


class TestPushdownQuoteMonotonicity:
    @given(
        chain=_chains,
        selectivity=st.floats(0.1, 1.0, allow_nan=False),
        n_entities=st.integers(3, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_filter_pushdown_never_increases_total_dollars(
        self, chain, selectivity, n_entities
    ):
        items, _ = product_corpus(n_entities=n_entities, variants=2)
        query = _build(chain, items).filter(
            "is a short name", expected_selectivity=selectivity
        )
        plan = query.logical_plan()
        pushed = push_filters_early(plan, PLANNER)
        before = compile_plan(plan, planner=PLANNER).quote
        after = compile_plan(pushed, planner=PLANNER).quote
        assert after.total_dollars <= before.total_dollars + 1e-12

    @given(chain=_chains)
    @settings(max_examples=20, deadline=None)
    def test_fusion_never_increases_total_dollars(self, chain):
        items, _ = product_corpus(n_entities=6, variants=2)
        query = _build(chain, items).filter("is a short name").filter("keeps everything")
        plan = query.logical_plan()
        fused = fuse_adjacent_filters(plan, PLANNER)
        before = compile_plan(plan, planner=PLANNER).quote
        after = compile_plan(fused, planner=PLANNER).quote
        assert after.total_dollars <= before.total_dollars + 1e-12


class TestJoinPushdownIdentity:
    """ISSUE 4: a filter pushed into a semi-join's left input is exact."""

    @given(chain=_chains, n_entities=st.integers(3, 6), seed=st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_optimized_and_naive_joined_plans_produce_identical_items(
        self, chain, n_entities, seed
    ):
        items, oracle = product_corpus(n_entities=n_entities, variants=2)
        left = [item for item in items if "(refurb" not in item]
        right = [item for item in items if "(refurb" in item]
        query = (
            _build(chain, left)
            .join(Dataset(right, name="right"), strategy="all_pairs")
            .filter("is a short name")
        )
        optimized = query.run(clean_engine(oracle, seed=seed))
        naive = query.run(clean_engine(oracle, seed=seed), optimized=False)
        assert optimized.items == naive.items

    @given(
        filter_selectivity=st.floats(0.1, 1.0, allow_nan=False),
        join_selectivity=st.floats(0.05, 1.0, allow_nan=False),
        n_entities=st.integers(3, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_join_pushdown_never_increases_total_dollars(
        self, filter_selectivity, join_selectivity, n_entities
    ):
        """The rule is cost-gated: whatever the declared selectivities — a
        sharp join can make filtering afterwards the cheaper order — the
        rewrite must never raise the quote."""
        items, _ = product_corpus(n_entities=n_entities, variants=2)
        query = (
            Dataset(items, name="l")
            .join(
                Dataset(items[: max(2, n_entities)], name="r"),
                strategy="all_pairs",
                expected_selectivity=join_selectivity,
            )
            .filter("is a short name", expected_selectivity=filter_selectivity)
        )
        plan = query.logical_plan()
        pushed = push_filters_into_joins(plan, PLANNER)
        before = compile_plan(plan, planner=PLANNER).quote
        after = compile_plan(pushed, planner=PLANNER).quote
        assert after.total_dollars <= before.total_dollars + 1e-12


class TestSubplanSharingIdentity:
    """ISSUE 4: sharing a structurally duplicated prefix changes nothing."""

    @given(
        prefix=st.lists(
            st.sampled_from(["filter_short", "filter_all", "categorize"]),
            min_size=1,
            max_size=2,
        ),
        n_entities=st.integers(3, 6),
        seed=st.integers(0, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_branched_join_over_a_rebuilt_prefix_is_identical(
        self, prefix, n_entities, seed
    ):
        items, oracle = product_corpus(n_entities=n_entities, variants=1)
        query = _build(prefix, items).join(
            _build(prefix, items), strategy="all_pairs"
        )
        optimized = query.run(clean_engine(oracle, seed=seed))
        naive = query.run(clean_engine(oracle, seed=seed), optimized=False)
        assert optimized.items == naive.items

    @given(
        prefix=st.lists(
            st.sampled_from(["filter_short", "rating_sort", "categorize"]),
            min_size=1,
            max_size=2,
        ),
        n_entities=st.integers(3, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_sharing_never_increases_quoted_calls(self, prefix, n_entities):
        items, _ = product_corpus(n_entities=n_entities, variants=2)
        query = _build(prefix, items).join(_build(prefix, items), strategy="all_pairs")
        plan = query.logical_plan()
        shared = share_common_subplans(plan, PLANNER)
        before = compile_plan(plan, planner=PLANNER).quote
        after = compile_plan(shared, planner=PLANNER).quote
        assert after.total_calls <= before.total_calls
        assert after.total_dollars <= before.total_dollars + 1e-12
