"""Latency percentiles and cache-aware discounts flowing into planner quotes."""

from __future__ import annotations

import pytest

from repro.core.physical import RuntimeStats
from repro.core.planner import CostEstimate, CostPlanner, PipelineQuote
from repro.core.spec import SortSpec
from repro.exceptions import ConfigurationError
from repro.tokenizer.cost import Usage
from tests.query.support import MODEL


class TestLatencyReservoir:
    def test_nearest_rank_percentiles_on_known_samples(self):
        stats = RuntimeStats()
        for value in [10.0, 20.0, 30.0, 40.0, 50.0]:
            stats.record_latency("sort:pairwise", value)
        assert stats.latency_p50("sort:pairwise") == 30.0
        assert stats.latency_p95("sort:pairwise") == 50.0
        assert stats.latency_percentile("sort:pairwise", 0.0) == 10.0
        assert stats.latency_percentile("sort:pairwise", 1.0) == 50.0

    def test_unknown_label_and_bad_quantile(self):
        stats = RuntimeStats()
        assert stats.latency_p50("sort:pairwise") is None
        stats.record_latency("sort:pairwise", 5.0)
        with pytest.raises(ConfigurationError):
            stats.latency_percentile("sort:pairwise", 1.5)

    def test_negative_durations_are_ignored(self):
        stats = RuntimeStats()
        stats.record_latency("sort:pairwise", -1.0)
        assert stats.latency_labels() == []

    def test_reservoir_caps_at_most_recent_samples(self):
        stats = RuntimeStats()
        total = RuntimeStats.LATENCY_SAMPLE_CAP + 100
        for i in range(total):
            stats.record_latency("sort:pairwise", float(i))
        # Only the newest LATENCY_SAMPLE_CAP samples survive, so the
        # minimum retained value is the first non-evicted one.
        floor = float(total - RuntimeStats.LATENCY_SAMPLE_CAP)
        assert stats.latency_percentile("sort:pairwise", 0.0) == floor

    def test_export_and_decay_merge(self):
        stats = RuntimeStats()
        for value in [10.0, 20.0, 30.0, 40.0]:
            stats.record_latency("sort:pairwise", value)
        stats.record_cache(hit=True)
        stats.record_cache(hit=False)
        state = stats.export_state()
        assert state["cache"] == [1, 2]
        assert state["latency"]["sort:pairwise"] == [10.0, 20.0, 30.0, 40.0]

        fresh = RuntimeStats()
        fresh.merge_state(state, weight=0.5)
        # Half the evidence mass: the two most recent samples survive, and
        # the cache ratio keeps its value with half the weight behind it.
        assert fresh.latency_percentile("sort:pairwise", 0.0) == 30.0
        assert fresh.latency_percentile("sort:pairwise", 1.0) == 40.0
        assert fresh.cache_hit_rate() == 0.5

    def test_merge_with_zero_weight_keeps_nothing(self):
        state = RuntimeStats()
        state.record_latency("sort:pairwise", 10.0)
        fresh = RuntimeStats()
        fresh.merge_state(state.export_state(), weight=0.0)
        assert fresh.latency_labels() == []


class TestCacheHitRate:
    def test_rate_is_none_until_traffic_is_recorded(self):
        assert RuntimeStats().cache_hit_rate() is None

    def test_rate_tracks_hits_over_requests(self):
        stats = RuntimeStats()
        stats.record_cache(hit=True, requests=3)
        stats.record_cache(hit=False, requests=1)
        assert stats.cache_hit_rate() == 0.75

    def test_nonpositive_request_counts_are_ignored(self):
        stats = RuntimeStats()
        stats.record_cache(hit=True, requests=0)
        assert stats.cache_hit_rate() is None


def _sort_spec() -> SortSpec:
    return SortSpec(
        items=["alpha", "beta", "gamma", "delta"],
        criterion="important",
        strategy="pairwise",
    )


class TestLatencyAwareQuotes:
    def test_seconds_is_calls_times_median_latency(self):
        stats = RuntimeStats()
        for value in [100.0, 200.0, 300.0]:
            stats.record_latency("sort:pairwise", value)
        planner = CostPlanner(MODEL, stats=stats)
        estimate = planner.estimate_spec(_sort_spec())
        assert estimate.seconds == pytest.approx(estimate.calls * 200.0 / 1000.0)

    def test_no_observed_latency_means_no_seconds(self):
        estimate = CostPlanner(MODEL).estimate_spec(_sort_spec())
        assert estimate.seconds is None

    def test_auto_strategy_looks_up_the_default_label(self):
        stats = RuntimeStats()
        stats.record_latency("sort:pairwise", 50.0)
        planner = CostPlanner(MODEL, stats=stats)
        auto = SortSpec(items=["a", "b", "c"], criterion="x", strategy="auto")
        estimate = planner.estimate_spec(auto)
        assert estimate.seconds is not None

    def test_total_seconds_sums_timed_steps_only(self):
        timed = CostEstimate(
            strategy="sort:pairwise", calls=2, usage=Usage(), dollars=0.1, seconds=1.5
        )
        untimed = CostEstimate(
            strategy="filter:per_item", calls=2, usage=Usage(), dollars=0.1
        )
        quote = PipelineQuote(pipeline="p", steps={"s1": timed, "s2": untimed})
        assert quote.total_seconds == 1.5
        bare = PipelineQuote(pipeline="p", steps={"s2": untimed})
        assert bare.total_seconds is None


class TestCacheAwareQuotes:
    def test_dollars_discounted_by_observed_hit_rate(self):
        stats = RuntimeStats()
        stats.record_cache(hit=True)
        stats.record_cache(hit=False)
        cold = CostPlanner(MODEL).estimate_spec(_sort_spec())
        warm = CostPlanner(MODEL, stats=stats).estimate_spec(_sort_spec())
        assert warm.dollars == pytest.approx(cold.dollars * 0.5)
        # Calls stay the logical work count.
        assert warm.calls == cold.calls

    def test_fully_cached_history_never_quotes_zero(self):
        stats = RuntimeStats()
        stats.record_cache(hit=True, requests=100)
        cold = CostPlanner(MODEL).estimate_spec(_sort_spec())
        warm = CostPlanner(MODEL, stats=stats).estimate_spec(_sort_spec())
        assert warm.dollars == pytest.approx(cold.dollars * 0.01)
        assert warm.dollars > 0.0

    def test_discount_note_renders_prior_and_observed(self):
        stats = RuntimeStats()
        stats.record_cache(hit=True)
        stats.record_cache(hit=False)
        note = CostPlanner(MODEL, stats=stats).cache_discount_note()
        assert note == (
            "cache hit-rate prior 0.00 -> observed 0.50 "
            "(dollar estimates discounted)"
        )

    def test_no_note_without_observed_hits(self):
        assert CostPlanner(MODEL).cache_discount_note() is None
        stats = RuntimeStats()
        stats.record_cache(hit=False)
        assert CostPlanner(MODEL, stats=stats).cache_discount_note() is None
