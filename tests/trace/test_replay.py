"""Trace-replay determinism: a recorded run re-executes with zero live calls."""

from __future__ import annotations

import pytest

from repro.core.engine import DeclarativeEngine
from repro.core.executor import BatchExecutor
from repro.core.session import PromptSession
from repro.core.spec import SortSpec
from repro.exceptions import (
    ContextLengthExceededError,
    ResponseParseError,
    SpecError,
    TraceError,
)
from repro.query import Dataset
from repro.trace import ReplayLLM, TraceRecord, replay_trace
from tests.query.support import MODEL, clean_engine, product_corpus


def _replay_engine(records) -> DeclarativeEngine:
    """An engine whose only client is the replay fixture (no live LLM)."""
    session = PromptSession(replay_trace(records))
    return DeclarativeEngine.from_session(session)


class TestEntityResolutionReplay:
    def test_er_pipeline_replays_to_identical_results(self):
        items, oracle = product_corpus(n_entities=6, variants=2)
        query = (
            Dataset(items, name="products")
            .filter("is a short name")
            .resolve()
            .top_k("important", k=3, strategy="pairwise_tournament")
        )
        engine = clean_engine(oracle)
        original = query.run(engine)
        records = engine.session.tracer.records()
        assert records  # the run was traced

        replay_eng = _replay_engine(records)
        replayed = query.run(replay_eng)

        assert replayed.items == original.items
        assert replayed.report.results.keys() == original.report.results.keys()
        # Identical call counts: the replayed run issued exactly the
        # recorded traffic (and all of it came from the trace).
        assert (
            replay_eng.session.tracker.usage.calls
            == engine.session.tracker.usage.calls
        )

    def test_divergent_replay_fails_instead_of_inventing_answers(self):
        items, oracle = product_corpus(n_entities=4, variants=1)
        engine = clean_engine(oracle)
        engine.sort(SortSpec(items=items, criterion="important", strategy="pairwise"))
        records = engine.session.tracer.records()
        replay_eng = _replay_engine(records)
        different = SortSpec(
            items=[f"{item} UNSEEN" for item in items],
            criterion="important",
            strategy="pairwise",
        )
        with pytest.raises(TraceError, match="live LLM call"):
            replay_eng.sort(different)


class TestCacheHeavyReplay:
    def test_cache_hit_heavy_run_replays_identically(self):
        items, oracle = product_corpus(n_entities=5, variants=1)
        spec = SortSpec(items=items, criterion="important", strategy="pairwise")
        engine = clean_engine(oracle)
        first = engine.sort(spec)
        second = engine.sort(spec)  # every call hits the session cache
        records = engine.session.tracer.records()
        assert any(record.cache_hit for record in records)
        assert second.order == first.order

        replay_eng = _replay_engine(records)
        replayed_first = replay_eng.sort(spec)
        replayed_second = replay_eng.sort(spec)
        assert replayed_first.order == first.order
        assert replayed_second.order == second.order

    def test_surplus_lookups_keep_serving_the_last_response(self):
        records = [
            TraceRecord(call_id=0, model="m", prompt="p", response_text="first"),
            TraceRecord(call_id=1, model="m", prompt="p", response_text="second"),
        ]
        replay = ReplayLLM(records)
        texts = [replay.complete("p", model="m").text for _ in range(4)]
        assert texts == ["first", "second", "second", "second"]
        assert replay.served == 4


class TestRetryReplay:
    class FlakyClient:
        """Returns unparseable text for the first ``bad_attempts`` calls."""

        default_model = MODEL

        def __init__(self, bad_attempts: int) -> None:
            self.bad_attempts = bad_attempts
            self.calls = 0

        def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
            from repro.llm.base import LLMResponse
            from repro.tokenizer.cost import Usage

            self.calls += 1
            text = "garbled ???" if self.calls <= self.bad_attempts else "Yes."
            return LLMResponse(
                text=text,
                model=model or MODEL,
                usage=Usage(prompt_tokens=10, completion_tokens=5, calls=1),
                metadata={"temperature": temperature},
            )

    @staticmethod
    def _validator(text: str) -> bool:
        if "yes" not in text.lower() and "no" not in text.lower():
            raise ResponseParseError("no yes/no answer", text)
        return True

    def _run_with_retries(self, session: PromptSession) -> list[str]:
        executor = BatchExecutor(
            session.client(), validator=self._validator, max_retries=2
        )
        return [response.text for response in executor.run(["is it a duplicate?"])]

    def test_retry_attempts_are_annotated_on_the_trace(self):
        session = PromptSession(self.FlakyClient(bad_attempts=1))
        texts = self._run_with_retries(session)
        assert texts == ["Yes."]
        records = session.tracer.records()
        assert len(records) == 2
        assert [record.attempt for record in records] == [0, 1]
        assert [record.parse_ok for record in records] == [False, True]

    def test_retry_containing_run_replays_identically(self):
        session = PromptSession(self.FlakyClient(bad_attempts=1))
        texts = self._run_with_retries(session)
        records = session.tracer.records()

        replay_session = PromptSession(replay_trace(records))
        replayed = self._run_with_retries(replay_session)
        assert replayed == texts
        replayed_records = replay_session.tracer.records()
        assert [record.attempt for record in replayed_records] == [0, 1]
        assert [record.parse_ok for record in replayed_records] == [False, True]
        # Both attempts were answered from the trace.
        assert replay_session.tracker.usage.calls == 2


class TestRecordedErrors:
    def test_recorded_taxonomy_error_re_raises(self):
        record = TraceRecord(call_id=0, model="m", prompt="p", error="SpecError")
        replay = ReplayLLM([record])
        with pytest.raises(SpecError):
            replay.complete("p", model="m")

    def test_recorded_context_overflow_rebuilds_structured_exception(self):
        record = TraceRecord(
            call_id=0,
            model="m",
            prompt="p",
            prompt_tokens=9000,
            error="ContextLengthExceededError",
        )
        replay = ReplayLLM([record])
        with pytest.raises(ContextLengthExceededError):
            replay.complete("p", model="m")

    def test_non_taxonomy_error_raises_trace_error(self):
        record = TraceRecord(call_id=0, model="m", prompt="p", error="KeyError")
        replay = ReplayLLM([record])
        with pytest.raises(TraceError, match="non-taxonomy"):
            replay.complete("p", model="m")

    def test_empty_trace_is_rejected(self):
        with pytest.raises(TraceError):
            replay_trace([])
