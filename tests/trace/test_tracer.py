"""Tests for the structured call tracer: ring buffer, labels, store flush."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.session import PromptSession
from repro.data.flavors import FLAVORS, flavor_oracle
from repro.exceptions import ConfigurationError, UnknownModelError
from repro.llm.simulated import SimulatedLLM
from repro.store import Store
from repro.trace import (
    TraceLabels,
    TraceRecord,
    Tracer,
    current_labels,
    summarize_records,
    trace_label,
)


class TestTraceLabels:
    def test_default_labels_are_empty(self):
        assert current_labels() == TraceLabels()

    def test_trace_label_sets_and_restores(self):
        with trace_label(step="s1", operator="sort:pairwise"):
            assert current_labels() == TraceLabels(step="s1", operator="sort:pairwise")
        assert current_labels() == TraceLabels()

    def test_nested_labels_merge_with_enclosing(self):
        with trace_label(step="s1"):
            with trace_label(operator="filter:per_item"):
                labels = current_labels()
                assert labels.step == "s1"
                assert labels.operator == "filter:per_item"
            assert current_labels().operator is None

    def test_labels_default_onto_records(self):
        tracer = Tracer()
        with trace_label(step="s1", operator="sort:rating"):
            record = tracer.record(model="m", prompt="p")
        assert record.step == "s1"
        assert record.operator == "sort:rating"


class TestTracerRing:
    def test_monotonic_call_ids(self):
        tracer = Tracer()
        ids = [tracer.record(model="m", prompt=f"p{i}").call_id for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_ring_evicts_oldest_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record(model="m", prompt=f"p{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [record.call_id for record in tracer.records()] == [2, 3, 4]

    def test_records_returns_copies(self):
        tracer = Tracer()
        tracer.record(model="m", prompt="p")
        snapshot = tracer.records()[0]
        snapshot.model = "tampered"
        assert tracer.records()[0].model == "m"

    def test_annotate_amends_and_reports_eviction(self):
        tracer = Tracer(capacity=2)
        first = tracer.record(model="m", prompt="p0")
        tracer.record(model="m", prompt="p1")
        assert tracer.annotate(first.call_id, attempt=2, parse_ok=False)
        assert tracer.records()[0].attempt == 2
        tracer.record(model="m", prompt="p2")  # evicts call 0
        assert not tracer.annotate(first.call_id, attempt=3)

    def test_invalid_configuration_raises_taxonomy_error(self):
        with pytest.raises(ConfigurationError):
            Tracer(capacity=0)
        with pytest.raises(ConfigurationError):
            Tracer(flush_every=0)

    def test_concurrent_records_get_unique_ids(self):
        tracer = Tracer(capacity=1000)
        with ThreadPoolExecutor(max_workers=8) as pool:
            records = list(
                pool.map(lambda i: tracer.record(model="m", prompt=f"p{i}"), range(200))
            )
        ids = [record.call_id for record in records]
        assert sorted(ids) == list(range(200))


class TestStoreFlush:
    def test_flush_round_trips_through_the_store(self):
        store = Store(":memory:")
        tracer = Tracer(store=store, flush_every=1000)
        with trace_label(step="s1", operator="sort:pairwise"):
            tracer.record(
                model="m",
                temperature=0.0,
                prompt="compare a and b",
                response_text="A",
                prompt_tokens=12,
                completion_tokens=3,
                cost=0.001,
                duration_ms=4.5,
                cache_hit=True,
                parse_ok=True,
            )
        tracer.record(model="m", prompt="boom", error="UnknownModelError")
        assert tracer.flush() == 2
        loaded = store.trace_records(origin=tracer.origin)
        assert [record.to_dict() for record in loaded] == [
            record.to_dict() for record in tracer.records()
        ]
        assert store.trace_count() == 2

    def test_flush_is_idempotent_and_upserts_annotations(self):
        store = Store(":memory:")
        tracer = Tracer(store=store, flush_every=1000)
        record = tracer.record(model="m", prompt="p")
        assert tracer.flush() == 1
        assert tracer.flush() == 0  # nothing dirty
        tracer.annotate(record.call_id, attempt=1, parse_ok=False)
        assert tracer.flush() == 1  # re-flushed, not duplicated
        loaded = store.trace_records(origin=tracer.origin)
        assert len(loaded) == 1
        assert loaded[0].attempt == 1
        assert loaded[0].parse_ok is False

    def test_auto_flush_after_flush_every_records(self):
        store = Store(":memory:")
        tracer = Tracer(store=store, flush_every=4)
        for i in range(4):
            tracer.record(model="m", prompt=f"p{i}")
        assert store.trace_count() == 4

    def test_store_failure_is_swallowed_and_retried(self):
        class FailingStore:
            def __init__(self) -> None:
                self.fail = True
                self.saved: list = []

            def save_trace_records(self, records, *, origin):
                if self.fail:
                    raise RuntimeError("disk full")
                self.saved.extend(records)

        store = FailingStore()
        tracer = Tracer(store=store, flush_every=1)  # type: ignore[arg-type]
        tracer.record(model="m", prompt="p")  # auto-flush fails silently
        assert store.saved == []
        store.fail = False
        assert tracer.flush() == 1  # the record stayed dirty
        assert len(store.saved) == 1

    def test_trace_eviction_keeps_newest_rows(self):
        store = Store(":memory:", max_trace_records=3)
        tracer = Tracer(store=store, flush_every=1000)
        for i in range(5):
            tracer.record(model="m", prompt=f"p{i}")
        tracer.flush()
        loaded = store.trace_records()
        assert [record.prompt for record in loaded] == ["p2", "p3", "p4"]

    def test_store_rejects_nonpositive_trace_cap(self):
        with pytest.raises(ValueError):
            Store(":memory:", max_trace_records=0)


class TestSessionIntegration:
    def test_every_session_call_is_traced(self):
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=7))
        session.complete("rate this", model="sim-gpt-3.5-turbo")
        session.complete_batch(["a?", "b?"], model="sim-gpt-3.5-turbo")
        records = session.tracer.records()
        assert len(records) == 3
        assert all(record.model == "sim-gpt-3.5-turbo" for record in records)
        assert all(record.duration_ms >= 0.0 for record in records)
        assert all(record.error is None for record in records)

    def test_cache_hits_are_flagged_and_fed_to_stats(self):
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=7))
        session.complete("same prompt", model="sim-gpt-3.5-turbo")
        session.complete("same prompt", model="sim-gpt-3.5-turbo")
        records = session.tracer.records()
        assert [record.cache_hit for record in records] == [False, True]
        assert session.stats.cache_hit_rate() == 0.5

    def test_latency_feeds_stats_only_under_an_operator_label(self):
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=7))
        session.complete("unlabelled", model="sim-gpt-3.5-turbo")
        assert session.stats.latency_labels() == []
        with trace_label(operator="sort:pairwise"):
            session.complete("labelled", model="sim-gpt-3.5-turbo")
        assert session.stats.latency_labels() == ["sort:pairwise"]
        assert session.stats.latency_p50("sort:pairwise") is not None

    def test_failed_calls_record_the_taxonomy_error(self):
        class ExplodingClient:
            default_model = "sim-gpt-3.5-turbo"

            def complete(self, prompt, *, model=None, temperature=0.0, max_tokens=None):
                raise UnknownModelError("simulated outage")

        session = PromptSession(ExplodingClient(), use_cache=False)
        with pytest.raises(UnknownModelError):
            session.complete("boom", model="sim-gpt-3.5-turbo")
        records = session.tracer.records()
        assert len(records) == 1
        assert records[0].error == "UnknownModelError"
        assert records[0].response_text is None

    def test_session_with_store_flushes_on_save_profile(self):
        store = Store(":memory:")
        session = PromptSession(SimulatedLLM(flavor_oracle(), seed=7), store=store)
        session.complete("persist me", model="sim-gpt-3.5-turbo")
        session.save_profile()
        loaded = store.trace_records(origin=session.tracer.origin)
        assert [record.prompt for record in loaded] == ["persist me"]


def test_summarize_records():
    records = [
        TraceRecord(call_id=0, cost=0.5, duration_ms=10.0, cache_hit=False),
        TraceRecord(call_id=1, cost=0.0, duration_ms=1.0, cache_hit=True),
        TraceRecord(call_id=2, duration_ms=2.0, error="UnknownModelError"),
    ]
    summary = summarize_records(records)
    assert summary["calls"] == 3
    assert summary["cache_hits"] == 1
    assert summary["cache_hit_rate"] == pytest.approx(1 / 3)
    assert summary["errors"] == 1
    assert summary["cost"] == pytest.approx(0.5)
    assert summary["duration_ms"] == pytest.approx(13.0)


def test_flavors_smoke():
    # The flavor corpus backs the session tests above; pin its availability.
    assert len(FLAVORS) >= 10
