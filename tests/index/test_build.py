"""Tests for index construction, naming, and store persistence.

The acceptance properties pinned here: a second run over an unchanged corpus
recomputes zero embeddings (store hit counters), and a persisted index
survives a store reopen without rebuilding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.index import (
    AUTO_LSH_THRESHOLD,
    CachedEmbedder,
    ExactIndex,
    LSHIndex,
    build_index,
    corpus_index_name,
    create_index,
    index_from_payload,
    resolve_embedder,
)
from repro.llm.embeddings import HashingEmbedder
from repro.store import Store

TEXTS = [f"catalog item {word} in stock" for word in ["alpha", "beta", "gamma", "delta", "epsilon"]]


class TestCreateIndex:
    def test_auto_picks_exact_below_threshold(self):
        assert create_index("auto", 8, expected_size=10).kind == "exact"

    def test_auto_picks_lsh_at_threshold(self):
        assert create_index("auto", 8, expected_size=AUTO_LSH_THRESHOLD).kind == "lsh"

    def test_explicit_kinds(self):
        assert isinstance(create_index("exact", 8), ExactIndex)
        assert isinstance(create_index("lsh", 8), LSHIndex)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown vector-index kind"):
            create_index("faiss", 8)

    def test_unknown_payload_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown vector-index kind"):
            index_from_payload("faiss", b"{}")


class TestCorpusIndexName:
    def test_name_is_stable(self):
        embedder = HashingEmbedder()
        assert corpus_index_name(TEXTS, embedder) == corpus_index_name(TEXTS, embedder)

    def test_name_changes_with_content(self):
        embedder = HashingEmbedder()
        changed = TEXTS[:-1] + ["catalog item zeta in stock"]
        assert corpus_index_name(TEXTS, embedder) != corpus_index_name(changed, embedder)

    def test_name_changes_with_embedder_configuration(self):
        assert corpus_index_name(TEXTS, HashingEmbedder()) != corpus_index_name(
            TEXTS, HashingEmbedder(dimensions=128)
        )

    def test_prefix_is_honoured(self):
        assert corpus_index_name(TEXTS, HashingEmbedder(), prefix="block").startswith("block:")


class TestResolveEmbedder:
    def test_defaults_to_hashing_embedder(self):
        assert isinstance(resolve_embedder(), HashingEmbedder)

    def test_wraps_in_cached_embedder_with_store(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            embedder = resolve_embedder(store=store)
            assert isinstance(embedder, CachedEmbedder)

    def test_does_not_double_wrap(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            once = resolve_embedder(store=store)
            again = resolve_embedder(once, store=store)
            assert again is once


class TestBuildIndex:
    def test_builds_searchable_index_without_store(self):
        index = build_index(TEXTS)
        embedder = HashingEmbedder()
        hits = index.search(embedder.embed(TEXTS[2]), 1)
        assert hits[0][0] == 2

    def test_empty_corpus_builds_empty_index(self):
        assert len(build_index([])) == 0

    def test_persists_and_reloads_by_name(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            built = build_index(TEXTS, store=store, name="corpus:demo")
            assert store.list_vector_indexes() == [
                {
                    "name": "corpus:demo",
                    "kind": "exact",
                    "dimensions": built.dimensions,
                    "size": len(TEXTS),
                }
            ]
            reloaded = build_index(TEXTS, store=store, name="corpus:demo")
            assert reloaded.ids == built.ids
            assert reloaded.knn_graph(2) == built.knn_graph(2)

    def test_stale_stored_index_is_rebuilt(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            small = ExactIndex(HashingEmbedder().dimensions)
            small.add(np.eye(1, HashingEmbedder().dimensions))
            store.save_vector_index("corpus:demo", small)
            rebuilt = build_index(TEXTS, store=store, name="corpus:demo")
            assert len(rebuilt) == len(TEXTS)
            assert store.list_vector_indexes()[0]["size"] == len(TEXTS)

    def test_second_build_recomputes_zero_embeddings(self, tmp_path):
        """The pinned acceptance property: re-runs never re-embed."""
        path = tmp_path / "store.db"
        with Store(path) as store:
            build_index(TEXTS, store=store, name="corpus:demo")
            assert store.embedding_count() == len(TEXTS)
        with Store(path) as reopened:
            cache = reopened.embedding_cache()
            embedder = CachedEmbedder(HashingEmbedder(), cache)
            store_named = corpus_index_name(TEXTS, embedder)
            # Build under a *different* name so the index rebuilds but the
            # embeddings all come from the durable cache.
            build_index(TEXTS, embedder=embedder, store=reopened, name=store_named)
            assert cache.stats.misses == 0
            assert cache.stats.hits == len(TEXTS)
            assert embedder.embedder.usage.calls == 0

    def test_index_survives_store_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        embedder = HashingEmbedder()
        with Store(path) as store:
            built = build_index(TEXTS, store=store, name="corpus:demo")
            expected = built.search(embedder.embed(TEXTS[0]), 3)
        with Store(path) as reopened:
            loaded = reopened.load_vector_index("corpus:demo")
            assert loaded is not None
            assert loaded.search(embedder.embed(TEXTS[0]), 3) == expected

    def test_lsh_index_survives_store_reopen(self, tmp_path):
        path = tmp_path / "store.db"
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((40, 16))
        index = LSHIndex.for_corpus(16, 40, seed=4)
        index.add(vectors)
        expected = index.knn_graph(3)
        with Store(path) as store:
            store.save_vector_index("corpus:lsh", index)
        with Store(path) as reopened:
            loaded = reopened.load_vector_index("corpus:lsh")
            assert isinstance(loaded, LSHIndex)
            assert loaded.knn_graph(3) == expected

    def test_unreadable_payload_loads_as_none(self, tmp_path):
        with Store(tmp_path / "store.db") as store:
            store.db.execute(
                "INSERT INTO vector_indexes "
                "(name, kind, dimensions, size, payload, updated_seq) "
                "VALUES ('bad', 'exact', 4, 1, ?, 1)",
                (b"not json",),
            )
            assert store.load_vector_index("bad") is None
