"""Tests for the multi-table random-hyperplane LSH index.

The recall property runs the LSH index against the exact index on clustered
corpora across sizes and dimensionalities; the LSH answer must recover at
least 90% of the exact nearest neighbors at every configuration.  Everything
is seeded, so the measured recalls are deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.index import ExactIndex, LSHIndex
from repro.llm.embeddings import HashingEmbedder


def clustered_corpus(
    rng: np.random.Generator, n_clusters: int, per_cluster: int, dims: int
) -> np.ndarray:
    """Unit-norm vectors in tight clusters, mimicking near-duplicate text.

    A shared non-negative offset reproduces the hashing embedder's common
    component — the exact trap the index's corpus centering exists for.
    """
    centers = np.abs(rng.standard_normal((n_clusters, dims))) + 0.5
    points = np.repeat(centers, per_cluster, axis=0)
    points = points + 0.01 * rng.standard_normal(points.shape)
    return points / np.linalg.norm(points, axis=1, keepdims=True)


def graph_recall(exact: dict[int, list[int]], approx: dict[int, list[int]]) -> float:
    hits = sum(len(set(exact[key]) & set(approx[key])) for key in exact)
    total = sum(len(exact[key]) for key in exact)
    return hits / total if total else 1.0


class TestLSHRecall:
    @pytest.mark.parametrize(
        ("n_clusters", "per_cluster", "dims"),
        [
            (25, 4, 32),
            (50, 4, 64),
            (100, 4, 128),
            (150, 4, 256),
            (60, 5, 64),
        ],
    )
    def test_recall_at_least_090_on_clustered_corpora(self, n_clusters, per_cluster, dims):
        rng = np.random.default_rng(n_clusters * 1000 + dims)
        vectors = clustered_corpus(rng, n_clusters, per_cluster, dims)
        k = per_cluster - 1
        exact = ExactIndex(dims)
        exact.add(vectors)
        lsh = LSHIndex.for_corpus(dims, len(vectors), seed=0)
        lsh.add(vectors)
        recall = graph_recall(exact.knn_graph(k), lsh.knn_graph(k))
        assert recall >= 0.9, f"recall {recall:.3f} below 0.9"

    def test_recall_on_hashing_embedder_variants(self):
        """Near-duplicate text variants through the real embedder."""
        embedder = HashingEmbedder()
        texts = []
        for i in range(120):
            base = f"vendor {i % 7} product line {i} with a reasonably long description"
            texts.extend([base, base + ".", base + " "])
        matrix = embedder.embed_batch(texts)
        exact = ExactIndex(embedder.dimensions)
        exact.add(matrix)
        lsh = LSHIndex.for_corpus(embedder.dimensions, len(texts), seed=0)
        lsh.add(matrix)
        recall = graph_recall(exact.knn_graph(2), lsh.knn_graph(2))
        assert recall >= 0.9

    def test_single_query_search_finds_planted_neighbor(self):
        rng = np.random.default_rng(17)
        vectors = clustered_corpus(rng, 64, 4, 64)
        lsh = LSHIndex.for_corpus(64, len(vectors), seed=0)
        lsh.add(vectors)
        # Probe with a jittered copy of row 10; its cluster (rows 8-11) must
        # surface thanks to the multi-probe floor.
        query = vectors[10] + 0.001 * rng.standard_normal(64)
        hits = {row_id for row_id, _ in lsh.search(query, 3)}
        assert hits & {8, 9, 10, 11}


class TestLSHDeterminism:
    def test_same_seed_same_answers(self):
        rng = np.random.default_rng(3)
        vectors = clustered_corpus(rng, 40, 4, 32)
        first = LSHIndex.for_corpus(32, len(vectors), seed=5)
        second = LSHIndex.for_corpus(32, len(vectors), seed=5)
        first.add(vectors)
        second.add(vectors)
        assert first.knn_graph(3) == second.knn_graph(3)
        assert first.search(vectors[7], 4) == second.search(vectors[7], 4)

    def test_different_seeds_differ_somewhere(self):
        rng = np.random.default_rng(4)
        vectors = clustered_corpus(rng, 40, 4, 32)
        first = LSHIndex(32, n_tables=2, n_bits=8, seed=0)
        second = LSHIndex(32, n_tables=2, n_bits=8, seed=99)
        first.add(vectors)
        second.add(vectors)
        assert not np.array_equal(first._signatures, second._signatures)


class TestLSHPersistence:
    def test_payload_round_trip_preserves_answers(self):
        rng = np.random.default_rng(6)
        vectors = clustered_corpus(rng, 50, 4, 64)
        index = LSHIndex.for_corpus(64, len(vectors), seed=2)
        index.add(vectors, ids=list(range(500, 500 + len(vectors))))
        restored = LSHIndex.from_payload(index.to_payload())
        assert restored.ids == index.ids
        assert restored.n_tables == index.n_tables
        assert restored.n_bits == index.n_bits
        assert restored.seed == index.seed
        assert restored.knn_graph(3) == index.knn_graph(3)
        query = vectors[13] + 0.002
        assert restored.search(query, 5) == index.search(query, 5)

    def test_round_trip_restores_the_center(self):
        """Signatures must recompute against the saved center, not a fresh one."""
        rng = np.random.default_rng(8)
        vectors = clustered_corpus(rng, 30, 4, 32)
        index = LSHIndex.for_corpus(32, len(vectors), seed=1)
        index.add(vectors)
        restored = LSHIndex.from_payload(index.to_payload())
        assert np.allclose(restored._center, index._center)
        assert np.array_equal(restored._signatures, index._signatures)

    def test_empty_index_round_trips(self):
        restored = LSHIndex.from_payload(LSHIndex(16, seed=3).to_payload())
        assert len(restored) == 0
        assert restored._center is None


class TestLSHConfiguration:
    def test_for_corpus_scales_bits_with_size(self):
        small = LSHIndex.for_corpus(32, 100)
        large = LSHIndex.for_corpus(32, 100_000)
        assert small.n_bits < large.n_bits
        assert 2 <= small.n_bits <= 24
        assert 2 <= large.n_bits <= 24

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LSHIndex(0)
        with pytest.raises(ConfigurationError):
            LSHIndex(8, n_tables=0)
        with pytest.raises(ConfigurationError):
            LSHIndex(8, n_bits=0)
        with pytest.raises(ConfigurationError):
            LSHIndex(8, n_bits=61)
        with pytest.raises(ConfigurationError):
            LSHIndex(8, probe_floor=-1)
        with pytest.raises(ConfigurationError):
            LSHIndex.for_corpus(8, 0)

    def test_knn_graph_edge_cases(self):
        index = LSHIndex(4, seed=0)
        assert index.knn_graph(3) == {}
        index.add(np.asarray([[1.0, 0.0, 0.0, 0.0]]))
        assert index.knn_graph(3) == {0: []}
        with pytest.raises(ConfigurationError):
            index.knn_graph(-1)


class TestLSHCounters:
    def test_search_counts_examined_candidates(self):
        rng = np.random.default_rng(9)
        vectors = clustered_corpus(rng, 30, 4, 32)
        index = LSHIndex.for_corpus(32, len(vectors), seed=0)
        index.add(vectors)
        index.search(vectors[0], 3)
        assert index.probes == 1
        # A probe examines a fraction of the corpus, not all of it.
        assert 0 < index.candidates_examined < len(vectors)

    def test_knn_graph_counts_unique_pairs(self):
        rng = np.random.default_rng(10)
        vectors = clustered_corpus(rng, 30, 4, 32)
        index = LSHIndex.for_corpus(32, len(vectors), seed=0)
        index.add(vectors)
        index.knn_graph(3)
        assert index.probes == len(vectors)
        assert index.candidates_examined > 0
