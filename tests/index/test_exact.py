"""Tests for the brute-force exact vector index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.index import ExactIndex
from repro.llm.embeddings import HashingEmbedder


def _unit_rows(rng: np.random.Generator, n: int, dims: int) -> np.ndarray:
    matrix = rng.standard_normal((n, dims))
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


class TestExactIndexBasics:
    def test_add_assigns_consecutive_ids(self):
        index = ExactIndex(4)
        assigned = index.add(_unit_rows(np.random.default_rng(0), 3, 4))
        assert assigned == [0, 1, 2]
        assert index.ids == [0, 1, 2]
        assert len(index) == 3

    def test_add_continues_ids_across_batches(self):
        index = ExactIndex(4)
        rng = np.random.default_rng(0)
        index.add(_unit_rows(rng, 2, 4))
        assigned = index.add(_unit_rows(rng, 2, 4))
        assert assigned == [2, 3]

    def test_explicit_ids_round_trip_through_vector(self):
        index = ExactIndex(4)
        vectors = _unit_rows(np.random.default_rng(1), 2, 4)
        index.add(vectors, ids=[10, 20])
        assert np.allclose(index.vector(20), vectors[1])

    def test_duplicate_id_rejected(self):
        index = ExactIndex(4)
        index.add(_unit_rows(np.random.default_rng(2), 1, 4), ids=[7])
        with pytest.raises(ConfigurationError, match="already indexed"):
            index.add(_unit_rows(np.random.default_rng(3), 1, 4), ids=[7])

    def test_dimension_mismatch_rejected(self):
        index = ExactIndex(4)
        with pytest.raises(ConfigurationError, match="dimension"):
            index.add(np.zeros((2, 5)))
        index.add(_unit_rows(np.random.default_rng(4), 2, 4))
        with pytest.raises(ConfigurationError, match="dimension"):
            index.search(np.zeros(5), 1)

    def test_search_returns_nearest_first(self):
        index = ExactIndex(2)
        index.add(np.asarray([[1.0, 0.0], [0.0, 1.0], [0.7, 0.7]]))
        hits = index.search(np.asarray([0.9, 0.1]), 2)
        assert [row_id for row_id, _ in hits] == [0, 2]
        assert hits[0][1] < hits[1][1]

    def test_search_k_larger_than_corpus(self):
        index = ExactIndex(2)
        index.add(np.asarray([[1.0, 0.0], [0.0, 1.0]]))
        assert len(index.search(np.asarray([1.0, 0.0]), 10)) == 2

    def test_empty_index_searches_empty(self):
        assert ExactIndex(3).search(np.zeros(3), 5) == []


class TestExactIndexGraph:
    def test_knn_graph_matches_legacy_scan(self):
        """The index path must be candidate-for-candidate equal to the scan."""
        embedder = HashingEmbedder()
        texts = [f"product {word} listing" for word in ["aa", "ab", "ba", "bb", "cc", "cd"]]
        index = ExactIndex(embedder.dimensions)
        index.add(embedder.embed_batch(texts))
        assert index.knn_graph(2) == embedder.nearest_neighbors(texts, 2)

    def test_knn_graph_excludes_self(self):
        index = ExactIndex(3)
        index.add(_unit_rows(np.random.default_rng(5), 6, 3))
        graph = index.knn_graph(3)
        for row_id, neighbor_ids in graph.items():
            assert row_id not in neighbor_ids
            assert len(neighbor_ids) == 3

    def test_knn_graph_zero_k(self):
        index = ExactIndex(3)
        index.add(_unit_rows(np.random.default_rng(6), 4, 3))
        assert index.knn_graph(0) == {0: [], 1: [], 2: [], 3: []}


class TestExactIndexPersistence:
    def test_payload_round_trip_is_exact(self):
        index = ExactIndex(8)
        vectors = _unit_rows(np.random.default_rng(7), 12, 8)
        index.add(vectors, ids=list(range(100, 112)))
        restored = ExactIndex.from_payload(index.to_payload())
        assert restored.ids == index.ids
        assert restored.dimensions == index.dimensions
        query = vectors[3] + 0.01
        assert restored.search(query, 5) == index.search(query, 5)
        assert restored.knn_graph(3) == index.knn_graph(3)

    def test_empty_index_round_trips(self):
        restored = ExactIndex.from_payload(ExactIndex(5).to_payload())
        assert len(restored) == 0
        assert restored.dimensions == 5


class TestExactIndexCounters:
    def test_search_counts_probes_and_candidates(self):
        index = ExactIndex(3)
        index.add(_unit_rows(np.random.default_rng(8), 10, 3))
        index.search(np.zeros(3), 2)
        index.search(np.zeros(3), 2)
        assert index.probes == 2
        assert index.candidates_examined == 20

    def test_knn_graph_counts_pairwise_work(self):
        index = ExactIndex(3)
        index.add(_unit_rows(np.random.default_rng(9), 6, 3))
        index.knn_graph(2)
        assert index.probes == 6
        assert index.candidates_examined == 30  # 6 * 5

    def test_counters_are_not_persisted(self):
        index = ExactIndex(3)
        index.add(_unit_rows(np.random.default_rng(10), 4, 3))
        index.search(np.zeros(3), 1)
        restored = ExactIndex.from_payload(index.to_payload())
        assert restored.probes == 0
        assert restored.candidates_examined == 0
