"""Retrieval-grounded imputation: index-backed neighbors, deterministic fills.

The ``retrieval`` strategy grounds every escalated prompt in the k nearest
labelled reference records retrieved through a vector index.  Under the
seeded :class:`SimulatedLLM` the whole path — embedding, index probes,
escalation set, prompts, answers — is deterministic, which these tests pin.
"""

from __future__ import annotations

import pytest

from repro.data.products import generate_restaurant_dataset
from repro.exceptions import DatasetError
from repro.index import ExactIndex, build_index
from repro.llm.embeddings import HashingEmbedder
from repro.llm.simulated import SimulatedLLM
from repro.operators.impute import ImputeOperator
from repro.proxies.knn import KNNImputer


def _operator(data, seed: int = 31) -> ImputeOperator:
    return ImputeOperator(SimulatedLLM(data.oracle(), seed=seed), model="sim-claude")


class TestKNNImputerIndexRoute:
    def test_index_lookup_returns_reference_records(self, restaurant_data):
        embedder = HashingEmbedder()
        imputer = KNNImputer(
            restaurant_data.reference,
            restaurant_data.target_attribute,
            k=3,
            index=ExactIndex(embedder.dimensions),
            embedder=embedder,
        )
        vote = imputer.vote(restaurant_data.queries[0])
        assert len(vote.neighbors) == 3
        reference_ids = {record.record_id for record in restaurant_data.reference}
        assert {record.record_id for record in vote.neighbors} <= reference_ids

    def test_prebuilt_index_is_not_re_embedded(self, restaurant_data):
        embedder = HashingEmbedder()
        texts = [
            record.serialize(exclude=(restaurant_data.target_attribute,))
            for record in restaurant_data.reference
        ]
        index = build_index(texts, embedder=embedder, kind="exact")
        calls_after_build = embedder.usage.calls
        imputer = KNNImputer(
            restaurant_data.reference,
            restaurant_data.target_attribute,
            k=3,
            index=index,
            embedder=embedder,
        )
        imputer.vote(restaurant_data.queries[0])
        # One embed call for the query, none for the reference set.
        assert embedder.usage.calls == calls_after_build + 1

    def test_mismatched_index_size_rejected(self, restaurant_data):
        embedder = HashingEmbedder()
        toosmall = build_index(["just one record"], embedder=embedder, kind="exact")
        with pytest.raises(DatasetError, match="holds 1 vectors"):
            KNNImputer(
                restaurant_data.reference,
                restaurant_data.target_attribute,
                k=3,
                index=toosmall,
                embedder=embedder,
            )

    def test_default_scan_route_is_unchanged(self, restaurant_data):
        """No ``index=`` keeps the original token_cosine behaviour."""
        imputer = KNNImputer(restaurant_data.reference, restaurant_data.target_attribute, k=3)
        assert imputer.index is None
        vote = imputer.vote(restaurant_data.queries[0])
        assert len(vote.neighbor_values) == 3


class TestRetrievalStrategy:
    def test_retrieval_predicts_every_query(self, restaurant_data):
        result = _operator(restaurant_data).run(restaurant_data, strategy="retrieval")
        assert set(result.predictions) == set(restaurant_data.ground_truth)
        assert result.llm_queries + result.proxy_queries == len(restaurant_data.queries)

    def test_retrieval_is_deterministic(self, restaurant_data):
        first = _operator(restaurant_data).run(restaurant_data, strategy="retrieval")
        second = _operator(restaurant_data).run(restaurant_data, strategy="retrieval")
        assert first.predictions == second.predictions
        assert first.llm_queries == second.llm_queries
        assert first.usage.calls == second.usage.calls

    def test_retrieval_escalates_only_disagreements(self, restaurant_data):
        result = _operator(restaurant_data).run(restaurant_data, strategy="retrieval")
        assert 0 < result.llm_queries < len(restaurant_data.queries)
        assert result.usage.calls == result.llm_queries

    def test_retrieval_accuracy_matches_hybrid(self, restaurant_data):
        """Grounded escalation must not cost accuracy vs the ungrounded hybrid."""
        retrieval = _operator(restaurant_data).run(restaurant_data, strategy="retrieval")
        hybrid = _operator(restaurant_data).run(restaurant_data, strategy="hybrid", n_examples=3)
        truth = restaurant_data.ground_truth

        def accuracy(predictions: dict[str, str]) -> float:
            return sum(
                1 for record_id, value in predictions.items() if value == truth[record_id]
            ) / len(truth)

        assert accuracy(retrieval.predictions) >= accuracy(hybrid.predictions) - 0.05

    def test_generated_dataset_stays_deterministic(self):
        data = generate_restaurant_dataset(60, seed=5)
        first = _operator(data, seed=7).run(data, strategy="retrieval")
        second = _operator(data, seed=7).run(data, strategy="retrieval")
        assert first.predictions == second.predictions
