"""Index-backed blocking and joining must agree with the legacy scans.

The exact index reproduces the scan's arithmetic, so candidate pairs (and
hence Table 3 blocking call counts) are pinned identical at equal k.  The
LSH path is approximate by contract, so it is pinned to produce a *subset*
of plausible pairs with high overlap, not equality.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.index import ExactIndex, LSHIndex, build_index
from repro.llm.embeddings import HashingEmbedder
from repro.llm.oracle import Oracle
from repro.llm.simulated import SimulatedLLM
from repro.operators.join import JoinOperator
from repro.proxies.blocking import EmbeddingBlocker
from tests.query.support import clean_behavior, product_corpus


def _corpus(n_entities: int = 8, variants: int = 3) -> list[str]:
    items, _ = product_corpus(n_entities, variants)
    return items


class TestBlockerIndexEquality:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_exact_index_matches_scan_candidates(self, k):
        texts = _corpus()
        embedder = HashingEmbedder()
        scan = EmbeddingBlocker(embedder=embedder, k=k).block(texts)
        index = ExactIndex(embedder.dimensions)
        indexed = EmbeddingBlocker(embedder=embedder, k=k, index=index).block(texts)
        assert indexed.candidate_pairs == scan.candidate_pairs
        assert indexed.neighbors == scan.neighbors

    def test_prebuilt_index_is_probed_not_rebuilt(self):
        texts = _corpus()
        embedder = HashingEmbedder()
        index = build_index(texts, embedder=embedder, kind="exact")
        embed_calls_after_build = embedder.usage.calls
        result = EmbeddingBlocker(embedder=embedder, k=2, index=index).block(texts)
        # Blocking through the prebuilt index embeds nothing new.
        assert embedder.usage.calls == embed_calls_after_build
        assert result.candidate_pairs == EmbeddingBlocker(embedder=embedder, k=2).block(texts).candidate_pairs

    def test_mismatched_prebuilt_index_rejected(self):
        texts = _corpus()
        embedder = HashingEmbedder()
        index = build_index(texts[:5], embedder=embedder, kind="exact")
        with pytest.raises(ConfigurationError, match="holds 5 vectors"):
            EmbeddingBlocker(embedder=embedder, k=2, index=index).block(texts)

    def test_lsh_index_recovers_most_scan_pairs(self):
        texts = _corpus(10, 4)
        embedder = HashingEmbedder()
        scan_pairs = set(EmbeddingBlocker(embedder=embedder, k=3).block(texts).candidate_pairs)
        lsh = LSHIndex.for_corpus(embedder.dimensions, len(texts), seed=0)
        lsh_pairs = set(
            EmbeddingBlocker(embedder=embedder, k=3, index=lsh).block(texts).candidate_pairs
        )
        overlap = len(scan_pairs & lsh_pairs) / len(scan_pairs)
        assert overlap >= 0.9


class TestJoinIndexEquality:
    @staticmethod
    def _operator() -> JoinOperator:
        oracle = Oracle()
        entities = {}
        for side in ("l", "r"):
            for i in range(6):
                entities[f"{side} record {i} payload"] = f"e{i}"
        oracle.register_entities(entities)
        client = SimulatedLLM(oracle, seed=11, behavior=clean_behavior())
        return JoinOperator(client, model="sim-gpt-3.5-turbo")

    def test_exact_index_candidates_match_scan(self):
        operator = self._operator()
        left = [f"l record {i} payload" for i in range(6)]
        right = [f"r record {i} payload" for i in range(6)]
        scan = operator._candidate_pairs(left, right, 2)
        indexed = operator._candidate_pairs(left, right, 2, index_kind="exact")
        assert indexed == scan

    def test_blocked_join_through_index_matches_scan_join(self):
        left = [f"l record {i} payload" for i in range(6)]
        right = [f"r record {i} payload" for i in range(6)]
        scan = self._operator().run(left, right, strategy="blocked", block_k=2)
        indexed = self._operator().run(
            left, right, strategy="blocked", block_k=2, index_kind="exact"
        )
        assert indexed.matches == scan.matches
        assert indexed.candidate_pairs == scan.candidate_pairs
        assert indexed.llm_pairs == scan.llm_pairs

    def test_proxy_blocked_join_accepts_index_kind(self):
        left = [f"l record {i} payload" for i in range(6)]
        right = [f"r record {i} payload" for i in range(6)]
        result = self._operator().run(
            left, right, strategy="proxy_blocked", block_k=2, index_kind="auto"
        )
        assert result.candidate_pairs > 0
        assert result.llm_pairs <= result.candidate_pairs
