"""Query-layer integration: semantic search, persisted blocking, cached quotes.

Three index-layer behaviours surface through :class:`Dataset`:

* ``.search`` answers ad-hoc semantic lookups and persists its index;
* an optimized resolve routes blocking through a store-persisted index, so
  a re-run rebuilds nothing and the trace says so (``cache_hit=True``);
* quoting against a store prices statically-known prompts a previous
  session already paid for at zero dollars.
"""

from __future__ import annotations

import pytest

from repro.core.session import PromptSession
from repro.exceptions import SpecError
from repro.llm.simulated import SimulatedLLM
from repro.query import Dataset
from repro.store import Store
from tests.query.support import MODEL, clean_behavior, clean_engine, product_corpus


class TestDatasetSearch:
    def test_search_returns_nearest_items_first(self):
        items, _ = product_corpus(6, 2)
        hits = Dataset(items, name="p").search("laptop device", k=3)
        assert hits[0][0] == "laptop device"
        assert [distance for _, distance in hits] == sorted(
            distance for _, distance in hits
        )

    def test_search_validates_inputs(self):
        items, _ = product_corpus(4, 1)
        dataset = Dataset(items, name="p")
        with pytest.raises(SpecError):
            dataset.search("")
        with pytest.raises(SpecError):
            dataset.search("laptop", k=0)

    def test_search_rejects_runtime_plans(self):
        items, _ = product_corpus(4, 2)
        with pytest.raises(SpecError, match="statically-known"):
            Dataset(items, name="p").resolve().search("laptop")

    def test_search_persists_its_index_and_reuses_it(self, tmp_path):
        items, _ = product_corpus(6, 2)
        with Store(tmp_path / "store.db") as store:
            dataset = Dataset(items, name="p").with_store(store)
            first = dataset.search("laptop device", k=3)
            names = [entry["name"] for entry in store.list_vector_indexes()]
            assert len(names) == 1 and names[0].startswith("search:")
            assert store.embedding_count() >= len(items)
            # Second search loads the stored index and embeds only the query.
            again = Dataset(items, name="p").with_store(store).search("laptop device", k=3)
            assert again == first


class TestResolveThroughPersistedIndex:
    def test_run_persists_block_index_then_reuses_it(self, tmp_path):
        items, oracle = product_corpus(6, 2)
        with Store(tmp_path / "store.db") as store:
            engine = clean_engine(oracle)
            result = Dataset(items, name="p").with_store(store).resolve().run(engine)
            assert result.items  # deduped survivors
            names = [entry["name"] for entry in store.list_vector_indexes()]
            assert any(name.startswith("block:") for name in names)
            assert store.embedding_count() == len(items)
            index_rows = [
                record
                for record in engine.session.tracer.records()
                if record.operator.startswith("index:")
            ]
            assert len(index_rows) == 1
            assert index_rows[0].cache_hit is False
            assert index_rows[0].cost == 0.0
            # The planner learned an observed candidates-per-probe rate.
            assert engine.session.stats.probe_candidate_rate() is not None

            # A fresh engine over the same store reuses the stored index.
            second = clean_engine(oracle)
            Dataset(items, name="p").with_store(store).resolve().run(second)
            reused_rows = [
                record
                for record in second.session.tracer.records()
                if record.operator.startswith("index:")
            ]
            assert len(reused_rows) == 1
            assert reused_rows[0].cache_hit is True
            # Nothing was re-embedded for the unchanged corpus.
            assert store.embedding_count() == len(items)

    def test_results_match_runs_without_a_store(self, tmp_path):
        items, oracle = product_corpus(6, 2)
        with Store(tmp_path / "store.db") as store:
            stored = (
                Dataset(items, name="p").with_store(store).resolve().run(clean_engine(oracle))
            )
        plain = Dataset(items, name="p").resolve().run(clean_engine(oracle))
        assert stored.items == plain.items


class TestCacheAwareQuotes:
    def test_fresh_session_quotes_known_prompts_at_zero(self, tmp_path):
        """The satellite acceptance: a previously-run workload quotes at $0."""
        items, oracle = product_corpus(4, 1)
        query = Dataset(items, name="p").filter("keeps everything")
        with Store(tmp_path / "store.db") as store:
            # First session pays for the filter calls and persists them.
            client = SimulatedLLM(oracle, seed=11, behavior=clean_behavior())
            session = PromptSession(client, store=store)
            query.run(session)

            # A brand-new process (fresh planner, fresh session) re-quotes:
            # every statically-known prompt is already in the durable cache.
            quote = query.with_store(store).quote()
            assert quote.total_dollars == 0.0
            assert any("persistent cache" in note for note in quote.notes)

    def test_quote_without_history_is_not_discounted(self, tmp_path):
        items, _ = product_corpus(4, 1)
        query = Dataset(items, name="p").filter("keeps everything")
        with Store(tmp_path / "store.db") as store:
            quote = query.with_store(store).quote()
            assert quote.total_dollars > 0.0
            assert not any("persistent cache" in note for note in quote.notes)
