"""Tests for the non-LLM proxies: similarity, k-NN imputer, blocking, classifier."""

from __future__ import annotations

import pytest

from repro.data.products import generate_restaurant_dataset
from repro.data.record import Dataset, Record
from repro.exceptions import ConfigurationError, DatasetError
from repro.proxies.blocking import EmbeddingBlocker
from repro.proxies.classifier import SimilarityMatchProxy
from repro.proxies.knn import KNNImputer
from repro.proxies.similarity import (
    jaccard_similarity,
    levenshtein_distance,
    normalized_levenshtein,
    token_cosine,
)


class TestSimilarity:
    def test_jaccard_identical(self):
        assert jaccard_similarity("a b c", "a b c") == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity("a b", "x y") == 0.0

    def test_jaccard_empty_strings(self):
        assert jaccard_similarity("", "") == 1.0
        assert jaccard_similarity("a", "") == 0.0

    def test_token_cosine_bounds(self):
        assert token_cosine("a b c", "a b c") == pytest.approx(1.0)
        assert token_cosine("a b", "x y") == 0.0

    def test_levenshtein_basic(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_distance("", "abc") == 3

    def test_normalized_levenshtein(self):
        assert normalized_levenshtein("abc", "abc") == 1.0
        assert normalized_levenshtein("abc", "xyz") == 0.0


class TestKNNImputer:
    def _reference(self) -> Dataset:
        rows = []
        for index in range(9):
            city = ["Austin", "Chicago", "Boston"][index % 3]
            rows.append(
                Record(
                    f"ref-{index}",
                    {"street": f"{city} Main St", "area": f"{city} area", "city": city},
                )
            )
        return Dataset(rows, name="reference")

    def test_unanimous_neighbors(self):
        imputer = KNNImputer(self._reference(), "city", k=3)
        query = Record("q", {"street": "Austin Main St", "area": "Austin area"})
        vote = imputer.vote(query)
        assert vote.prediction == "Austin"
        assert vote.unanimous is True
        assert len(vote.neighbors) == 3

    def test_impute_returns_mode(self):
        imputer = KNNImputer(self._reference(), "city", k=3)
        query = Record("q", {"street": "Chicago Main St", "area": "Chicago area"})
        assert imputer.impute(query) == "Chicago"

    def test_examples_for_query(self):
        imputer = KNNImputer(self._reference(), "city", k=3)
        query = Record("q", {"street": "Boston Main St", "area": "Boston area"})
        examples = imputer.examples_for(query, 2)
        assert len(examples) == 2
        assert all("city is" not in example["input"] for example in examples)
        assert all(example["output"] in {"Austin", "Chicago", "Boston"} for example in examples)

    def test_invalid_parameters(self):
        with pytest.raises(DatasetError):
            KNNImputer(self._reference(), "city", k=0)
        with pytest.raises(DatasetError):
            KNNImputer(Dataset([Record("a", {"city": "X"})]), "city", k=3)

    def test_on_generated_restaurants_is_reasonably_accurate(self):
        data = generate_restaurant_dataset(120, seed=3)
        imputer = KNNImputer(data.reference, data.target_attribute, k=3)
        predictions = {record.record_id: imputer.impute(record) for record in data.queries}
        assert data.accuracy(predictions) > 0.5


class TestEmbeddingBlocker:
    def test_blocking_reduces_pairs(self):
        texts = [f"record number {index} about topic {index % 4}" for index in range(20)]
        result = EmbeddingBlocker(k=3).block(texts)
        assert result.n_candidates < len(texts) * (len(texts) - 1) // 2
        assert all(i < j for i, j in result.candidate_pairs)

    def test_neighbor_pairs_for_anchors(self):
        texts = ["alpha beta", "alpha beta gamma", "delta epsilon", "delta epsilon zeta"]
        pairs = EmbeddingBlocker(k=1).neighbor_pairs_for(texts, (0, 2), k=1)
        flattened = {index for pair in pairs for index in pair}
        assert {0, 2}.issubset(flattened)
        assert all(i < j for i, j in pairs)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            EmbeddingBlocker(k=0)


class TestSimilarityMatchProxy:
    def test_decisions_across_the_bands(self):
        proxy = SimilarityMatchProxy(accept_threshold=0.8, reject_threshold=0.2)
        accept = proxy.decide("indexing moving objects sigmod", "indexing moving objects sigmod")
        reject = proxy.decide("totally different text", "unrelated words entirely")
        abstain = proxy.decide("indexing moving objects", "indexing static objects quickly now")
        assert accept.label is True
        assert reject.label is False
        assert abstain.abstained is True

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            SimilarityMatchProxy(accept_threshold=0.2, reject_threshold=0.8)

    def test_abstention_rate(self):
        proxy = SimilarityMatchProxy(accept_threshold=0.9, reject_threshold=0.1)
        pairs = [("a b c", "a b c"), ("a b c", "x y z"), ("a b c d", "a b x y")]
        rate = proxy.abstention_rate(pairs)
        assert 0.0 <= rate <= 1.0
        assert proxy.abstention_rate([]) == 0.0
